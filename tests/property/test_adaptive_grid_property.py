"""Property tests for the quantile-boundary repair (heavy-tie safety).

The invariant under test: for *any* value distribution — including
pathological ones where most of the mass sits on a handful of exact
duplicates — ``quantile_boundaries`` returns a strictly increasing
vector of exactly ``partitions + 1`` entries spanning ``[low, high]``.
The old per-entry blend could be dragged below the running floor by one
flat quantile run and then discarded *every* quantile (wholesale
equal-width fallback) even for mildly tied data; the monotone repair
must keep the fallback for the truly forced case only.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.adaptive_grid import quantile_boundaries


@st.composite
def tied_values(draw):
    """Samples with adversarial tie structure on [0, 1]."""
    size = draw(st.integers(20, 300))
    n_distinct = draw(st.integers(1, 8))
    levels = draw(st.lists(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False,
                  width=64),
        min_size=n_distinct, max_size=n_distinct, unique=True,
    ))
    picks = draw(st.lists(st.integers(0, n_distinct - 1),
                          min_size=size, max_size=size))
    return np.array([levels[i] for i in picks], dtype=np.float64)


@given(tied_values(), st.integers(1, 48))
@settings(max_examples=120, deadline=None)
def test_heavy_ties_always_yield_a_valid_grid(values, partitions):
    bounds = quantile_boundaries(values, partitions, 0.0, 1.0)
    assert bounds.shape == (partitions + 1,)
    assert bounds[0] == 0.0 and bounds[-1] == 1.0
    assert np.all(np.diff(bounds) > 0)


@given(st.integers(2, 64), st.floats(-5.0, 4.0, allow_nan=False),
       st.floats(0.1, 10.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_constant_data_still_yields_a_valid_grid(partitions, low, span):
    """All-ties input carries zero quantile information; the repair must
    still emit a strictly monotone cover of [low, high] (leaning on the
    equal-width fallback), never a zero-width or inverted cell."""
    high = low + span
    values = np.full(100, low + span / 3.0)
    bounds = quantile_boundaries(values, partitions, low, high)
    assert bounds.shape == (partitions + 1,)
    assert bounds[0] == low and bounds[-1] == high
    assert np.all(np.diff(bounds) > 0)


@given(st.integers(4, 32))
@settings(max_examples=40, deadline=None)
def test_mild_ties_keep_quantile_information(partitions):
    """Regression: one flat run used to discard every quantile.  With
    90% of the mass in [0, 0.1] plus one heavy spike, the repaired
    boundaries must still crowd toward the dense region — the median
    interior boundary sits left of the equal-width midpoint."""
    rng = np.random.default_rng(1234)
    dense = rng.uniform(0.0, 0.1, 900)
    spike = np.full(100, 0.05)
    values = np.concatenate([dense, spike])
    bounds = quantile_boundaries(values, partitions, 0.0, 1.0)
    assert np.all(np.diff(bounds) > 0)
    interior = bounds[1:-1]
    assert np.median(interior) < 0.5
    # ... and far more boundaries landed inside the dense bulk than the
    # equal-width fallback's ~20% would.
    assert np.count_nonzero(interior < 0.2) >= len(interior) * 2 // 5


@given(tied_values(), st.integers(1, 16),
       st.floats(1e-6, 1e-3, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_tiny_span_never_produces_nonmonotone_output(values, partitions,
                                                     span):
    """Spans near float resolution force the fallback rather than a
    zero-width or inverted cell."""
    bounds = quantile_boundaries(values * span, partitions, 0.0, span)
    assert np.all(np.diff(bounds) > 0)
    assert bounds[0] == 0.0 and bounds[-1] == span
