"""Property: the cross-segment snapshot merge is byte-identical to a
single-index oracle (hypothesis).

The adversarial construction makes cross-segment rank ties the common
case: product rows are drawn from a tiny finite value grid and every
row is repeated in *different* segments (seals are forced between the
copies), so a query's rank under a weight is assembled from per-segment
counts that individually tie.  Weights are likewise duplicated across
segments, so the RKR ``(rank, id)`` tie-break must pick the smaller
*global* id even when the candidates live in different segments (or in
the unsealed delta).

Invariant, for any query point and any k: the pinned-snapshot merge
path, the densified :class:`SnapshotKernel`, and a
``ShardedGirRRQ.from_snapshot`` engine all produce canonical JSON
**byte-identical** to ``NaiveRRQ`` over the snapshot's live rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.service.server import canonical_json, encode_result
from repro.storage import SegmentStore, SnapshotKernel
from repro.vectorized.shard import ShardedGirRRQ

DIM = 3
GRID = (0.15, 0.35, 0.55, 0.75)  # tiny finite grid -> dense duplicates
COPIES = 3


def _adversarial_rows(rng, count):
    """Product rows whose coordinates come from the finite grid."""
    return np.asarray(GRID)[rng.integers(0, len(GRID), size=(count, DIM))]


def _adversarial_weights(rng, count):
    """Weights from a tiny set of directions (exact duplicates abound)."""
    base = np.eye(DIM) * 0.6 + 0.2
    picks = base[rng.integers(0, DIM, size=count)]
    return picks / picks.sum(axis=1, keepdims=True)


@pytest.fixture(scope="module")
def pinned(tmp_path_factory):
    """A multi-segment store with duplicates straddling every boundary."""
    rng = np.random.default_rng(9313)
    store = SegmentStore(DIM, partitions=8,
                         directory=tmp_path_factory.mktemp("store"))
    p_rows = _adversarial_rows(rng, 14)
    w_rows = _adversarial_weights(rng, 10)
    # Copy c of every row goes into segment c: identical rows (hence
    # identical ranks, identical weight vectors) in different segments.
    for _ in range(COPIES):
        for row in p_rows:
            store.insert_product(row)
        for w in w_rows:
            store.insert_weight(w)
        store.seal(force=True)
    # A fourth copy stays in the mutable delta; a few deletes spread the
    # dead set across the manifest and the delta.
    for row in p_rows[:6]:
        store.insert_product(row)
    for w in w_rows[:4]:
        store.insert_weight(w)
    live_p = store.products.live_indices()
    for victim in live_p[:: len(live_p) // 4]:
        store.remove_product(int(victim))
    store.remove_weight(int(store.weights.live_indices()[1]))

    snap = store.pin()
    p_live, _ = snap.live_products()
    w_live, w_gids = snap.live_weights()
    oracle = NaiveRRQ(ProductSet(p_live, value_range=store.value_range),
                      WeightSet(w_live))
    kernel = SnapshotKernel.build(snap)
    sharded = ShardedGirRRQ.from_snapshot(snap, shards=3)
    yield snap, oracle, w_gids, kernel, sharded
    sharded.close()
    snap.release()
    store.close()


query_points = st.lists(
    st.sampled_from([0.0, 0.15, 0.2, 0.35, 0.55, 0.75, 0.9]),
    min_size=DIM, max_size=DIM,
)


def _oracle_json(oracle, w_gids, q, k, kind):
    if kind == "rtk":
        res = oracle.reverse_topk(q, k)
        remapped = frozenset(int(w_gids[j]) for j in res.weights)
        payload = type(res)(weights=remapped, k=res.k, counter=res.counter)
    else:
        res = oracle.reverse_kranks(q, k)
        entries = tuple((rank, int(w_gids[j])) for rank, j in res.entries)
        payload = type(res)(entries=entries, k=res.k, counter=res.counter)
    return canonical_json(encode_result(payload, kind))


@given(q=query_points, k=st.integers(min_value=1, max_value=35))
@settings(max_examples=40, deadline=None)
def test_rkr_merge_matches_single_index_oracle(pinned, q, k):
    snap, oracle, w_gids, kernel, sharded = pinned
    q_arr = np.array(q)
    reference = _oracle_json(oracle, w_gids, q_arr, k, "rkr")
    for label, backend in (("merge", snap), ("kernel", kernel),
                           ("sharded", sharded)):
        got = canonical_json(
            encode_result(backend.reverse_kranks(q_arr, k), "rkr"))
        assert got == reference, f"{label} RKR diverged from the oracle"


@given(q=query_points, k=st.integers(min_value=1, max_value=12))
@settings(max_examples=25, deadline=None)
def test_rtk_merge_matches_single_index_oracle(pinned, q, k):
    snap, oracle, w_gids, kernel, sharded = pinned
    q_arr = np.array(q)
    reference = _oracle_json(oracle, w_gids, q_arr, k, "rtk")
    for label, backend in (("merge", snap), ("kernel", kernel),
                           ("sharded", sharded)):
        got = canonical_json(
            encode_result(backend.reverse_topk(q_arr, k), "rtk"))
        assert got == reference, f"{label} RTK diverged from the oracle"


@given(seed=st.integers(min_value=0, max_value=2**20),
       seals=st.integers(min_value=0, max_value=3))
@settings(max_examples=15, deadline=None)
def test_random_mutation_schedules_preserve_parity(seed, seals):
    """Fresh store per example: random inserts/deletes with random seal
    points must keep the merge path equal to the oracle everywhere."""
    rng = np.random.default_rng(seed)
    store = SegmentStore(DIM, partitions=8)
    for round_ in range(seals + 1):
        for row in _adversarial_rows(rng, 6):
            store.insert_product(row)
        for w in _adversarial_weights(rng, 4):
            store.insert_weight(w)
        live = store.products.live_indices()
        if len(live) > 4:
            store.remove_product(int(live[rng.integers(len(live))]))
        if round_ < seals:
            store.seal(force=True)
    with store.pin() as snap:
        p_live, _ = snap.live_products()
        w_live, w_gids = snap.live_weights()
        oracle = NaiveRRQ(ProductSet(p_live, value_range=1.0),
                          WeightSet(w_live))
        for _ in range(3):
            q = np.asarray(GRID)[rng.integers(0, len(GRID), DIM)]
            k = int(rng.integers(1, 9))
            assert (canonical_json(
                        encode_result(snap.reverse_kranks(q, k), "rkr"))
                    == _oracle_json(oracle, w_gids, q, k, "rkr"))
