"""Property tests for the 2-d monochromatic reverse top-k."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.queries.monochromatic import _rank_at, monochromatic_reverse_topk

coarse_floats = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False,
                          width=16)

instances = st.tuples(
    hnp.arrays(np.float64, st.tuples(st.integers(1, 25), st.just(2)),
               elements=coarse_floats),
    hnp.arrays(np.float64, (2,), elements=coarse_floats),
    st.integers(1, 10),
)


@given(instances, st.integers(0, 40))
@settings(max_examples=80, deadline=None)
def test_membership_matches_exact_rank(instance, numerator):
    """At any rational lambda, interval membership == exact rank < k."""
    P, q, k = instance
    lam = Fraction(numerator, 40)
    result = monochromatic_reverse_topk(P, q, k)
    expected = _rank_at(P, q, lam) < k
    got = any(lo <= lam <= hi for lo, hi in result.intervals)
    assert got == expected


@given(instances)
@settings(max_examples=60, deadline=None)
def test_endpoints_qualify(instance):
    """Interval endpoints themselves must qualify (intervals are closed)."""
    P, q, k = instance
    result = monochromatic_reverse_topk(P, q, k)
    for lo, hi in result.intervals:
        assert _rank_at(P, q, lo) < k
        assert _rank_at(P, q, hi) < k


@given(instances)
@settings(max_examples=40, deadline=None)
def test_just_outside_endpoints_do_not_qualify(instance):
    """A point slightly outside any interval must fail the rank test."""
    P, q, k = instance
    result = monochromatic_reverse_topk(P, q, k)
    eps = Fraction(1, 10**9)
    covered = result.intervals
    for lo, hi in covered:
        for probe in (lo - eps, hi + eps):
            if probe < 0 or probe > 1:
                continue
            inside_other = any(l2 <= probe <= h2 for l2, h2 in covered)
            if not inside_other:
                assert _rank_at(P, q, probe) >= k


@given(instances)
@settings(max_examples=40, deadline=None)
def test_k_monotonicity(instance):
    P, q, k = instance
    small = monochromatic_reverse_topk(P, q, k)
    large = monochromatic_reverse_topk(P, q, k + 3)
    # Every qualifying lambda for k also qualifies for k + 3.
    for lo, hi in small.intervals:
        assert any(l2 <= lo and hi <= h2 for l2, h2 in large.intervals)


@given(instances)
@settings(max_examples=40, deadline=None)
def test_full_k_covers_everything(instance):
    P, q, _ = instance
    result = monochromatic_reverse_topk(P, q, P.shape[0] + 1)
    assert result.total_measure() == 1
