"""Property tests on reverse-rank-query semantics (hypothesis).

These generate whole problem instances and check the invariants every
correct RRQ implementation must satisfy, using GIR (the paper's algorithm)
against the naive oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.naive import NaiveRRQ
from repro.algorithms.sim import SimpleScan
from repro.core.gir import GridIndexRRQ
from repro.data.datasets import ProductSet, WeightSet


@st.composite
def instances(draw):
    m_p = draw(st.integers(2, 60))
    m_w = draw(st.integers(1, 40))
    d = draw(st.integers(1, 6))
    P = draw(hnp.arrays(np.float64, (m_p, d),
                        elements=st.floats(0.0, 1.0 - 1e-9)))
    raw_w = draw(hnp.arrays(np.float64, (m_w, d),
                            elements=st.floats(1e-6, 1.0)))
    W = raw_w / raw_w.sum(axis=1, keepdims=True)
    q_idx = draw(st.integers(0, m_p - 1))
    k = draw(st.integers(1, m_w + 2))
    n = draw(st.sampled_from([2, 8, 32]))
    return (ProductSet(P, value_range=1.0), WeightSet(W, renormalize=True),
            P[q_idx], k, n)


@given(instances())
@settings(max_examples=60, deadline=None)
def test_gir_equals_oracle(instance):
    P, W, q, k, n = instance
    gir = GridIndexRRQ(P, W, partitions=n)
    naive = NaiveRRQ(P, W)
    assert gir.reverse_topk(q, k).weights == naive.reverse_topk(q, k).weights
    assert gir.reverse_kranks(q, k).entries == naive.reverse_kranks(q, k).entries


@given(instances())
@settings(max_examples=40, deadline=None)
def test_sim_equals_oracle(instance):
    P, W, q, k, _ = instance
    sim = SimpleScan(P, W, chunk=16)
    naive = NaiveRRQ(P, W)
    assert sim.reverse_topk(q, k).weights == naive.reverse_topk(q, k).weights
    assert sim.reverse_kranks(q, k).entries == naive.reverse_kranks(q, k).entries


@given(instances())
@settings(max_examples=40, deadline=None)
def test_rkr_entries_are_true_ranks(instance):
    """Each returned (rank, index) pair is the weight's true rank.

    The reference rank is computed in exact rational arithmetic, matching
    the library's strict semantics even when distinct vectors tie.
    """
    from repro.core.ties import exact_strictly_less

    P, W, q, k, n = instance
    gir = GridIndexRRQ(P, W, partitions=n)
    result = gir.reverse_kranks(q, k)
    live = P.values[~np.all(P.values == q, axis=1)]
    for rank, idx in result.entries:
        w = W[idx]
        expected = sum(exact_strictly_less(w, p, q) for p in live)
        assert rank == expected


@given(instances())
@settings(max_examples=40, deadline=None)
def test_rtk_empty_iff_k_dominators(instance):
    """If at least k products strictly dominate q, RTK must be empty."""
    P, W, q, k, n = instance
    dominators = int(np.sum(np.all(P.values < q, axis=1)))
    gir = GridIndexRRQ(P, W, partitions=n)
    result = gir.reverse_topk(q, k)
    if dominators >= k:
        assert result.weights == frozenset()


@given(instances())
@settings(max_examples=30, deadline=None)
def test_rkr_size_is_min_k_w(instance):
    P, W, q, k, n = instance
    gir = GridIndexRRQ(P, W, partitions=n)
    assert len(gir.reverse_kranks(q, k).entries) == min(k, W.size)
