"""Property tests for quantization and bit-string compression."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.approx import Quantizer, bits_needed
from repro.core.bitstring import pack_matrix, packed_size_bytes, unpack_matrix


@given(
    st.integers(1, 16),
    hnp.arrays(np.float64, st.tuples(st.integers(1, 40), st.integers(1, 10)),
               elements=st.floats(0.0, 1.0 - 1e-9)),
)
@settings(max_examples=80, deadline=None)
def test_quantizer_cell_membership(n, values):
    """Every value lands in the cell its code names."""
    quant = Quantizer.equal_width(n, 1.0)
    codes = quant.quantize(values)
    assert codes.min() >= 0 and codes.max() < n
    lows = quant.cell_low(codes)
    highs = quant.cell_high(codes)
    assert np.all(lows <= values + 1e-12)
    assert np.all(values <= highs + 1e-12)


@given(
    st.integers(1, 12),
    st.integers(1, 25),
    st.integers(1, 9),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_pack_unpack_identity(bits, rows, cols, seed):
    """pack . unpack is the identity for any shape and bit width."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 2 ** bits, size=(rows, cols))
    payload = pack_matrix(codes, bits)
    assert len(payload) == packed_size_bytes(rows, cols, bits)
    assert np.array_equal(unpack_matrix(payload, rows, cols, bits), codes)


@given(st.integers(1, 1000))
@settings(max_examples=50, deadline=None)
def test_bits_needed_is_minimal(n):
    """2^(b-1) < n <= 2^b (except the degenerate n=1 which needs 1 bit)."""
    b = bits_needed(n)
    assert n <= 2 ** b
    if n > 1:
        assert n > 2 ** (b - 1)


@given(
    st.integers(2, 64),
    hnp.arrays(np.float64, st.integers(1, 50),
               elements=st.floats(0.0, 1.0 - 1e-9)),
)
@settings(max_examples=60, deadline=None)
def test_quantize_roundtrip_through_bitstring(n, values):
    """quantize -> pack -> unpack -> same codes (the storage pipeline)."""
    quant = Quantizer.equal_width(n, 1.0)
    codes = quant.quantize(values).reshape(1, -1).astype(np.int64)
    bits = bits_needed(n)
    back = unpack_matrix(pack_matrix(codes, bits), 1, values.shape[0], bits)
    assert np.array_equal(back, codes)
