"""Property tests: the fused multi-query kernel is byte-identical to the
per-query kernel and the naive scan.

The acceptance bar for the fused pass: any coalesced micro-batch —
Q ∈ {1, 2, 5, 16}, dims 2–8, uniform and clustered data, near-tie
pressure, float32 and float64 filter paths — must return exactly the
answers the per-query kernel (and ``NaiveRRQ``) returns, query by
query.  Sharing tile matmuls, sorted-tally counting and per-query
minRank feedback across the batch may only move *work*, never results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import generate_products, generate_weights
from repro.vectorized.girkernel import GirKernelRRQ

BATCH_SIZES = (1, 2, 5, 16)


def _batch(rng, P, nq):
    """A query batch mixing dataset members and off-grid points."""
    picks = rng.choice(P.size, size=min(nq, P.size), replace=False)
    queries = [P[int(i)] for i in picks]
    while len(queries) < nq:
        queries.append(rng.uniform(0.05, 0.95, size=P.dim))
    return queries


def _assert_batch_identical(kernel, naive, queries, k, check_naive=True):
    seq_rtk = [kernel.reverse_topk(q, k) for q in queries]
    fused_rtk = kernel.reverse_topk_batch(queries, k)
    assert [r.weights for r in fused_rtk] == [r.weights for r in seq_rtk]
    seq_rkr = [kernel.reverse_kranks(q, k) for q in queries]
    fused_rkr = kernel.reverse_kranks_batch(queries, k)
    assert [r.entries for r in fused_rkr] == [r.entries for r in seq_rkr]
    if check_naive:
        for q, rtk, rkr in zip(queries, fused_rtk, fused_rkr):
            assert rtk.weights == naive.reverse_topk(q, k).weights
            assert rkr.entries == naive.reverse_kranks(q, k).entries


@given(
    st.sampled_from(BATCH_SIZES),
    st.sampled_from(["UN", "CL"]),
    st.integers(2, 8),
    st.sampled_from(["float32", "float64"]),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_fused_batch_identical(nq, dist, dim, filter_dtype, seed):
    P = generate_products(dist, 70, dim, seed=seed)
    W = generate_weights("CL" if dist == "CL" else "UN", 60, dim,
                         seed=seed + 1)
    kernel = GirKernelRRQ(P, W, partitions=8, filter_dtype=filter_dtype)
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(seed + 2)
    queries = _batch(rng, P, nq)
    k = int(rng.integers(1, 20))
    _assert_batch_identical(kernel, naive, queries, k)


@given(
    st.sampled_from(BATCH_SIZES),
    st.sampled_from(["float32", "float64"]),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_fused_batch_near_tie_pressure(nq, filter_dtype, seed):
    """Low-entropy grids: scores collide everywhere, so the fused pass
    must route exactly the same marginal pairs through the rational
    tie-break as the per-query pass does."""
    rng = np.random.default_rng(seed)
    P = ProductSet(rng.integers(0, 4, size=(60, 3)) / 4.0)
    W_raw = rng.integers(1, 4, size=(50, 3)).astype(float)
    W = WeightSet(W_raw / W_raw.sum(axis=1, keepdims=True))
    kernel = GirKernelRRQ(P, W, partitions=4, filter_dtype=filter_dtype)
    naive = NaiveRRQ(P, W)
    queries = _batch(rng, P, nq)
    for k in (1, 7, 50):
        _assert_batch_identical(kernel, naive, queries, k)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_fused_domin_pressure(seed):
    """Batches mixing dominated queries (empty RTK answers via the
    Domin pre-pass) with ordinary ones: per-query early exits must not
    disturb the shared pass for the rest of the batch."""
    P = generate_products("UN", 80, 4, seed=seed)
    W = generate_weights("UN", 60, 4, seed=seed + 1)
    kernel = GirKernelRRQ(P, W, partitions=8)
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(seed + 2)
    dominated = P.values.max(axis=0) * 0.999
    queries = [dominated] + _batch(rng, P, 4) + [dominated]
    for k in (1, 5):
        _assert_batch_identical(kernel, naive, queries, k)


@given(
    st.sampled_from([(1, 1), (3, 7), (4096, 4096)]),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_fused_blocking_invariance(blocks, seed):
    """Fused answers must not depend on tile geometry either."""
    w_block, p_block = blocks
    P = generate_products("UN", 60, 4, seed=seed)
    W = generate_weights("UN", 50, 4, seed=seed + 1)
    reference = GirKernelRRQ(P, W, partitions=8)
    blocked = GirKernelRRQ(P, W, partitions=8,
                           w_block=w_block, p_block=p_block)
    rng = np.random.default_rng(seed + 2)
    queries = _batch(rng, P, 5)
    for k in (2, 9):
        ref_rtk = reference.reverse_topk_batch(queries, k)
        blk_rtk = blocked.reverse_topk_batch(queries, k)
        assert [r.weights for r in blk_rtk] == [r.weights for r in ref_rtk]
        ref_rkr = reference.reverse_kranks_batch(queries, k)
        blk_rkr = blocked.reverse_kranks_batch(queries, k)
        assert [r.entries for r in blk_rkr] == [r.entries for r in ref_rkr]


def test_fused_per_query_k_and_empty_batch():
    """Per-query ``k`` values and the empty batch degenerate cleanly."""
    P = generate_products("UN", 50, 3, seed=11)
    W = generate_weights("UN", 40, 3, seed=12)
    kernel = GirKernelRRQ(P, W, partitions=8)
    queries = [P[i] for i in (0, 7, 21)]
    ks = [1, 5, 13]
    fused = kernel.reverse_topk_batch(queries, ks)
    for q, k, res in zip(queries, ks, fused):
        assert res == kernel.reverse_topk(q, k)
    fused_rkr = kernel.reverse_kranks_batch(queries, ks)
    for q, k, res in zip(queries, ks, fused_rkr):
        assert res.entries == kernel.reverse_kranks(q, k).entries
    assert kernel.reverse_topk_batch([], 5) == []
    assert kernel.reverse_kranks_batch([], 5) == []
