"""Property tests for the R-tree substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.index.mbr import MBR
from repro.index.rtree import RTree

point_clouds = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 120), st.integers(1, 6)),
    elements=st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
)


@given(point_clouds, st.integers(2, 20), st.booleans())
@settings(max_examples=60, deadline=None)
def test_invariants_hold_for_any_input(points, capacity, bulk):
    tree = RTree(points, capacity=capacity, bulk=bulk)
    tree.check_invariants()
    assert tree.size == points.shape[0]


@given(point_clouds, st.integers(2, 16), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_range_query_equals_bruteforce(points, capacity, seed):
    tree = RTree(points, capacity=capacity)
    rng = np.random.default_rng(seed)
    d = points.shape[1]
    lo = rng.random(d) * 100
    hi = lo + rng.random(d) * 50
    box = MBR(lo, hi)
    expected = {
        i for i, p in enumerate(points)
        if np.all(p >= lo) and np.all(p <= hi)
    }
    assert set(tree.range_query(box)) == expected


@given(point_clouds, st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_root_mbr_covers_everything(points, capacity):
    tree = RTree(points, capacity=capacity)
    for p in points:
        assert tree.root.mbr.contains_point(p)


@given(point_clouds)
@settings(max_examples=40, deadline=None)
def test_mbr_of_points_is_tight(points):
    box = MBR.of_points(points)
    assert np.array_equal(box.lo, points.min(axis=0))
    assert np.array_equal(box.hi, points.max(axis=0))
