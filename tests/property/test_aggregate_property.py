"""Property tests for aggregate (bundle) reverse rank queries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.datasets import ProductSet, WeightSet
from repro.ext.aggregate import (
    AggregateGridIndexRKR,
    aggregate_reverse_kranks_naive,
)


@st.composite
def bundle_instances(draw):
    m_p = draw(st.integers(3, 40))
    m_w = draw(st.integers(1, 25))
    d = draw(st.integers(1, 5))
    P = draw(hnp.arrays(np.float64, (m_p, d),
                        elements=st.floats(0.0, 1.0 - 1e-9)))
    raw = draw(hnp.arrays(np.float64, (m_w, d),
                          elements=st.floats(1e-6, 1.0)))
    W = raw / raw.sum(axis=1, keepdims=True)
    bundle_idx = draw(st.lists(st.integers(0, m_p - 1), min_size=1,
                               max_size=4))
    k = draw(st.integers(1, m_w + 1))
    agg = draw(st.sampled_from(["sum", "max"]))
    n = draw(st.sampled_from([2, 16]))
    return (ProductSet(P, value_range=1.0), WeightSet(W, renormalize=True),
            [P[i] for i in bundle_idx], k, agg, n)


@given(bundle_instances())
@settings(max_examples=40, deadline=None)
def test_grid_solver_equals_oracle(instance):
    P, W, bundle, k, agg, n = instance
    fast = AggregateGridIndexRKR(P, W, partitions=n).query(bundle, k, agg)
    slow = aggregate_reverse_kranks_naive(P, W, bundle, k, agg)
    assert fast.entries == slow.entries


@given(bundle_instances())
@settings(max_examples=30, deadline=None)
def test_sum_dominates_max(instance):
    """For any weight, sum-aggregate >= max-aggregate (ranks are >= 0)."""
    P, W, bundle, k, _, n = instance
    by_sum = aggregate_reverse_kranks_naive(P, W, bundle, W.size, "sum")
    by_max = aggregate_reverse_kranks_naive(P, W, bundle, W.size, "max")
    sums = {j: rank for rank, j in by_sum.entries}
    maxes = {j: rank for rank, j in by_max.entries}
    for j in sums:
        assert sums[j] >= maxes[j]


@given(bundle_instances())
@settings(max_examples=30, deadline=None)
def test_singleton_bundle_is_plain_rkr(instance):
    P, W, bundle, k, agg, n = instance
    from repro.algorithms.naive import NaiveRRQ

    single = [bundle[0]]
    agg_result = aggregate_reverse_kranks_naive(P, W, single, k, agg)
    plain = NaiveRRQ(P, W).reverse_kranks(single[0], k)
    assert agg_result.entries == plain.entries
