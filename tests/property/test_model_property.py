"""Property tests for the Section 5.3 performance model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model


@given(st.integers(1, 6), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_dice_distribution_sums_to_one(dice, faces):
    total = sum(
        model.dice_probability(s, dice, faces)
        for s in range(dice, dice * faces + 1)
    )
    assert math.isclose(total, 1.0, rel_tol=1e-9)


@given(st.integers(1, 5), st.integers(2, 10))
@settings(max_examples=40, deadline=None)
def test_dice_distribution_symmetric(dice, faces):
    """Ways(s) == Ways(d*(faces+1) - s): the dice distribution is symmetric."""
    for s in range(dice, dice * faces + 1):
        mirror = dice * (faces + 1) - s
        assert model.dice_ways(s, dice, faces) == model.dice_ways(
            mirror, dice, faces
        )


@given(st.integers(1, 64), st.integers(2, 256))
@settings(max_examples=80, deadline=None)
def test_worst_case_filtering_in_unit_interval(d, n):
    f = model.worst_case_filtering(d, n)
    assert 0.0 <= f <= 1.0


@given(st.integers(1, 64), st.sampled_from([0.001, 0.01, 0.05, 0.2]))
@settings(max_examples=60, deadline=None)
def test_recommendation_meets_its_own_target(d, eps):
    """Theorem 1 self-consistency: the recommended n achieves F > 1 - eps
    under the model's assumptions."""
    n = model.recommend_partitions(d, eps)
    assert model.worst_case_filtering(d, n) > 1.0 - eps


@given(st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_tighter_epsilon_needs_more_partitions(d):
    loose = model.required_partitions(d, 0.1)
    tight = model.required_partitions(d, 0.001)
    assert tight > loose


@given(st.integers(1, 64), st.integers(1, 9))
@settings(max_examples=40, deadline=None)
def test_power_of_two_rounding(d, eps_tenths):
    eps = eps_tenths / 100.0
    n = model.recommend_partitions(d, eps, power_of_two=True)
    assert n & (n - 1) == 0  # power of two
    assert n >= model.required_partitions(d, eps) - 1
