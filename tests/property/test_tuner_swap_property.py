"""Property test: tuner hot-swaps are invisible to query answers.

A stream of queries runs against a live service while the tuner swaps
kernels underneath it — repeatedly, alternating configs so every swap
actually changes the serving index.  Every single answer, before,
during, and after each flip, must be byte-identical to ``NaiveRRQ``
over the same data.  The interleaving is driven by ``RRQ_CHAOS_SEED``
(default 1337) so a failure replays exactly in CI.
"""

import os
import threading

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import generate_products, generate_weights
from repro.service.server import QueryService, ServiceConfig
from repro.tuning import CandidateConfig, build_tuned_kernel

CHAOS_SEED = int(os.environ.get("RRQ_CHAOS_SEED", "1337"))

#: Alternating swap targets — coarse/fine, equal-width/quantile.
SWAP_CONFIGS = (
    CandidateConfig(partitions=8),
    CandidateConfig(partitions=32, boundaries="quantile"),
    CandidateConfig(partitions=16, boundaries="quantile"),
    CandidateConfig(partitions=64),
)


@pytest.fixture(scope="module")
def data():
    P = generate_products("CL", 90, 3, seed=CHAOS_SEED)
    W = generate_weights("CL", 150, 3, seed=CHAOS_SEED + 1)
    return P, W


def test_concurrent_queries_survive_repeated_swaps(data):
    P, W = data
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(CHAOS_SEED)
    expected = {}
    probe = [int(i) for i in rng.choice(P.size, size=12, replace=False)]
    for i in probe:
        expected[i] = sorted(naive.reverse_topk(P[i], 5).weights)

    service = QueryService.from_datasets(
        P, W, method="gir",
        config=ServiceConfig(batch_window_s=0.0, cache_capacity=32))
    mismatches = []
    stop = threading.Event()

    def reader(worker_seed):
        worker_rng = np.random.default_rng(worker_seed)
        while not stop.is_set():
            i = probe[int(worker_rng.integers(len(probe)))]
            got = service.query(P[i], kind="rtk", k=5)["weights"]
            if got != expected[i]:
                mismatches.append((i, got))
                return

    threads = [threading.Thread(target=reader, args=(CHAOS_SEED + t,))
               for t in range(3)]
    try:
        for t in threads:
            t.start()
        for config in SWAP_CONFIGS * 2:
            kernel = build_tuned_kernel(P, W, config)
            service.scheduler.swap_kernel(kernel, config)
            service.cache.invalidate()
            # Let readers observe this generation before the next flip.
            for i in probe[:3]:
                got = service.query(P[i], kind="rtk", k=5)["weights"]
                assert got == expected[i], (config.label(), i)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        service.close()
    assert mismatches == []


def test_swapped_in_kernels_match_naive_on_both_kinds(data):
    """Each swap target itself is exact — the stream test above then
    only needs to prove the *flip* adds no window of wrongness."""
    P, W = data
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(CHAOS_SEED + 7)
    queries = [P[int(i)] for i in rng.choice(P.size, size=6,
                                             replace=False)]
    for config in SWAP_CONFIGS:
        kernel = build_tuned_kernel(P, W, config)
        for q in queries:
            assert (kernel.reverse_topk(q, 4).weights
                    == naive.reverse_topk(q, 4).weights), config.label()
            assert (kernel.reverse_kranks(q, 4).entries
                    == naive.reverse_kranks(q, 4).entries), config.label()


def test_mvcc_swap_mid_mutation_stream(tmp_path):
    """Durable engine: mutations and tuner swaps interleave; every
    answer matches a naive oracle rebuilt from the engine's own state
    *at read time* (single-threaded here, so the oracle is exact)."""
    from repro.durability import DurableDynamicRRQ
    from repro.service.server import DurableQueryService
    from repro.tuning import ServiceTuner

    rng = np.random.default_rng(CHAOS_SEED + 99)
    engine = DurableDynamicRRQ(tmp_path / "db", dim=3,
                               backend="segmented", seal_every=8,
                               auto_compact=False, fsync="never")
    for _ in range(40):
        engine.insert_product(rng.uniform(0, 0.9, 3))
    for _ in range(30):
        w = rng.uniform(0.1, 1.0, 3)
        engine.insert_weight(w / w.sum())
    service = DurableQueryService(
        engine, config=ServiceConfig(batch_window_s=0.0,
                                     cache_capacity=16))
    tuner = ServiceTuner(service, probe_queries=4, k=4,
                         min_improvement=-1.0)
    try:
        for round_no in range(3):
            tuner.run_once(force=True)
            for _ in range(2):
                w = rng.uniform(0.1, 1.0, 3)
                service.mutate("insert_weight",
                               {"vector": (w / w.sum()).tolist()})
            q = engine.products[int(rng.integers(40))]
            got = service.query(q, kind="rtk", k=4)["weights"]
            assert got == sorted(engine.reverse_topk(q, 4).weights), \
                f"round {round_no}"
    finally:
        service.close()
