"""Property tests for :meth:`ClusterTopology.rebalance_plan`.

The rebalance plan is the operator's contract for membership changes:
executing its moves must carry *every* weight from its old owner to its
new owner, exactly once, and the resulting topology must still be a
bijection between global indices and ``(shard, local)`` pairs.  These
are exactly the invariants a bug would silently break (a weight listed
twice gets double-counted in RKR merges; a weight listed nowhere
vanishes from RTK answers), so they are checked property-style across
random shard counts, sizes, and both partitioners.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology

PARTITIONERS = ("range", "mod")


def _endpoints(n):
    return [[f"http://10.0.0.{i}:8377"] for i in range(n)]


def _owner_map(topology):
    """global index -> shard, via the public owner_of."""
    return {g: topology.owner_of(g)
            for g in range(topology.total_weights)}


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=400),
    old_shards=st.integers(min_value=1, max_value=8),
    new_shards=st.integers(min_value=1, max_value=8),
    old_part=st.sampled_from(PARTITIONERS),
    new_part=st.sampled_from(PARTITIONERS),
)
def test_moves_account_for_every_ownership_change(total, old_shards,
                                                  new_shards, old_part,
                                                  new_part):
    """Each global index whose owner changes appears in exactly one move
    (and in exactly one of that move's ranges); unchanged indices appear
    in none.  Moved counts are consistent with the ranges."""
    old = ClusterTopology.build(_endpoints(old_shards), total, old_part)
    plan = old.rebalance_plan(_endpoints(new_shards), new_part)
    new = ClusterTopology.build(_endpoints(new_shards), total, new_part)

    old_owner = _owner_map(old)
    new_owner = _owner_map(new)

    seen = {}
    for move in plan["moves"]:
        assert move["from"] != move["to"]
        covered = []
        for lo, hi in move["ranges"]:
            assert 0 <= lo < hi <= total
            covered.extend(range(lo, hi))
        assert len(covered) == move["count"]
        for g in covered:
            assert g not in seen, f"global {g} moved twice"
            seen[g] = (move["from"], move["to"])

    for g in range(total):
        if old_owner[g] != new_owner[g]:
            assert seen.get(g) == (old_owner[g], new_owner[g])
        else:
            assert g not in seen
    assert plan["moved_weights"] == len(seen)
    assert plan["total_weights"] == total
    assert plan["from_shards"] == old_shards
    assert plan["to_shards"] == new_shards


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=400),
    shards=st.integers(min_value=1, max_value=8),
    partitioner=st.sampled_from(PARTITIONERS),
)
def test_new_topology_is_a_balanced_bijection(total, shards, partitioner):
    """The plan's target topology round-trips every global index through
    ``to_local``/``to_global`` (bijection) and its shard sizes differ by
    at most one (balance) — for both partitioners."""
    base = ClusterTopology.build(_endpoints(max(1, shards // 2)), total,
                                 partitioner)
    plan = base.rebalance_plan(_endpoints(shards), partitioner)
    new = ClusterTopology.from_dict(plan["new_topology"])

    seen_pairs = set()
    for g in range(total):
        shard_id, local = new.to_local(g)
        assert 0 <= shard_id < shards
        assert local >= 0
        pair = (shard_id, local)
        assert pair not in seen_pairs, "two globals map to one local slot"
        seen_pairs.add(pair)
        assert new.to_global(shard_id, local) == g
        assert new.owner_of(g) == shard_id

    sizes = [len(new.owned_globals(s)) for s in range(shards)]
    assert sum(sizes) == total
    if total:
        assert max(sizes) - min(sizes) <= 1

    # owned_globals partitions [0, total) exactly.
    union = np.concatenate([new.owned_globals(s) for s in range(shards)]) \
        if shards else np.array([], dtype=int)
    assert sorted(int(g) for g in union) == list(range(total))


@settings(max_examples=40, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=300),
    shards=st.integers(min_value=1, max_value=8),
    partitioner=st.sampled_from(PARTITIONERS),
)
def test_identity_rebalance_moves_nothing(total, shards, partitioner):
    """Same membership, same partitioner: the plan must be empty."""
    topology = ClusterTopology.build(_endpoints(shards), total, partitioner)
    plan = topology.rebalance_plan(_endpoints(shards), partitioner)
    assert plan["moves"] == []
    assert plan["moved_weights"] == 0
