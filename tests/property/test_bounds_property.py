"""Property tests for the Grid-index bound machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.approx import Quantizer, quantize_dataset
from repro.core.bounds import classify_batch, sandwich_holds
from repro.core.grid import GridIndex

PARTITIONS = st.sampled_from([2, 4, 8, 16, 32, 64])

unit_matrix = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
    elements=st.floats(0.0, 1.0 - 1e-9, allow_nan=False, allow_infinity=False),
)


@st.composite
def matrix_and_weight(draw):
    mat = draw(unit_matrix)
    d = mat.shape[1]
    raw = draw(hnp.arrays(np.float64, (d,),
                          elements=st.floats(1e-6, 1.0)))
    return mat, raw / raw.sum()


@given(matrix_and_weight(), PARTITIONS)
@settings(max_examples=120, deadline=None)
def test_bound_sandwich_equation2(data, n):
    """Equation 2: L[f_w(p)] <= f_w(p) <= U[f_w(p)] for every p."""
    P, w = data
    grid = GridIndex.equal_width(n, 1.0)
    pq, wq = Quantizer(grid.alpha_p), Quantizer(grid.alpha_w)
    p_codes = quantize_dataset(P, pq)
    w_codes = wq.quantize(w)
    lower, upper = grid.score_bounds(p_codes.astype(np.intp),
                                     w_codes.astype(np.intp))
    scores = P @ w
    assert sandwich_holds(lower, scores, upper)


@given(matrix_and_weight(), PARTITIONS)
@settings(max_examples=60, deadline=None)
def test_classification_never_lies(data, n):
    """Case 1 implies truly better; Case 2 implies truly not-better."""
    P, w = data
    grid = GridIndex.equal_width(n, 1.0)
    pq, wq = Quantizer(grid.alpha_p), Quantizer(grid.alpha_w)
    p_codes = quantize_dataset(P, pq).astype(np.intp)
    w_codes = wq.quantize(w).astype(np.intp)
    lower, upper = grid.score_bounds(p_codes, w_codes)
    scores = P @ w
    fq = float(np.median(scores))
    case1, case2, _ = classify_batch(lower, upper, fq)
    assert np.all(scores[case1] < fq + 1e-12)
    assert np.all(scores[case2] > fq - 1e-12)


@given(matrix_and_weight(), st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=40, deadline=None)
def test_finer_grid_never_loosens_bounds(data, n):
    """Doubling n tightens (or keeps) every bound."""
    P, w = data
    coarse = GridIndex.equal_width(n, 1.0)
    fine = GridIndex.equal_width(2 * n, 1.0)

    def bounds(grid):
        pq, wq = Quantizer(grid.alpha_p), Quantizer(grid.alpha_w)
        return grid.score_bounds(
            quantize_dataset(P, pq).astype(np.intp),
            wq.quantize(w).astype(np.intp),
        )

    lo_c, hi_c = bounds(coarse)
    lo_f, hi_f = bounds(fine)
    assert np.all(lo_f >= lo_c - 1e-12)
    assert np.all(hi_f <= hi_c + 1e-12)
