"""Property tests for the dynamic engine: random mutation sequences must
never desynchronize it from a freshly built oracle over the live rows."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.ext.dynamic import DynamicRRQEngine

OPS = st.lists(
    st.tuples(st.sampled_from(["ip", "iw", "rp", "rw"]),
              st.integers(0, 2**31 - 1)),
    min_size=0, max_size=25,
)


def apply_ops(engine, ops, rng):
    for op, seed in ops:
        local = np.random.default_rng(seed)
        if op == "ip":
            engine.insert_product(local.random(engine.dim) * 0.999)
        elif op == "iw":
            engine.insert_weight(local.dirichlet(np.ones(engine.dim)))
        elif op == "rp":
            live = np.flatnonzero(engine._products.alive)
            if live.size > 3:  # keep enough rows to query
                engine.remove_product(int(local.choice(live)))
        elif op == "rw":
            live = np.flatnonzero(engine._weights.alive)
            if live.size > 3:
                engine.remove_weight(int(local.choice(live)))


def live_oracle(engine):
    P = engine._products.view[engine._products.alive]
    W = engine._weights.view[engine._weights.alive]
    w_map = np.flatnonzero(engine._weights.alive)
    return NaiveRRQ(
        ProductSet(P, value_range=engine.value_range), WeightSet(W)
    ), w_map


@given(OPS, st.integers(0, 2**31 - 1), st.integers(1, 12),
       st.booleans())
@settings(max_examples=30, deadline=None)
def test_mutations_preserve_agreement(ops, seed, k, compact):
    rng = np.random.default_rng(seed)
    base_P = ProductSet(rng.random((30, 3)) * 0.999, value_range=1.0)
    base_W = WeightSet(rng.dirichlet(np.ones(3), size=25))
    engine = DynamicRRQEngine.from_datasets(base_P, base_W, partitions=8)
    apply_ops(engine, ops, rng)
    if compact:
        engine.compact()
    q = engine._products.view[int(
        np.flatnonzero(engine._products.alive)[0]
    )]
    naive, w_map = live_oracle(engine)
    expected_rtk = frozenset(
        int(w_map[j]) for j in naive.reverse_topk(q, k).weights
    )
    assert engine.reverse_topk(q, k).weights == expected_rtk
    expected_rkr = tuple(sorted(
        (rank, int(w_map[j])) for rank, j in naive.reverse_kranks(q, k).entries
    ))
    assert engine.reverse_kranks(q, k).entries == expected_rkr
