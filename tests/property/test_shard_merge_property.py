"""Property: the scatter-gather merge is shard-count invariant (hypothesis).

The RKR k-smallest merge in ``ShardedGirRRQ._scatter_gather`` must break
rank ties identically no matter how ``W`` is partitioned — among equal
ranks the smaller weight index wins, and that ordering must survive any
per-shard truncation.  The adversarial dataset below makes ties the
common case, not the corner case: every weight vector appears five
times, so every rank is shared by (at least) a five-way tie spanning
shard boundaries.

Invariant: for any query point and any k, engines sharded 1, 2 and 5
ways produce **byte-identical** canonical JSON — and all of them match
the exact naive scan.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import WeightSet
from repro.data.synthetic import uniform_products
from repro.service.server import canonical_json, encode_result
from repro.vectorized.shard import ShardedGirRRQ

DIM = 3
SHARD_COUNTS = (1, 2, 5)


def adversarial_weights(unique=12, copies=5, seed=733):
    """Every weight repeated ``copies`` times -> dense cross-shard ties."""
    rng = np.random.default_rng(seed)
    base = rng.random((unique, DIM)) + 1e-3
    base /= base.sum(axis=1, keepdims=True)
    values = np.repeat(base, copies, axis=0)
    # Interleave so the copies of one weight land on *different* shards
    # under the range partitioner (repeat would keep them adjacent).
    order = np.arange(unique * copies).reshape(unique, copies).T.ravel()
    return WeightSet(values[order])


@pytest.fixture(scope="module")
def engines():
    products = uniform_products(size=80, dim=DIM, seed=731)
    weights = adversarial_weights()
    naive = NaiveRRQ(products, weights)
    sharded = {
        shards: ShardedGirRRQ(products, weights, shards=shards,
                              partitions=16)
        for shards in SHARD_COUNTS
    }
    yield products, naive, sharded
    for engine in sharded.values():
        engine.close()


query_points = st.lists(
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    min_size=DIM, max_size=DIM,
)


@given(q=query_points, k=st.integers(min_value=1, max_value=70))
@settings(max_examples=40, deadline=None)
def test_rkr_merge_is_shard_count_invariant(engines, q, k):
    _, naive, sharded = engines
    q_arr = np.array(q)
    reference = canonical_json(
        encode_result(naive.reverse_kranks(q_arr, k), "rkr"))
    for shards, engine in sharded.items():
        got = canonical_json(
            encode_result(engine.reverse_kranks(q_arr, k), "rkr"))
        assert got == reference, f"{shards}-shard RKR merge diverged"


@given(q=query_points, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=25, deadline=None)
def test_rtk_union_is_shard_count_invariant(engines, q, k):
    _, naive, sharded = engines
    q_arr = np.array(q)
    reference = canonical_json(
        encode_result(naive.reverse_topk(q_arr, k), "rtk"))
    for shards, engine in sharded.items():
        got = canonical_json(
            encode_result(engine.reverse_topk(q_arr, k), "rtk"))
        assert got == reference, f"{shards}-shard RTK union diverged"


def test_ties_actually_span_shards(engines):
    """The dataset earns its name: equal-rank runs cross shard bounds."""
    products, naive, sharded = engines
    entries = naive.reverse_kranks(products[0], 60).entries
    ranks = [rank for rank, _ in entries]
    assert len(ranks) != len(set(ranks)), "no rank ties - dataset too easy"
    five = sharded[5]

    def shard_of(idx):
        return next(s for s, (lo, hi) in enumerate(five._ranges)
                    if lo <= idx < hi)

    tied = {}
    for rank, idx in entries:
        tied.setdefault(rank, []).append(idx)
    crossing = any(len({shard_of(i) for i in group}) > 1
                   for group in tied.values() if len(group) > 1)
    assert crossing, "every tie group fell inside one shard"
