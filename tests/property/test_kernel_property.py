"""Property tests: the blocked kernel is byte-identical to the per-weight
loop and the naive scan across random workloads.

The acceptance bar for the whole optimization: multiple seeds, dims 2-8,
clustered + uniform data, Domin-abort pressure and minRank ties — every
RTK set and every RKR entry list must match ``GridIndexRRQ`` and
``NaiveRRQ`` exactly, for arbitrary block sizes.
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.gir import GridIndexRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import generate_products, generate_weights
from repro.vectorized.girkernel import GirKernelRRQ


def _workload(dist: str, dim: int, seed: int, size_p=90, size_w=80):
    P = generate_products(dist, size_p, dim, seed=seed)
    W = generate_weights("CL" if dist == "CL" else "UN", size_w, dim,
                         seed=seed + 1)
    return P, W


def _assert_identical(kernel, gir, naive, q, k):
    gir_rtk = gir.reverse_topk(q, k)
    kernel_rtk = kernel.reverse_topk(q, k)
    assert kernel_rtk.weights == gir_rtk.weights
    assert kernel_rtk.weights == naive.reverse_topk(q, k).weights
    gir_rkr = gir.reverse_kranks(q, k)
    kernel_rkr = kernel.reverse_kranks(q, k)
    assert kernel_rkr.entries == gir_rkr.entries
    assert kernel_rkr.entries == naive.reverse_kranks(q, k).entries


@pytest.mark.parametrize("dist", ["UN", "CL"])
@pytest.mark.parametrize("dim", [2, 3, 5, 8])
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_random_workloads(dist, dim, seed):
    P, W = _workload(dist, dim, seed)
    gir = GridIndexRRQ(P, W, partitions=16)
    kernel = GirKernelRRQ.from_gir(gir)
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(seed + 2)
    for qi in rng.choice(P.size, size=3, replace=False):
        for k in (1, 4, 25):
            _assert_identical(kernel, gir, naive, P[int(qi)], k)


@pytest.mark.parametrize("seed", [7, 19])
def test_domin_abort_pressure(seed):
    """Near-maximal queries are dominated by almost every product; the
    kernel's upfront Domin mask must reproduce the loop's lazy abort."""
    P, W = _workload("UN", 4, seed)
    gir = GridIndexRRQ(P, W, partitions=16)
    kernel = GirKernelRRQ.from_gir(gir)
    naive = NaiveRRQ(P, W)
    q = P.values.max(axis=0) * 0.999
    for k in (1, 3, 10, 60):
        _assert_identical(kernel, gir, naive, q, k)
    assert kernel.reverse_topk(q, 3).weights == frozenset()


@pytest.mark.parametrize("seed", [5, 23])
def test_minrank_tie_pressure(seed):
    """Low-entropy data: many products collide on few distinct values, so
    rank ties are everywhere and the RKR tie-break (smaller index wins)
    must survive block- and limit-based pruning."""
    rng = np.random.default_rng(seed)
    P = ProductSet(rng.integers(0, 4, size=(80, 3)) / 4.0)
    W_raw = rng.integers(1, 4, size=(70, 3)).astype(float)
    W = WeightSet(W_raw / W_raw.sum(axis=1, keepdims=True))
    gir = GridIndexRRQ(P, W, partitions=8)
    kernel = GirKernelRRQ.from_gir(gir)
    naive = NaiveRRQ(P, W)
    for qi in (0, 13, 40):
        for k in (1, 5, 20, 70):
            _assert_identical(kernel, gir, naive, P[qi], k)


@pytest.mark.parametrize("w_block,p_block", [(1, 1), (3, 7), (4096, 4096)])
def test_blocking_invariance(w_block, p_block):
    """Answers must not depend on tile geometry."""
    P, W = _workload("UN", 4, 77)
    reference = GirKernelRRQ(P, W, partitions=16)
    blocked = GirKernelRRQ(P, W, partitions=16,
                           w_block=w_block, p_block=p_block)
    for qi in (0, 44):
        for k in (2, 9):
            assert (blocked.reverse_topk(P[qi], k)
                    == reference.reverse_topk(P[qi], k))
            assert (blocked.reverse_kranks(P[qi], k).entries
                    == reference.reverse_kranks(P[qi], k).entries)
