"""Unit tests for the heuristic query planner."""

import pytest

from repro.data.synthetic import uniform_products, uniform_weights
from repro.ext.sparse import sparsify_weights
from repro.queries.engine import RRQEngine
from repro.queries.planner import (
    SPARSE_SUPPORT_SHARE,
    TINY_WORKLOAD,
    TREE_DIMENSION_LIMIT,
    AutoEngine,
    plan,
)


class TestRules:
    def test_tiny_workload_prefers_scan(self):
        P = uniform_products(20, 6, seed=1)
        W = uniform_weights(20, 6, seed=2)
        decision = plan(P, W)
        assert decision.rtk_method == "sim"
        assert "amortization" in decision.reason

    def test_low_dimensions_prefer_trees(self):
        P = uniform_products(500, 2, seed=3)
        W = uniform_weights(500, 2, seed=4)
        decision = plan(P, W)
        assert decision.rtk_method == "bbr"
        assert decision.rkr_method == "mpa"

    def test_boundary_dimension(self):
        P = uniform_products(500, TREE_DIMENSION_LIMIT + 1, seed=5)
        W = uniform_weights(500, TREE_DIMENSION_LIMIT + 1, seed=6)
        assert plan(P, W).rtk_method == "gir"

    def test_sparse_weights_prefer_sparse_engine(self):
        P = uniform_products(400, 10, seed=7)
        W = sparsify_weights(uniform_weights(400, 10, seed=8), nnz=3)
        decision = plan(P, W)
        assert decision.rtk_method == "gir-sparse"

    def test_skew_hint(self):
        P = uniform_products(400, 6, seed=9)
        W = uniform_weights(400, 6, seed=10)
        assert plan(P, W, skew_hint="skewed").rtk_method == "gir-adaptive"

    def test_default_is_gir(self):
        P = uniform_products(400, 8, seed=11)
        W = uniform_weights(400, 8, seed=12)
        decision = plan(P, W)
        assert decision.rtk_method == decision.rkr_method == "gir"


class TestAutoEngine:
    def test_routes_to_planned_methods(self):
        P = uniform_products(300, 2, seed=13)
        W = uniform_weights(300, 2, seed=14)
        auto = AutoEngine(P, W)
        assert auto.plan.rtk_method == "bbr"
        assert auto._rtk.name == "BBR"
        assert auto._rkr.name == "MPA"

    def test_shares_instance_when_methods_match(self):
        P = uniform_products(300, 6, seed=15)
        W = uniform_weights(300, 6, seed=16)
        auto = AutoEngine(P, W)
        assert auto._rtk is auto._rkr

    def test_answers_match_explicit_method(self):
        P = uniform_products(300, 6, seed=17)
        W = uniform_weights(250, 6, seed=18)
        auto = RRQEngine(P, W, method="auto")
        explicit = RRQEngine(P, W, method="gir")
        q = P[7]
        assert (auto.reverse_topk(q, 9).weights
                == explicit.reverse_topk(q, 9).weights)
        assert (auto.reverse_kranks(q, 9).entries
                == explicit.reverse_kranks(q, 9).entries)

    def test_low_d_auto_is_exact(self):
        P = uniform_products(300, 2, seed=19)
        W = uniform_weights(250, 2, seed=20)
        auto = RRQEngine(P, W, method="auto")
        naive = RRQEngine(P, W, method="naive")
        q = P[3]
        assert (auto.reverse_topk(q, 6).weights
                == naive.reverse_topk(q, 6).weights)
        assert (auto.reverse_kranks(q, 6).entries
                == naive.reverse_kranks(q, 6).entries)
