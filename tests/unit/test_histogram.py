"""Unit tests for repro.index.histogram (the MPA weight histogram)."""

import numpy as np
import pytest

from repro.data.synthetic import uniform_weights
from repro.errors import InvalidParameterError
from repro.index.histogram import WeightHistogram


class TestConstruction:
    def test_partition_of_weights(self):
        W = uniform_weights(200, 4, seed=1).values
        hist = WeightHistogram(W, resolution=5)
        hist.check_invariants()
        assert sum(b.count for b in hist.buckets()) == 200

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            WeightHistogram(np.empty((0, 3)))

    def test_rejects_zero_resolution(self):
        with pytest.raises(InvalidParameterError):
            WeightHistogram(np.ones((2, 2)) * 0.5, resolution=0)

    def test_resolution_one_single_bucket(self):
        W = uniform_weights(50, 3, seed=2).values
        hist = WeightHistogram(W, resolution=1)
        assert hist.num_buckets == 1
        assert hist.occupancy() == 50

    def test_top_boundary_clipped(self):
        # A weight component equal to 1.0 must land in the last cell.
        W = np.array([[1.0, 0.0], [0.0, 1.0]])
        hist = WeightHistogram(W, resolution=5)
        hist.check_invariants()
        assert hist.num_buckets == 2


class TestBuckets:
    def test_bucket_bounds_cover_members(self):
        W = uniform_weights(300, 3, seed=3).values
        hist = WeightHistogram(W, resolution=4)
        for bucket in hist.buckets():
            block = W[bucket.members]
            assert np.all(block >= bucket.lo - 1e-12)
            assert np.all(block <= bucket.hi + 1e-12)

    def test_bucket_of(self):
        W = uniform_weights(100, 3, seed=4).values
        hist = WeightHistogram(W, resolution=5)
        for idx in (0, 17, 99):
            assert idx in hist.bucket_of(idx).members

    def test_deterministic_iteration_order(self):
        W = uniform_weights(80, 3, seed=5).values
        hist = WeightHistogram(W, resolution=5)
        cells = [b.cell for b in hist.buckets()]
        assert cells == sorted(cells)


class TestHighDimensionalCollapse:
    def test_occupancy_drops_with_dimension(self):
        """Section 5.1: c^d explodes, so occupancy collapses toward 1."""
        low = WeightHistogram(uniform_weights(500, 2, seed=6).values, 5)
        high = WeightHistogram(uniform_weights(500, 8, seed=6).values, 5)
        assert high.occupancy() < low.occupancy()
        assert high.theoretical_buckets == 5 ** 8
        assert low.theoretical_buckets == 25

    def test_num_buckets_bounded_by_data(self):
        W = uniform_weights(100, 10, seed=7).values
        hist = WeightHistogram(W, resolution=5)
        assert hist.num_buckets <= 100  # only occupied cells materialized
