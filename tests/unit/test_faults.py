"""Unit tests for the fault-injection harness (repro.resilience.faults)."""

import pytest

from repro.errors import InvalidParameterError
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    active_injector,
    fire,
    inject,
    no_faults,
    set_injector,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown fault kind"):
            FaultSpec(site="x", kind="explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="x", kind="raise", probability=1.5)

    def test_bad_times_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="x", kind="raise", times=0)

    def test_bad_keep_fraction_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="x", kind="partial_write", keep_fraction=1.0)


class TestFaultPlan:
    def test_add_is_chainable_and_sites_deduplicate(self):
        plan = (FaultPlan(seed=7)
                .add("a", "io_error")
                .add("b", "latency")
                .add("a", "raise"))
        assert plan.sites() == ("a", "b")
        assert len(plan.specs) == 3


class TestFire:
    def test_io_error_fires_then_disarms(self):
        plan = FaultPlan().add("s", "io_error", times=2)
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(OSError, match="injected I/O error at s"):
                injector.fire("s")
        injector.fire("s")  # disarmed: no-op
        assert injector.fired("s") == 2
        assert injector.log == [("s", "io_error"), ("s", "io_error")]

    def test_raise_uses_given_exception(self):
        plan = FaultPlan().add("s", "raise",
                               exception=RuntimeError("backend down"))
        injector = FaultInjector(plan)
        with pytest.raises(RuntimeError, match="backend down"):
            injector.fire("s")

    def test_raise_accepts_factory(self):
        plan = FaultPlan().add("s", "raise",
                               exception=lambda: KeyError("made fresh"))
        injector = FaultInjector(plan)
        with pytest.raises(KeyError):
            injector.fire("s")

    def test_latency_sleeps_then_continues(self):
        plan = FaultPlan().add("s", "latency", latency_s=0.0)
        injector = FaultInjector(plan)
        injector.fire("s")  # must not raise
        assert injector.fired() == 1

    def test_other_sites_untouched(self):
        injector = FaultInjector(FaultPlan().add("s", "io_error"))
        injector.fire("t")
        assert injector.fired() == 0

    def test_probability_is_seeded_and_deterministic(self):
        def run():
            plan = FaultPlan(seed=42).add("s", "io_error", times=None,
                                          probability=0.5)
            injector = FaultInjector(plan)
            hits = []
            for _ in range(32):
                try:
                    injector.fire("s")
                    hits.append(0)
                except OSError:
                    hits.append(1)
            return hits

        first, second = run(), run()
        assert first == second
        assert 0 < sum(first) < 32


class TestMutate:
    def test_corrupt_flips_exact_bytes_at_fixed_offset(self):
        plan = FaultPlan().add("s", "corrupt", corrupt_bytes=2,
                               corrupt_offset=1)
        injector = FaultInjector(plan)
        out = injector.mutate("s", b"\x00\x00\x00\x00")
        assert out == b"\x00\xff\xff\x00"

    def test_corrupt_is_deterministic_per_seed(self):
        data = bytes(range(64))
        outs = []
        for _ in range(2):
            injector = FaultInjector(
                FaultPlan(seed=9).add("s", "corrupt", corrupt_bytes=4))
            outs.append(injector.mutate("s", data))
        assert outs[0] == outs[1]
        assert outs[0] != data

    def test_unarmed_site_passes_through(self):
        injector = FaultInjector(FaultPlan())
        assert injector.mutate("s", b"abc") == b"abc"


class TestPartialWrite:
    def test_returns_keep_fraction_once(self):
        plan = FaultPlan().add("s", "partial_write", keep_fraction=0.25)
        injector = FaultInjector(plan)
        assert injector.partial_write("s") == 0.25
        assert injector.partial_write("s") is None

    def test_injected_crash_is_oserror(self):
        assert issubclass(InjectedCrashError, OSError)


class TestGlobalHook:
    def test_fire_is_noop_without_injector(self):
        assert active_injector() is None
        fire("anything")  # must not raise

    def test_inject_scopes_and_restores(self):
        plan = FaultPlan().add("s", "io_error")
        with inject(plan) as injector:
            assert active_injector() is injector
            with pytest.raises(OSError):
                fire("s")
        assert active_injector() is None

    def test_inject_restores_previous_injector(self):
        outer = FaultInjector(FaultPlan())
        set_injector(outer)
        try:
            with inject(FaultPlan()):
                assert active_injector() is not outer
            assert active_injector() is outer
        finally:
            set_injector(None)

    def test_no_faults_suppresses_active_plan(self):
        with inject(FaultPlan().add("s", "io_error", times=None)):
            with no_faults():
                fire("s")  # suppressed
            with pytest.raises(OSError):
                fire("s")
        assert active_injector() is None
