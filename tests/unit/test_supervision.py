"""The failure detector's state machine and the supervisor's repair loop.

In-process HTTP workers (``serve_in_background``) play the primaries and
standbys — real sockets, no subprocesses — and every probe/act step is
driven by explicit ``tick()`` calls, so each assertion names the exact
tick where a state transition must happen.  The subprocess/SIGKILL
acceptance path lives in ``tests/chaos/test_cluster_failover.py``.
"""

from contextlib import ExitStack

import pytest

from repro.cluster import ClusterCoordinator, ClusterTopology
from repro.cluster.supervision import ClusterSupervisor, FailureDetector
from repro.data.datasets import WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.resilience.faults import FaultInjector, FaultPlan, inject
from repro.service.server import QueryService, serve_in_background

PRODUCTS = uniform_products(size=40, dim=3, seed=911)
WEIGHTS = uniform_weights(size=30, dim=3, seed=912)


def start_worker(stack):
    """One in-process naive HTTP worker over the full weight set."""
    service = QueryService.from_datasets(PRODUCTS, WEIGHTS, method="naive")
    return stack.enter_context(serve_in_background(service))


def make_coordinator(stack, endpoints_per_shard):
    topology = ClusterTopology.build(endpoints_per_shard, WEIGHTS.size,
                                     "range")
    coordinator = ClusterCoordinator(topology, shard_timeout_s=5.0)
    stack.callback(coordinator.close)
    return coordinator


class TestFailureDetector:
    def test_alive_primary_stays_alive(self):
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(stack, [[server.url]])
            detector = FailureDetector(coordinator)
            for _ in range(4):
                assert detector.tick() == {0: "alive"}
            snap = detector.snapshot()["0"]
            assert snap["consecutive_misses"] == 0
            assert snap["probes"] == 4
            assert snap["misses"] == 0

    def test_misses_escalate_suspect_then_dead_at_thresholds(self):
        with ExitStack() as stack:
            coordinator = make_coordinator(stack, [["http://127.0.0.1:9"]])
            detector = FailureDetector(coordinator, probe_timeout_s=0.2,
                                       suspect_after=2, dead_after=4)
            states = [detector.probe(0) for _ in range(5)]
            assert states == ["alive", "suspect", "suspect", "dead", "dead"]

    def test_one_success_resets_the_miss_streak(self):
        """A GC pause (2 misses) must not leave a lasting mark."""
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(stack, [[server.url]])
            detector = FailureDetector(coordinator, suspect_after=2,
                                       dead_after=3)
            plan = FaultPlan().add("supervision.heartbeat", "io_error",
                                   times=2)
            with inject(plan) as injector:
                assert detector.probe(0) == "alive"   # miss 1 (injected)
                assert detector.probe(0) == "suspect"  # miss 2
                assert detector.probe(0) == "alive"    # fault exhausted
                assert injector.fired("supervision.heartbeat") == 2
            assert detector.snapshot()["0"]["consecutive_misses"] == 0

    def test_reachable_but_slow_is_slow_never_dead(self):
        """Latency marks a primary slow; only misses can kill it."""
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(stack, [[server.url]])
            detector = FailureDetector(coordinator,
                                       slow_threshold_s=0.0,
                                       dead_after=1, suspect_after=1)
            for _ in range(5):
                assert detector.probe(0) == "slow"
            assert detector.snapshot()["0"]["ewma_latency_ms"] is not None

    def test_routing_flip_starts_a_fresh_streak(self):
        """A promoted primary must not inherit its predecessor's misses."""
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(
                stack, [["http://127.0.0.1:9", server.url]])
            detector = FailureDetector(coordinator, probe_timeout_s=0.2,
                                       suspect_after=1, dead_after=2)
            assert detector.probe(0) == "suspect"
            assert detector.probe(0) == "dead"
            coordinator.replace_shard_endpoints(0, [server.url])
            assert detector.probe(0) == "alive"
            assert detector.snapshot()["0"]["consecutive_misses"] == 0

    def test_threshold_validation(self):
        with ExitStack() as stack:
            coordinator = make_coordinator(stack, [["http://127.0.0.1:9"]])
            with pytest.raises(ValueError):
                FailureDetector(coordinator, suspect_after=5, dead_after=3)


class TestClusterSupervisor:
    def _dead_primary_with_standby(self, stack):
        """Shard 0: unreachable primary + one answering standby."""
        standby = start_worker(stack)
        coordinator = make_coordinator(
            stack, [["http://127.0.0.1:9", standby.url]])
        detector = FailureDetector(coordinator, probe_timeout_s=0.2,
                                   suspect_after=1, dead_after=2)
        return coordinator, detector, standby

    def test_promotes_standby_and_flips_routing(self, monkeypatch):
        with ExitStack() as stack:
            coordinator, detector, standby = \
                self._dead_primary_with_standby(stack)
            promoted = []
            monkeypatch.setattr(
                coordinator.clients[0], "promote",
                lambda endpoint=None: promoted.append(endpoint)
                or {"role": "primary", "last_lsn": 7})
            supervisor = ClusterSupervisor(coordinator, detector=detector)
            supervisor.tick()               # miss 1
            report = supervisor.tick()      # miss 2 -> dead -> failover
            assert report["states"][0] == "dead"
            (action,) = report["actions"]
            assert action["kind"] == "failover"
            assert action["new_primary"] == standby.url
            assert promoted == [standby.url]
            assert coordinator.topology.shard(0).primary == standby.url
            assert coordinator.failovers == 1
            assert supervisor.status()["promotions"] == 1
            # Fresh streak for the new primary: next tick sees it alive.
            assert supervisor.tick()["states"][0] == "alive"

    def test_no_standby_means_failover_failed_not_crash(self):
        with ExitStack() as stack:
            coordinator = make_coordinator(stack, [["http://127.0.0.1:9"]])
            detector = FailureDetector(coordinator, probe_timeout_s=0.2,
                                       suspect_after=1, dead_after=1)
            supervisor = ClusterSupervisor(coordinator, detector=detector)
            report = supervisor.tick()
            (action,) = report["actions"]
            assert action["kind"] == "failover_failed"
            assert "no standby" in action["reason"]
            assert supervisor.status()["failed_failovers"] == 1
            # Routing untouched: there was nothing safe to flip to.
            assert coordinator.failovers == 0

    def test_injected_promote_failure_is_contained(self):
        """The ``supervision.promote`` chaos site: a promote that dies
        mid-flight counts as a failed failover and is retried next tick."""
        with ExitStack() as stack:
            coordinator, detector, standby = \
                self._dead_primary_with_standby(stack)
            supervisor = ClusterSupervisor(coordinator, detector=detector)
            plan = FaultPlan().add("supervision.promote", "io_error",
                                   times=1)
            with inject(plan):
                supervisor.tick()           # miss 1
                report = supervisor.tick()  # dead -> promote blows up
            (action,) = report["actions"]
            assert action["kind"] == "failover_failed"
            assert "promote failed" in action["reason"]
            assert coordinator.topology.shard(0).primary == \
                "http://127.0.0.1:9"

    def test_restart_crash_loop_guard(self, monkeypatch):
        """A worker that dies on every restart is given up on after
        ``max_restarts`` attempts — promotion still happens each time."""
        with ExitStack() as stack:
            coordinator, detector, standby = \
                self._dead_primary_with_standby(stack)
            monkeypatch.setattr(
                coordinator.clients[0], "promote",
                lambda endpoint=None: {"role": "primary", "last_lsn": 1})

            def crashy_restart(shard_id, dead_url, primary_url):
                raise OSError("spawn failed")

            supervisor = ClusterSupervisor(coordinator,
                                           restart_worker=crashy_restart,
                                           detector=detector,
                                           max_restarts=1)
            supervisor.tick()
            report = supervisor.tick()      # failover + restart attempt 1
            (action,) = report["actions"]
            assert action["restart"]["status"] == "failed"
            assert supervisor.status()["failed_restarts"] == 1
            # Simulate the new primary dying too: force the shard dead
            # again by flipping routing back to a dead endpoint.
            coordinator.replace_shard_endpoints(
                0, ["http://127.0.0.1:9", standby.url])
            monkeypatch.setattr(
                coordinator.clients[0], "promote",
                lambda endpoint=None: {"role": "primary", "last_lsn": 2})
            supervisor.tick()
            report = supervisor.tick()
            (action,) = report["actions"]
            assert action["restart"]["status"] == "crash_loop"
            status = supervisor.status()
            assert status["restart_attempts"] == {"0": 1}

    def test_injected_restart_crash_counts_failed(self, monkeypatch):
        """The ``supervision.restart`` chaos site."""
        with ExitStack() as stack:
            coordinator, detector, standby = \
                self._dead_primary_with_standby(stack)
            monkeypatch.setattr(
                coordinator.clients[0], "promote",
                lambda endpoint=None: {"role": "primary", "last_lsn": 1})
            supervisor = ClusterSupervisor(
                coordinator, detector=detector,
                restart_worker=lambda *a: "http://127.0.0.1:10")
            plan = FaultPlan().add("supervision.restart", "io_error",
                                   times=1)
            with inject(plan):
                supervisor.tick()
                report = supervisor.tick()
            (action,) = report["actions"]
            assert action["kind"] == "failover"       # promotion landed
            assert action["restart"]["status"] == "failed"
            assert supervisor.status()["failed_restarts"] == 1

    def test_background_thread_lifecycle(self):
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(stack, [[server.url]])
            supervisor = ClusterSupervisor(coordinator,
                                           tick_interval_s=0.01)
            supervisor.start()
            assert supervisor.running
            try:
                deadline = 100
                while supervisor.status()["ticks"] == 0 and deadline:
                    deadline -= 1
                    import time
                    time.sleep(0.01)
                assert supervisor.status()["ticks"] > 0
            finally:
                supervisor.stop()
            assert not supervisor.running


class TestShardTuning:
    """The supervisor's per-shard tuning sweep: each shard primary is
    tuned against its own workload (force=False), so grids diverge
    across the cluster; dead shards are skipped, and a failing tune
    never takes the repair loop down."""

    def _two_shard_cluster(self, stack):
        servers = [start_worker(stack), start_worker(stack)]
        coordinator = make_coordinator(
            stack, [[servers[0].url], [servers[1].url]])
        detector = FailureDetector(coordinator, probe_timeout_s=2.0)
        return coordinator, detector, servers

    def test_sweep_hits_every_alive_primary(self, monkeypatch):
        with ExitStack() as stack:
            coordinator, detector, servers = self._two_shard_cluster(stack)
            calls = []
            for shard_id in (0, 1):
                def tune(force=True, endpoint=None, timeout_s=None,
                         _sid=shard_id):
                    calls.append((_sid, force, endpoint))
                    return {"status": "skipped"}
                monkeypatch.setattr(coordinator.clients[shard_id],
                                    "tune", tune)
            supervisor = ClusterSupervisor(coordinator, detector=detector,
                                           tune_every=2)
            assert supervisor.tick()["actions"] == []   # tick 1: no sweep
            assert calls == []
            supervisor.tick()                           # tick 2: sweep
            assert sorted(calls) == [
                (0, False, servers[0].url), (1, False, servers[1].url)]
            status = supervisor.status()
            assert status["tuner_sweeps"] == 1
            assert status["tuner_swaps"] == 0
            assert status["tune_every"] == 2

    def test_swap_outcome_recorded_as_event(self, monkeypatch):
        with ExitStack() as stack:
            coordinator, detector, servers = self._two_shard_cluster(stack)
            outcomes = {
                0: {"status": "swapped", "winner_label": "n64-quantile",
                    "improvement": 0.21},
                1: {"status": "skipped"},
            }
            for shard_id in (0, 1):
                monkeypatch.setattr(
                    coordinator.clients[shard_id], "tune",
                    lambda _sid=shard_id, **kw: outcomes[_sid])
            supervisor = ClusterSupervisor(coordinator, detector=detector,
                                           tune_every=1)
            report = supervisor.tick()
            (action,) = report["actions"]
            assert action["kind"] == "tune_swapped"
            assert action["shard"] == 0
            assert action["winner"] == "n64-quantile"
            assert supervisor.status()["tuner_swaps"] == 1

    def test_dead_shard_skipped_and_errors_contained(self, monkeypatch):
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(
                stack, [["http://127.0.0.1:9"], [server.url]])
            detector = FailureDetector(coordinator, probe_timeout_s=0.2,
                                       suspect_after=1, dead_after=1)
            tuned = []
            monkeypatch.setattr(
                coordinator.clients[0], "tune",
                lambda **kw: tuned.append(0) or {"status": "skipped"})

            def boom(**kw):
                raise OSError("probe socket died")

            monkeypatch.setattr(coordinator.clients[1], "tune", boom)
            supervisor = ClusterSupervisor(coordinator, detector=detector,
                                           tune_every=1)
            report = supervisor.tick()
            # Shard 0 is dead -> failover attempted, never tuned.
            assert tuned == []
            kinds = [a["kind"] for a in report["actions"]]
            assert "tune_failed" in kinds
            failed = next(a for a in report["actions"]
                          if a["kind"] == "tune_failed")
            assert failed["shard"] == 1
            assert "OSError" in failed["reason"]
            assert supervisor.status()["tuner_errors"] == 1

    def test_disabled_by_default(self):
        with ExitStack() as stack:
            server = start_worker(stack)
            coordinator = make_coordinator(stack, [[server.url]])
            supervisor = ClusterSupervisor(
                coordinator, detector=FailureDetector(coordinator))
            for _ in range(3):
                assert supervisor.tick()["actions"] == []
            assert supervisor.status()["tuner_sweeps"] == 0
