"""Unit tests for the MVCC segment store (``repro.storage``).

Contract under test: every query answer — merge path, cached kernel,
or snapshot-fed sharded engine — is **byte-identical** to ``NaiveRRQ``
over the same live rows, across seals, compactions, and concurrent
mutations; pinned snapshots are immune to everything that happens after
the pin; retired segment files survive exactly as long as a pin holds
them.
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.errors import InvalidParameterError
from repro.service.server import canonical_json, encode_result
from repro.storage import SegmentStore, SnapshotKernel

DIM = 3


def _rng(seed=4201):
    return np.random.default_rng(seed)


def fill(store, rng, n_products=24, n_weights=16):
    """Insert a deterministic population; returns (product gids, weight gids)."""
    pids = [store.insert_product(rng.uniform(0, 0.95, DIM))
            for _ in range(n_products)]
    wids = []
    for _ in range(n_weights):
        w = rng.uniform(0.05, 1.0, DIM)
        wids.append(store.insert_weight(w / w.sum()))
    return pids, wids


def naive_reference(store):
    """(NaiveRRQ over the live rows, local->global weight id map)."""
    with store.pin() as snap:
        p_rows, _ = snap.live_products()
        w_rows, w_gids = snap.live_weights()
    naive = NaiveRRQ(ProductSet(p_rows, value_range=store.value_range),
                     WeightSet(w_rows))
    return naive, w_gids


def assert_parity(backend, store, rng, k=5, queries=4):
    """``backend`` answers == gid-remapped NaiveRRQ answers, byte-for-byte."""
    naive, w_gids = naive_reference(store)
    for _ in range(queries):
        q = rng.uniform(0, 0.95, DIM)
        expected_rtk = frozenset(int(w_gids[j])
                                 for j in naive.reverse_topk(q, k).weights)
        assert backend.reverse_topk(q, k).weights == expected_rtk
        naive_rkr = naive.reverse_kranks(q, k)
        expected = tuple((rank, int(w_gids[j]))
                         for rank, j in naive_rkr.entries)
        got = backend.reverse_kranks(q, k)
        assert got.entries == expected
        # And the wire encodings agree byte-for-byte.
        assert (canonical_json(encode_result(got, "rkr"))
                == canonical_json(encode_result(
                    type(got)(entries=expected, k=k, counter=got.counter),
                    "rkr")))


class TestMemoryStore:
    def test_insert_then_query_matches_naive(self):
        rng = _rng()
        store = SegmentStore(DIM, partitions=8)
        fill(store, rng)
        assert_parity(store, store, rng)

    def test_seal_boundaries_do_not_change_answers(self, tmp_path):
        rng = _rng(77)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        for round_ in range(4):
            fill(store, rng, n_products=10, n_weights=6)
            assert store.seal(force=True) is not None
        assert store.storage_stats()["segments"] == 4
        assert_parity(store, store, rng)

    def test_deletes_span_segments(self, tmp_path):
        rng = _rng(78)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        pids, wids = fill(store, rng)
        store.seal(force=True)
        # Kill sealed rows (manifest dead set) and delta rows alike.
        store.remove_product(pids[0])
        store.remove_weight(wids[1])
        fill(store, rng, n_products=6, n_weights=4)
        store.remove_product(store.insert_product(rng.uniform(0, 0.9, DIM)))
        assert_parity(store, store, rng)

    def test_modify_replaces_and_tombstones(self):
        rng = _rng(79)
        store = SegmentStore(DIM, partitions=8)
        pids, wids = fill(store, rng, n_products=8, n_weights=5)
        new_pid = store.modify_product(pids[2], rng.uniform(0, 0.9, DIM))
        assert new_pid not in pids
        w = rng.uniform(0.1, 1.0, DIM)
        new_wid = store.modify_weight(wids[0], w, renormalize=True)
        assert new_wid not in wids
        with pytest.raises(InvalidParameterError):
            store.products[pids[2]]
        with pytest.raises(InvalidParameterError):
            store.weights[wids[0]]
        assert_parity(store, store, rng)

    def test_validation_errors(self):
        rng = _rng(80)
        store = SegmentStore(DIM, partitions=8)
        fill(store, rng, n_products=4, n_weights=3)
        with pytest.raises(InvalidParameterError):
            store.remove_product(999)
        store.remove_product(0)
        with pytest.raises(InvalidParameterError):
            store.remove_product(0)  # double delete
        with pytest.raises(InvalidParameterError):
            store.reverse_topk(np.zeros(DIM), 0)


class TestSnapshotIsolation:
    def test_pinned_reader_survives_mutations_and_compaction(self, tmp_path):
        """ISSUE acceptance: pin, 100+ mutations + full compaction, then
        the pinned answers still match NaiveRRQ on the *pinned* state."""
        rng = _rng(90)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        fill(store, rng, n_products=30, n_weights=20)
        store.seal(force=True)

        snap = store.pin()
        p_rows, _ = snap.live_products()
        w_rows, w_gids = snap.live_weights()
        pinned_naive = NaiveRRQ(
            ProductSet(p_rows.copy(), value_range=store.value_range),
            WeightSet(w_rows.copy()))
        queries = [rng.uniform(0, 0.95, DIM) for _ in range(5)]
        before = [canonical_json(encode_result(snap.reverse_kranks(q, 5),
                                               "rkr"))
                  for q in queries]

        # 100+ mutations, several seals, then a full compaction.
        mutations = 0
        for _ in range(110):
            roll = rng.random()
            if roll < 0.5:
                store.insert_product(rng.uniform(0, 0.9, DIM))
            elif roll < 0.75:
                w = rng.uniform(0.1, 1.0, DIM)
                store.insert_weight(w / w.sum())
            else:
                live = store.products.live_indices()
                store.remove_product(int(live[rng.integers(len(live))]))
            mutations += 1
            if mutations % 25 == 0:
                store.seal(force=True)
        store.seal(force=True)
        store.compact()
        assert store.storage_stats()["segments"] == 1

        for q, expected in zip(queries, before):
            got = canonical_json(encode_result(snap.reverse_kranks(q, 5),
                                               "rkr"))
            assert got == expected
            ref = frozenset(int(w_gids[j])
                            for j in pinned_naive.reverse_topk(q, 5).weights)
            assert snap.reverse_topk(q, 5).weights == ref
        snap.release()

    def test_retired_segment_files_live_until_release(self, tmp_path):
        rng = _rng(91)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        for _ in range(3):
            fill(store, rng, n_products=8, n_weights=5)
            store.seal(force=True)
        old_dirs = [seg.directory for seg in store._segments]
        assert all(d is not None and d.is_dir() for d in old_dirs)

        snap = store.pin()
        store.compact()
        # The pin holds every pre-compaction segment directory alive.
        assert all(d.is_dir() for d in old_dirs)
        assert store.storage_stats()["retired_pending"] == len(old_dirs)
        snap.release()
        assert not any(d.exists() for d in old_dirs)
        assert store.storage_stats()["retired_pending"] == 0
        assert_parity(store, store, rng)

    def test_compaction_drops_dead_rows_and_keeps_answers(self, tmp_path):
        rng = _rng(92)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        pids, wids = fill(store, rng)
        store.seal(force=True)
        for pid in pids[:5]:
            store.remove_product(pid)
        store.remove_weight(wids[0])
        store.seal(force=True)
        p_map, w_map = store.compact()
        assert all(p_map[pid] == -1 for pid in pids[:5])
        assert w_map[wids[0]] == -1
        assert all(p_map[pid] == pid for pid in pids[5:])
        stats = store.storage_stats()
        assert stats["dead_products"] == 0 and stats["dead_weights"] == 0
        assert_parity(store, store, rng)


class TestPersistence:
    def test_round_trip_from_directory(self, tmp_path):
        rng = _rng(100)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        pids, _ = fill(store, rng)
        store.remove_product(pids[3])
        store.seal(force=True)
        store.checkpoint(store.applied_lsn)
        queries = [rng.uniform(0, 0.95, DIM) for _ in range(3)]
        expected = [canonical_json(encode_result(store.reverse_kranks(q, 4),
                                                 "rkr"))
                    for q in queries]
        store.close()

        reopened = SegmentStore.from_directory(tmp_path)
        try:
            assert reopened.num_products == store.num_products
            assert reopened.num_weights == store.num_weights
            for q, ref in zip(queries, expected):
                got = canonical_json(
                    encode_result(reopened.reverse_kranks(q, 4), "rkr"))
                assert got == ref
        finally:
            reopened.close()

    def test_state_arrays_round_trip(self):
        rng = _rng(101)
        store = SegmentStore(DIM, partitions=8)
        pids, _ = fill(store, rng, n_products=10, n_weights=6)
        store.remove_product(pids[1])
        state = store.state_arrays()

        clone = SegmentStore(DIM, partitions=8)
        clone.load_state_arrays(state["products"], state["p_alive"],
                                state["weights"], state["w_alive"])
        assert clone.num_products == store.num_products
        assert clone.num_weights == store.num_weights
        q = rng.uniform(0, 0.9, DIM)
        assert (clone.reverse_topk(q, 3).weights
                == store.reverse_topk(q, 3).weights)

    def test_storage_stats_shape(self, tmp_path):
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        fill(store, _rng(102), n_products=6, n_weights=4)
        stats = store.storage_stats()
        for key in ("backend", "segments", "delta_rows", "live_products",
                    "live_weights", "live_fraction", "dead_fraction",
                    "generation", "manifest_generation", "manifest_lsn",
                    "pinned_snapshots", "retired_pending", "seals_total",
                    "compactions_total", "per_segment"):
            assert key in stats, key
        assert stats["backend"] == "segmented"


class TestDenseReaders:
    def test_snapshot_kernel_matches_merge_path(self, tmp_path):
        rng = _rng(110)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        for _ in range(3):
            fill(store, rng, n_products=12, n_weights=8)
            store.seal(force=True)
        fill(store, rng, n_products=5, n_weights=3)  # live delta too
        with store.pin() as snap:
            kernel = SnapshotKernel.build(snap)
            assert kernel is not None and kernel.matches(snap)
            assert_parity(kernel, store, rng)
        store.insert_product(rng.uniform(0, 0.9, DIM))
        with store.pin() as snap2:
            assert not kernel.matches(snap2)

    def test_sharded_engine_from_snapshot(self, tmp_path):
        from repro.vectorized.shard import ShardedGirRRQ

        rng = _rng(111)
        store = SegmentStore(DIM, partitions=8, directory=tmp_path)
        pids, wids = fill(store, rng, n_products=30, n_weights=20)
        store.seal(force=True)
        store.remove_weight(wids[2])
        fill(store, rng, n_products=4, n_weights=4)
        with store.pin() as snap:
            sharded = ShardedGirRRQ.from_snapshot(snap, shards=3)
            try:
                assert_parity(sharded, store, rng)
            finally:
                sharded.close()


class TestDurableBackendResolution:
    def test_fresh_auto_is_flat(self, tmp_path):
        from repro.durability import DurableDynamicRRQ

        engine = DurableDynamicRRQ(tmp_path / "d", dim=DIM)
        try:
            assert engine.backend == "flat"
        finally:
            engine.close()

    def test_segmented_persists_and_conflicts_refuse(self, tmp_path):
        from repro.durability import DurableDynamicRRQ

        rng = _rng(120)
        path = tmp_path / "d"
        engine = DurableDynamicRRQ(path, dim=DIM, backend="segmented",
                                   auto_compact=False)
        engine.insert_product(rng.uniform(0, 0.9, DIM))
        engine.close()

        reopened = DurableDynamicRRQ(path)  # auto -> persisted backend
        try:
            assert reopened.backend == "segmented"
            assert reopened.storage_stats() is not None
        finally:
            reopened.close()

        with pytest.raises(InvalidParameterError):
            DurableDynamicRRQ(path, backend="flat")
