"""Unit tests for repro.data.datasets."""

import numpy as np
import pytest

from repro.data.datasets import (
    ProductSet,
    WeightSet,
    check_compatible,
    check_query_point,
    score,
)
from repro.errors import (
    DataValidationError,
    DimensionMismatchError,
    EmptyDatasetError,
)


class TestProductSet:
    def test_basic_construction(self):
        ps = ProductSet([[1.0, 2.0], [3.0, 4.0]], value_range=10.0)
        assert ps.size == 2
        assert ps.dim == 2
        assert ps.value_range == 10.0

    def test_single_vector_promoted_to_matrix(self):
        ps = ProductSet([1.0, 2.0, 3.0], value_range=5.0)
        assert ps.size == 1
        assert ps.dim == 3

    def test_auto_value_range_power_of_ten(self):
        assert ProductSet([[0.5, 0.7]]).value_range == 1.0
        assert ProductSet([[5.0, 7.0]]).value_range == 10.0
        assert ProductSet([[55.0, 7.0]]).value_range == 100.0
        assert ProductSet([[5500.0, 7.0]]).value_range == 10000.0

    def test_values_are_read_only(self):
        ps = ProductSet([[1.0, 2.0]], value_range=10.0)
        with pytest.raises(ValueError):
            ps.values[0, 0] = 9.0

    def test_rejects_negative_values(self):
        with pytest.raises(DataValidationError):
            ProductSet([[1.0, -0.5]])

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            ProductSet([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError):
            ProductSet([[1.0, float("inf")]])

    def test_rejects_empty(self):
        with pytest.raises(EmptyDatasetError):
            ProductSet(np.empty((0, 3)))

    def test_rejects_zero_dim(self):
        with pytest.raises(DataValidationError):
            ProductSet(np.empty((3, 0)))

    def test_rejects_3d_array(self):
        with pytest.raises(DataValidationError):
            ProductSet(np.zeros((2, 2, 2)))

    def test_rejects_value_at_or_above_range(self):
        with pytest.raises(DataValidationError):
            ProductSet([[1.0, 2.0]], value_range=2.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(DataValidationError):
            ProductSet([[0.1]], value_range=0.0)

    def test_iteration_and_indexing(self):
        ps = ProductSet([[1.0, 2.0], [3.0, 4.0]], value_range=10.0)
        rows = list(ps)
        assert len(rows) == 2
        assert np.array_equal(ps[1], [3.0, 4.0])
        assert np.array_equal(ps.point(0), [1.0, 2.0])
        assert len(ps) == 2

    def test_subset(self):
        ps = ProductSet([[1.0], [2.0], [3.0]], value_range=10.0)
        sub = ps.subset([0, 2])
        assert sub.size == 2
        assert np.array_equal(sub.values.ravel(), [1.0, 3.0])
        assert sub.value_range == ps.value_range

    def test_normalized(self):
        ps = ProductSet([[5.0, 2.5]], value_range=10.0)
        norm = ps.normalized()
        assert norm.value_range == 1.0
        assert np.allclose(norm.values, [[0.5, 0.25]])


class TestWeightSet:
    def test_basic_construction(self):
        ws = WeightSet([[0.5, 0.5], [0.9, 0.1]])
        assert ws.size == 2
        assert ws.dim == 2

    def test_rejects_bad_sum(self):
        with pytest.raises(DataValidationError):
            WeightSet([[0.5, 0.4]])

    def test_renormalize(self):
        ws = WeightSet([[2.0, 2.0]], renormalize=True)
        assert np.allclose(ws.values, [[0.5, 0.5]])

    def test_renormalize_rejects_zero_rows(self):
        with pytest.raises(DataValidationError):
            WeightSet([[0.0, 0.0]], renormalize=True)

    def test_rejects_negative(self):
        with pytest.raises(DataValidationError):
            WeightSet([[1.5, -0.5]])

    def test_values_read_only(self):
        ws = WeightSet([[0.4, 0.6]])
        with pytest.raises(ValueError):
            ws.values[0, 0] = 1.0

    def test_subset_and_accessors(self):
        ws = WeightSet([[0.4, 0.6], [0.2, 0.8], [1.0, 0.0]])
        sub = ws.subset([2, 0])
        assert sub.size == 2
        assert np.array_equal(sub.weight(0), [1.0, 0.0])
        assert len(list(ws)) == 3


class TestHelpers:
    def test_check_compatible_ok(self):
        check_compatible(ProductSet([[1.0, 2.0]]), WeightSet([[0.5, 0.5]]))

    def test_check_compatible_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            check_compatible(ProductSet([[1.0, 2.0]]), WeightSet([[1.0]]))

    def test_check_query_point_ok(self):
        q = check_query_point([1.0, 2.0], 2)
        assert q.dtype == np.float64
        assert q.shape == (2,)

    def test_check_query_point_wrong_dim(self):
        with pytest.raises(DimensionMismatchError):
            check_query_point([1.0], 2)

    def test_check_query_point_nan(self):
        with pytest.raises(DataValidationError):
            check_query_point([1.0, float("nan")], 2)

    def test_check_query_point_negative(self):
        with pytest.raises(DataValidationError):
            check_query_point([1.0, -2.0], 2)

    def test_score_matches_figure1(self, figure1_data):
        P, W = figure1_data
        # Tom's score for p1 = 0.6*0.8 + 0.7*0.2 = 0.62 (paper Section 1).
        assert score(W[0], P[0]) == pytest.approx(0.62)


class TestRowLevelDiagnostics:
    """Validation failures must name the first offending row (ISSUE:

    a million-row ingest that dies with "contains NaN" and no coordinates
    is a debugging session; with the row index it is a grep)."""

    def test_nan_names_row_and_values(self):
        rows = [[0.1, 0.2], [0.3, float("nan")], [0.5, 0.5]]
        with pytest.raises(DataValidationError,
                           match=r"first offending row 1"):
            ProductSet(rows)

    def test_inf_names_row(self):
        rows = [[0.1, 0.2], [0.3, 0.4], [float("inf"), 0.5]]
        with pytest.raises(DataValidationError,
                           match=r"first offending row 2"):
            ProductSet(rows)

    def test_negative_names_row(self):
        rows = [[0.1, 0.2], [-0.3, 0.4]]
        with pytest.raises(DataValidationError,
                           match=r"negative values.*first offending row 1"):
            ProductSet(rows)

    def test_non_numeric_is_data_validation_error(self):
        with pytest.raises(DataValidationError, match="not numeric"):
            ProductSet([["a", "b"]])

    def test_weight_sum_error_names_row_and_sum(self):
        rows = [[0.5, 0.5], [0.9, 0.3]]
        with pytest.raises(DataValidationError,
                           match=r"weight vector 1 sums to 1.2"):
            WeightSet(rows)

    def test_renormalize_zero_sum_names_row(self):
        rows = [[0.5, 0.5], [0.0, 0.0]]
        with pytest.raises(DataValidationError,
                           match=r"first offending row 1"):
            WeightSet(rows, renormalize=True)
