"""Unit tests for the real-data stand-ins (repro.data.real)."""

import numpy as np
import pytest

from repro.data.real import (
    COLOR_DIM,
    DIANPING_DIM,
    HOUSE_DIM,
    color,
    dianping,
    house,
)
from repro.errors import InvalidParameterError


class TestHouse:
    def test_shape_and_range(self):
        ps = house(size=500, seed=1)
        assert ps.dim == HOUSE_DIM
        assert ps.size == 500
        assert ps.values.min() >= 0
        assert ps.values.max() < 1.0

    def test_compositional_shares(self):
        # Expenditure shares per family sum to (at most) 1.
        ps = house(size=300, seed=2)
        sums = ps.values.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)
        assert sums.mean() > 0.9  # nearly all of the budget is covered

    def test_anticorrelation_of_shares(self):
        ps = house(size=2000, seed=3)
        corr = np.corrcoef(ps.values.T)
        off_diag = corr[~np.eye(HOUSE_DIM, dtype=bool)]
        # Compositional data: average pairwise correlation is negative.
        assert off_diag.mean() < 0

    def test_rejects_bad_size(self):
        with pytest.raises(InvalidParameterError):
            house(size=0)

    def test_deterministic(self):
        assert np.array_equal(house(50, seed=7).values, house(50, seed=7).values)


class TestColor:
    def test_shape(self):
        ps = color(size=400, seed=1)
        assert ps.dim == COLOR_DIM
        assert ps.size == 400

    def test_clustered_structure(self):
        ps = color(size=600, seed=2)
        # Clustered data: variance of pairwise distances is higher than a
        # uniform cloud of the same size (close-in-cluster + far-between).
        sample = ps.values[:200]
        diff = sample[:, None, :] - sample[None, :, :]
        dist = np.sqrt((diff ** 2).sum(-1))
        uniform = np.random.default_rng(0).random((200, COLOR_DIM))
        udiff = uniform[:, None, :] - uniform[None, :, :]
        udist = np.sqrt((udiff ** 2).sum(-1))
        assert dist.std() > udist.std()

    def test_rejects_bad_size(self):
        with pytest.raises(InvalidParameterError):
            color(size=-1)


class TestDianping:
    def test_structure(self):
        data = dianping(num_restaurants=150, num_users=120, reviews_per_user=4,
                        seed=5)
        assert data.restaurants.dim == DIANPING_DIM
        assert data.users.dim == DIANPING_DIM
        assert data.restaurants.size == 150
        assert data.users.size == 120
        assert data.num_reviews == 120 * 4

    def test_users_on_simplex(self):
        data = dianping(num_restaurants=80, num_users=60, seed=6)
        assert np.allclose(data.users.values.sum(axis=1), 1.0)

    def test_attributes_in_unit_range(self):
        data = dianping(num_restaurants=80, num_users=60, seed=6)
        assert data.restaurants.values.min() >= 0
        assert data.restaurants.values.max() < 1.0

    def test_review_averaging_softens_extremes(self):
        # With many reviews per restaurant, averaged attributes should be
        # less extreme than single-review noise: std over restaurants with
        # popular restaurants reviewed often stays bounded.
        data = dianping(num_restaurants=50, num_users=400, reviews_per_user=10,
                        seed=7)
        assert data.restaurants.values.std() < 0.35

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            dianping(num_restaurants=0)
        with pytest.raises(InvalidParameterError):
            dianping(reviews_per_user=0)

    def test_deterministic(self):
        a = dianping(40, 30, seed=9)
        b = dianping(40, 30, seed=9)
        assert np.array_equal(a.restaurants.values, b.restaurants.values)
        assert np.array_equal(a.users.values, b.users.values)
