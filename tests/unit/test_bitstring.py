"""Unit tests for repro.core.bitstring (Section 3.2 compression)."""

import numpy as np
import pytest

from repro.core.bitstring import (
    compression_ratio,
    pack_matrix,
    packed_size_bytes,
    unpack_matrix,
)
from repro.errors import DataValidationError, InvalidParameterError


class TestPackUnpack:
    def test_figure6_example(self):
        """Figure 6: p_a = (2, 0, 2) with b = 2 packs to bits 100010."""
        payload = pack_matrix(np.array([[2, 0, 2]]), bits=2)
        # 100010 padded to a byte: 10001000 = 0x88.
        assert payload == bytes([0b10001000])
        back = unpack_matrix(payload, 1, 3, 2)
        assert back.tolist() == [[2, 0, 2]]

    @pytest.mark.parametrize("bits", [1, 2, 3, 5, 6, 8, 12, 16])
    def test_roundtrip_random(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 2 ** bits, size=(23, 7))
        payload = pack_matrix(codes, bits)
        assert len(payload) == packed_size_bytes(23, 7, bits)
        back = unpack_matrix(payload, 23, 7, bits)
        assert np.array_equal(back, codes)

    def test_rejects_out_of_range(self):
        with pytest.raises(DataValidationError):
            pack_matrix(np.array([[4]]), bits=2)
        with pytest.raises(DataValidationError):
            pack_matrix(np.array([[-1]]), bits=2)

    def test_rejects_float_codes(self):
        with pytest.raises(DataValidationError):
            pack_matrix(np.array([[1.5]]), bits=2)

    def test_rejects_bad_bits(self):
        with pytest.raises(InvalidParameterError):
            pack_matrix(np.array([[1]]), bits=0)
        with pytest.raises(InvalidParameterError):
            unpack_matrix(b"\x00", 1, 1, 33)

    def test_rejects_non_matrix(self):
        with pytest.raises(InvalidParameterError):
            pack_matrix(np.zeros(4, dtype=int), bits=2)

    def test_unpack_rejects_short_payload(self):
        with pytest.raises(DataValidationError):
            unpack_matrix(b"\x00", 10, 10, 8)

    def test_unpack_negative_shape(self):
        with pytest.raises(InvalidParameterError):
            unpack_matrix(b"", -1, 2, 4)


class TestSizes:
    def test_packed_size_formula(self):
        assert packed_size_bytes(1, 3, 2) == 1      # 6 bits -> 1 byte
        assert packed_size_bytes(100, 6, 6) == 450  # 3600 bits
        assert packed_size_bytes(0, 5, 8) == 0

    def test_compression_ratio_section32(self):
        """b = 6 on 64-bit floats: overhead under 1/10 of the original."""
        ratio = compression_ratio(10_000, 6, bits=6)
        assert ratio < 0.1
        assert ratio == pytest.approx(6 / 64, rel=0.01)

    def test_compression_ratio_empty(self):
        assert compression_ratio(0, 0, bits=4) == 0.0
