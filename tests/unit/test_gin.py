"""Unit tests for repro.core.gin (the GInTop-k function, Algorithm 1)."""

import numpy as np
import pytest

from repro.core.approx import Quantizer, quantize_dataset
from repro.core.gin import ABORTED, GinContext, gin_topk
from repro.core.grid import GridIndex
from repro.data.synthetic import uniform_products, uniform_weights
from repro.queries.topk import rank_of_point
from repro.stats.counters import OpCounter


def make_context(P, q, partitions=16, value_range=1.0, chunk=64):
    from repro.algorithms.base import duplicate_mask

    grid = GridIndex.equal_width(partitions, value_range)
    pq = Quantizer(grid.alpha_p)
    PA = quantize_dataset(P, pq)
    return GinContext(
        P=P, PA=PA, grid=grid, q=q,
        domin=np.zeros(P.shape[0], dtype=bool),
        skip=duplicate_mask(P, q), chunk=chunk,
    )


@pytest.fixture
def setup():
    products = uniform_products(200, 5, value_range=1.0, seed=21)
    weights = uniform_weights(50, 5, seed=22)
    P, W = products.values, weights.values
    grid = GridIndex.equal_width(16, 1.0)
    WA = quantize_dataset(W, Quantizer(grid.alpha_w))
    return P, W, WA


class TestExactness:
    def test_rank_matches_oracle_without_limit(self, setup):
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        for j in range(W.shape[0]):
            # Fresh Domin per call so each rank is independent.
            ctx.domin[:] = False
            got = gin_topk(ctx, W[j], WA[j], float("inf"), OpCounter())
            want = rank_of_point(np.delete(P, 0, axis=0), W[j], q)
            assert got == want, f"w={j}"

    def test_shared_domin_is_safe(self, setup):
        """Ranks stay exact even when Domin persists across weights."""
        P, W, WA = setup
        q = P[10]
        ctx = make_context(P, q)
        expected = [rank_of_point(np.delete(P, 10, axis=0), W[j], q)
                    for j in range(W.shape[0])]
        for j in range(W.shape[0]):
            got = gin_topk(ctx, W[j], WA[j], float("inf"), OpCounter())
            assert got == expected[j]

    def test_chunk_size_irrelevant_to_result(self, setup):
        P, W, WA = setup
        q = P[3]
        for chunk in (1, 7, 64, 1000):
            ctx = make_context(P, q, chunk=chunk)
            got = gin_topk(ctx, W[0], WA[0], float("inf"), OpCounter())
            want = rank_of_point(np.delete(P, 3, axis=0), W[0], q)
            assert got == want


class TestEarlyTermination:
    def test_aborts_at_limit(self, setup):
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        exact = gin_topk(ctx, W[0], WA[0], float("inf"), OpCounter())
        if exact > 0:
            ctx2 = make_context(P, q)
            counter = OpCounter()
            assert gin_topk(ctx2, W[0], WA[0], exact, counter) == ABORTED
            assert counter.early_terminations == 1

    def test_no_abort_above_rank(self, setup):
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        exact = gin_topk(ctx, W[0], WA[0], float("inf"), OpCounter())
        ctx2 = make_context(P, q)
        assert gin_topk(ctx2, W[0], WA[0], exact + 1, OpCounter()) == exact

    def test_domin_prefill_aborts_instantly(self, setup):
        P, W, WA = setup
        q = np.full(5, 0.99)
        ctx = make_context(P, q)
        ctx.domin[:5] = True  # pretend five dominators are known
        counter = OpCounter()
        assert gin_topk(ctx, W[0], WA[0], 3, counter) == ABORTED
        assert counter.approx_accessed == 0  # no scan happened


class TestDominBuffer:
    def test_discovers_dominators(self, setup):
        P, W, WA = setup
        q = np.full(5, 0.95)  # nearly everything dominates this query
        ctx = make_context(P, q)
        gin_topk(ctx, W[0], WA[0], float("inf"), OpCounter())
        dominators = np.all(P < q, axis=1)
        # Everything in Domin must be a true dominator...
        assert np.all(~ctx.domin | dominators)
        # ...and the grid should have caught plenty of them.
        assert ctx.domin_count > 0

    def test_skip_mask_excludes_rows(self, setup):
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        ctx.skip[:] = True  # exclude every product
        assert gin_topk(ctx, W[0], WA[0], float("inf"), OpCounter()) == 0


class TestCounters:
    def test_savings_from_filtering(self, setup):
        """Filtered pairs must not be refined: refined + filtered == checked."""
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        counter = OpCounter()
        gin_topk(ctx, W[0], WA[0], float("inf"), counter)
        live = P.shape[0] - 1  # the duplicate row is skipped
        assert counter.filtered_total + counter.refined == live
        # Pairwise computations: 1 for f_w(q) + one per refined candidate.
        assert counter.pairwise == 1 + counter.refined

    def test_grid_filters_many_pairs(self, setup):
        """Bounds decide a large share of pairs without refinement.

        Note (reproduction finding, see EXPERIMENTS.md): the paper's
        Section 5.3 model predicts >98% here by assuming each per-dimension
        product is quantized into n^2 *equal* intervals; the real alpha_p x
        alpha_w grid cell for codes (i, j) spans (i+j+1)/n^2, so the
        measured bound-only filtering at n=16, d=5 is ~50-60%.  The
        operational savings (early termination + Domin) are measured
        separately in the benchmarks.
        """
        P, W, WA = setup
        q = P[0]
        ctx = make_context(P, q)
        counter = OpCounter()
        for j in range(10):
            gin_topk(ctx, W[j], WA[j], float("inf"), counter)
        assert counter.filtering_ratio() > 0.4
