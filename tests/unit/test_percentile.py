"""The shared nearest-rank percentile: edge cases and properties.

One implementation (:func:`repro.stats.timing.percentile`) serves the
service metrics, the bench harness, and ``BatchStats`` — these tests pin
its edge-case contract and cross-check it against
:func:`statistics.quantiles` on well-behaved inputs.
"""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.service.metrics import percentile as service_percentile
from repro.stats.timing import percentile
from repro.vectorized import parallel


class TestEdgeCases:
    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert percentile([3.25], q) == 3.25

    def test_q_zero_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_q_one_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    @pytest.mark.parametrize("q", [-0.01, 1.01, 2.0, float("nan"),
                                   float("inf"), -float("inf")])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(InvalidParameterError):
            percentile([1.0, 2.0], q)

    def test_non_finite_samples_dropped(self):
        samples = [float("nan"), 2.0, float("inf"), 1.0, -float("inf")]
        assert percentile(samples, 0.5) == 1.0
        assert percentile(samples, 1.0) == 2.0

    def test_all_non_finite_returns_zero(self):
        assert percentile([float("nan"), float("inf")], 0.5) == 0.0

    def test_nearest_rank_convention(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        # ceil(0.5 * 4) = 2nd order statistic.
        assert percentile(samples, 0.5) == 2.0
        # ceil(0.95 * 4) = 4th.
        assert percentile(samples, 0.95) == 4.0

    def test_one_shared_implementation(self):
        """Every consumer resolves to the same function object."""
        assert service_percentile is percentile
        assert parallel.percentile is percentile


finite_samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


class TestProperties:
    @given(finite_samples, st.floats(min_value=0.0, max_value=1.0))
    def test_result_is_an_observed_sample(self, samples, q):
        assert percentile(samples, q) in samples

    @given(finite_samples,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_q(self, samples, q1, q2):
        lo, hi = sorted((q1, q2))
        assert percentile(samples, lo) <= percentile(samples, hi)

    @given(finite_samples)
    def test_bounds(self, samples):
        assert percentile(samples, 0.0) == min(samples)
        assert percentile(samples, 1.0) == max(samples)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=4, max_size=100),
           st.integers(min_value=1, max_value=99))
    def test_close_to_statistics_quantiles(self, samples, pct):
        """Nearest-rank never strays past an adjacent order statistic
        from the inclusive interpolation ``statistics.quantiles`` uses."""
        ordered = sorted(samples)
        ours = percentile(samples, pct / 100.0)
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        theirs = cuts[pct - 1]
        idx = max(1, math.ceil(pct / 100.0 * len(ordered))) - 1
        assert ordered[idx] == ours
        neighborhood = ordered[max(0, idx - 1):idx + 2]
        span = max(neighborhood) - min(neighborhood)
        assert abs(ours - theirs) <= span + 1e-9 * max(
            1.0, abs(ours), abs(theirs)
        )
