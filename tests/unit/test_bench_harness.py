"""Unit tests for repro.bench.harness (the perf-regression harness)."""

import json

import pytest

from repro.bench.harness import (
    SMOKE_CONFIGS,
    load_configs,
    machine_info,
    run_config,
    run_harness,
)
from repro.errors import DataValidationError, InvalidParameterError

MICRO = {"name": "micro", "p_dist": "UN", "w_dist": "UN",
         "n_products": 50, "n_weights": 40, "dim": 3, "k": 3,
         "queries": 2, "partitions": 8}


class TestConfigs:
    def test_smoke_configs_are_valid(self):
        for cfg in SMOKE_CONFIGS:
            assert cfg["n_weights"] <= 5000  # smoke must stay tiny

    def test_load_configs_roundtrip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps([MICRO]))
        assert load_configs(path) == [MICRO]

    def test_load_configs_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_configs(tmp_path / "nope.json")

    def test_load_configs_missing_keys(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps([{"name": "x"}]))
        with pytest.raises(DataValidationError, match="missing keys"):
            load_configs(path)

    def test_load_configs_not_a_list(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(DataValidationError):
            load_configs(path)


class TestRunConfig:
    def test_micro_config_verifies(self):
        record = run_config(MICRO, seed=11, shards=0, verify=True)
        assert record["verified"]
        assert record["oracle"] == "naive"
        assert record["shards"] == 0
        for kind in ("rtk", "rkr"):
            assert record[kind]["gir_p50_s"] > 0
            assert record[kind]["kernel_p50_s"] > 0
            assert "sharded_p50_s" not in record[kind]
        assert 0.0 <= record["kernel_stats"]["filter_rate"] <= 1.0

    def test_sharded_numbers_recorded(self):
        record = run_config(MICRO, seed=11, shards=2, verify=False)
        assert record["shards"] == 2
        assert record["rtk"]["sharded_p50_s"] > 0
        assert record["rtk"]["sharded_speedup_vs_kernel"] > 0
        # Sharded answers are still compared against the loop's even
        # with the oracle pass disabled.
        assert record["verified"]

    def test_rejects_bad_sizes(self):
        bad = dict(MICRO, queries=0)
        with pytest.raises(InvalidParameterError):
            run_config(bad, shards=0)


class TestRunHarness:
    def test_report_shape_and_file(self, tmp_path):
        out = tmp_path / "BENCH.json"
        messages = []
        report = run_harness([MICRO], seed=5, shards=0, verify=True,
                             out=out, progress=messages.append)
        assert report["ok"]
        assert messages  # progress callback fired
        on_disk = json.loads(out.read_text())
        assert on_disk["seed"] == 5
        assert on_disk["machine"] == machine_info() | {
            "cpu_count": on_disk["machine"]["cpu_count"]}
        assert [c["name"] for c in on_disk["configs"]] == ["micro"]

    def test_bad_out_fails_before_running(self, tmp_path):
        with pytest.raises(DataValidationError):
            run_harness([MICRO], out=tmp_path / "no" / "dir.json")


def _report(name="micro", rtk_p50=1.0, rkr_p50=2.0):
    return {"configs": [{"name": name,
                         "rtk": {"kernel_p50_s": rtk_p50},
                         "rkr": {"kernel_p50_s": rkr_p50}}]}


class TestCheckRegression:
    def test_within_budget_passes(self):
        from repro.bench.harness import check_regression

        verdict = check_regression(_report(rtk_p50=1.2, rkr_p50=2.4),
                                   _report(), max_regress_pct=25.0)
        assert verdict["ok"]
        assert verdict["compared"] == 2
        assert all(c["ok"] for c in verdict["checks"])

    def test_past_budget_fails_and_names_the_metric(self):
        from repro.bench.harness import check_regression

        verdict = check_regression(_report(rtk_p50=1.3), _report(),
                                   max_regress_pct=25.0)
        assert not verdict["ok"]
        failed = [c for c in verdict["checks"] if not c["ok"]]
        assert len(failed) == 1
        assert failed[0]["kind"] == "rtk"
        assert failed[0]["regress_pct"] == pytest.approx(30.0)

    def test_faster_is_never_a_failure(self):
        from repro.bench.harness import check_regression

        verdict = check_regression(_report(rtk_p50=0.1, rkr_p50=0.2),
                                   _report(), max_regress_pct=0.0)
        assert verdict["ok"]

    def test_no_overlap_fails_loudly(self):
        # Smoke configs gated against the full-size baseline compare
        # nothing; a vacuous pass would gate nothing forever.
        from repro.bench.harness import check_regression

        verdict = check_regression(_report(name="smoke"),
                                   _report(name="full"))
        assert not verdict["ok"]
        assert verdict["compared"] == 0

    def test_negative_budget_rejected(self):
        from repro.bench.harness import check_regression

        with pytest.raises(InvalidParameterError):
            check_regression(_report(), _report(), max_regress_pct=-1)

    def test_gate_against_committed_baseline_shape(self):
        # The committed BENCH_kernel.json must stay gateable: identical
        # report vs itself is a clean pass with all metrics compared.
        from pathlib import Path

        from repro.bench.harness import check_regression

        baseline = json.loads(
            Path(__file__).resolve().parents[2].joinpath(
                "BENCH_kernel.json").read_text())
        verdict = check_regression(baseline, baseline)
        assert verdict["ok"]
        assert verdict["compared"] == 2 * len(baseline["configs"])


class TestPerKindKernelStats:
    def test_queries_not_double_counted(self):
        # Regression: the merged stats object used to report the RTK and
        # RKR sweeps' query totals *summed* ("queries": 4 for a 2-query
        # config); the per-kind split must report each sweep's own count.
        record = run_config(MICRO, seed=11, shards=0, verify=False)
        stats = record["kernel_stats"]
        assert stats["rtk"]["queries"] == MICRO["queries"]
        assert stats["rkr"]["queries"] == MICRO["queries"]
        assert 0.0 <= stats["filter_rate"] <= 1.0


FUSED_MICRO = {"name": "fused-micro", "p_dist": "UN", "w_dist": "UN",
               "n_products": 60, "n_weights": 50, "dim": 3, "k": 3,
               "queries": 4, "partitions": 8}


class TestFusedHarness:
    def test_fused_micro_config_verifies(self):
        from repro.bench.harness import run_fused_config

        record = run_fused_config(FUSED_MICRO, seed=11, verify=True)
        assert record["verified"]
        assert record["batch_q"] == 4
        for kind in ("fused_rtk", "fused_rkr"):
            numbers = record[kind]
            assert numbers["sequential_wall_s"] > 0
            assert numbers["fused_wall_s"] > 0
            assert numbers["wall_speedup"] > 0
            stats = numbers["fused_stats"]
            assert stats["fused"]["batches"] >= 1
            assert stats["fused"]["queries"] == 4
        cold = record["cold_start"]
        assert cold["rebuild_s"] > 0
        assert cold["mmap_load_s"] > 0
        assert cold["store_bytes"] > 0

    def test_fused_report_shape_and_file(self, tmp_path):
        from repro.bench.harness import run_fused_harness

        out = tmp_path / "BENCH_fused.json"
        report = run_fused_harness([FUSED_MICRO], seed=5, verify=False,
                                   out=out)
        assert report["ok"]
        on_disk = json.loads(out.read_text())
        assert on_disk["benchmark"] == "girkernel-fused"
        assert [c["name"] for c in on_disk["configs"]] == ["fused-micro"]

    def test_fused_gate_uses_fused_metrics(self):
        from repro.bench.harness import (
            FUSED_GATED_METRICS,
            check_regression,
        )

        def fused_report(wall=1.0, cold=0.5):
            return {"configs": [{
                "name": "fused-micro",
                "fused_rtk": {"fused_wall_s": wall},
                "fused_rkr": {"fused_wall_s": wall},
                "cold_start": {"mmap_load_s": cold},
            }]}

        ok = check_regression(fused_report(), fused_report(),
                              metrics=FUSED_GATED_METRICS)
        assert ok["ok"] and ok["compared"] == 3
        slow = check_regression(fused_report(cold=0.9), fused_report(),
                                metrics=FUSED_GATED_METRICS)
        assert not slow["ok"]
        failed = [c for c in slow["checks"] if not c["ok"]]
        assert failed[0]["kind"] == "cold_start"

    def test_committed_fused_baseline_is_gateable(self):
        from pathlib import Path

        from repro.bench.harness import (
            FUSED_GATED_METRICS,
            check_regression,
        )

        path = Path(__file__).resolve().parents[2] / "BENCH_fused.json"
        baseline = json.loads(path.read_text())
        verdict = check_regression(baseline, baseline,
                                   metrics=FUSED_GATED_METRICS)
        assert verdict["ok"]
        assert verdict["compared"] == 3 * len(baseline["configs"])
        # The committed numbers must keep the acceptance story honest:
        # every config shows a fused filter-stage win and a cold-start
        # mmap win, and every answer was verified against the oracle.
        assert baseline["ok"]
        for cfg in baseline["configs"]:
            assert cfg["verified"]
            assert cfg["fused_rtk"]["filter_speedup"] > 1.0
            assert cfg["fused_rkr"]["filter_speedup"] > 1.0
            assert cfg["cold_start"]["speedup"] > 1.0
