"""Filter-effectiveness profiling: report invariants, replay fidelity, CLI.

The profile report's whole point is bookkeeping honesty: the four pair
classes must partition ``pairs_total`` exactly, the fractions must sum to
1.0, and every count must be taken verbatim from the kernel's own
:class:`KernelStats` — no re-derivation, no estimation.  These tests pin
that, plus the sampling determinism and the ``repro-rrq profile``
frontend.
"""

import json

import pytest

from repro.cli import main
from repro.errors import InvalidParameterError
from repro.obs.profile import (
    build_report,
    format_report,
    profile_workload,
    sample_queries,
)
from repro.vectorized.girkernel import GirKernelRRQ, KernelStats


@pytest.fixture(scope="module")
def kernel(small_products_m, small_weights_m):
    return GirKernelRRQ(small_products_m, small_weights_m, partitions=8)


@pytest.fixture(scope="module")
def small_products_m():
    from repro.data.synthetic import uniform_products
    return uniform_products(120, 4, seed=11)


@pytest.fixture(scope="module")
def small_weights_m():
    from repro.data.synthetic import uniform_weights
    return uniform_weights(100, 4, seed=12)


class TestBuildReport:
    def _stats(self):
        stats = KernelStats()
        stats.queries = 3
        stats.pairs_total = 1000
        stats.pairs_case1 = 600
        stats.pairs_case2 = 250
        stats.pairs_refined = 100
        stats.pairs_domin_skipped = 40
        stats.weights_pruned = 7
        stats.filter_s = 0.01
        stats.refine_s = 0.02
        stats.merge_s = 0.005
        return stats

    def test_classes_partition_pairs_total(self):
        report = build_report(self._stats(), [0.8, 0.9], replayed=3,
                              elapsed_s=0.1, k=10, kinds=["rtk"])
        pairs = report["pairs"]
        assert pairs == {"case1": 600, "case2": 250,
                         "undecided": 50, "refined": 100}
        assert sum(pairs.values()) == report["pairs_total"] == 1000
        # Domin-skipped pairs never entered classification: kept apart.
        assert report["pairs_domin_skipped"] == 40

    def test_fractions_sum_to_one(self):
        report = build_report(self._stats(), [], replayed=3,
                              elapsed_s=0.1, k=10, kinds=["rtk"])
        assert sum(report["fractions"].values()) == pytest.approx(1.0)
        assert report["fractions"]["case1"] == pytest.approx(0.6)
        assert report["fractions"]["undecided"] == pytest.approx(0.05)

    def test_empty_stats_report_all_zero(self):
        report = build_report(KernelStats(), [], replayed=0,
                              elapsed_s=0.0, k=10, kinds=["rtk"])
        assert report["pairs_total"] == 0
        assert all(v == 0.0 for v in report["fractions"].values())
        assert report["per_query_filter_rate"] == {
            "min": 0.0, "median": 0.0, "max": 0.0,
        }

    def test_format_report_renders_every_class(self):
        report = build_report(self._stats(), [0.7, 0.8, 0.95],
                              replayed=3, elapsed_s=0.1, k=10,
                              kinds=["rtk", "rkr"])
        text = format_report(report)
        for word in ("case1", "case2", "undecided", "refined", "total",
                     "filter rate", "stage seconds"):
            assert word in text


class TestSampleQueries:
    def test_deterministic_under_seed(self, small_products):
        a = sample_queries(small_products, 10, seed=42)
        b = sample_queries(small_products, 10, seed=42)
        assert len(a) == 10
        for qa, qb in zip(a, b):
            assert (qa == qb).all()

    def test_different_seed_differs(self, small_products):
        a = sample_queries(small_products, 20, seed=1)
        b = sample_queries(small_products, 20, seed=2)
        assert any((qa != qb).any() for qa, qb in zip(a, b))

    def test_oversampling_allowed(self, small_products):
        queries = sample_queries(small_products,
                                 small_products.size + 5)
        assert len(queries) == small_products.size + 5

    def test_bad_count_rejected(self, small_products):
        with pytest.raises(InvalidParameterError):
            sample_queries(small_products, 0)


class TestProfileWorkload:
    def test_totals_match_kernel_stats_verbatim(self, kernel,
                                                small_products_m):
        """The report is the sum of per-query KernelStats, nothing else."""
        queries = sample_queries(small_products_m, 6, seed=3)
        report = profile_workload(kernel, queries, k=5, kinds=("rtk",))
        expected = KernelStats()
        for q in queries:
            kernel.reverse_topk(q, 5)
            expected.merge(kernel.last_stats)
        assert report["queries"] == 6
        assert report["pairs_total"] == expected.pairs_total
        assert report["pairs"]["case1"] == expected.pairs_case1
        assert report["pairs"]["case2"] == expected.pairs_case2
        assert report["pairs"]["refined"] == expected.pairs_refined
        assert report["pairs_domin_skipped"] == \
            expected.pairs_domin_skipped
        assert report["weights_pruned"] == expected.weights_pruned
        assert report["filter_rate"] == \
            pytest.approx(expected.filter_rate())

    def test_partition_and_fraction_invariants_live(self, kernel,
                                                    small_products_m):
        queries = sample_queries(small_products_m, 8, seed=5)
        report = profile_workload(kernel, queries, k=5,
                                  kinds=("rtk", "rkr"))
        assert report["queries"] == 16  # 8 queries x 2 kinds
        assert sum(report["pairs"].values()) == report["pairs_total"]
        assert sum(report["fractions"].values()) == pytest.approx(1.0)
        rates = report["per_query_filter_rate"]
        assert 0.0 <= rates["min"] <= rates["median"] <= rates["max"] <= 1.0

    def test_bad_kind_rejected(self, kernel):
        with pytest.raises(InvalidParameterError):
            profile_workload(kernel, [], kinds=("topk",))

    def test_bad_k_rejected(self, kernel):
        with pytest.raises(InvalidParameterError):
            profile_workload(kernel, [], k=0)


class TestProfileCli:
    @pytest.fixture(scope="class")
    def data_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("profile-data")
        assert main(["generate", "--dist", "UN", "--size", "150",
                     "--dim", "4", "--out", str(out)]) == 0
        return out

    def test_profile_prints_breakdown(self, data_dir, capsys):
        code = main(["profile", str(data_dir), "--queries", "5",
                     "-k", "5", "--partitions", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "profiled 5 queries" in out
        assert "case1" in out and "undecided" in out

    def test_profile_json_output(self, data_dir, capsys):
        code = main(["profile", str(data_dir), "--queries", "5",
                     "-k", "5", "--partitions", "8", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        report = json.loads(out)
        assert report["queries"] == 5
        assert sum(report["pairs"].values()) == report["pairs_total"]
        assert sum(report["fractions"].values()) == pytest.approx(1.0)

    def test_profile_bad_path_exits_two(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
