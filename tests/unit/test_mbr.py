"""Unit tests for repro.index.mbr."""

import math

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.index.mbr import MBR


class TestConstruction:
    def test_basic(self):
        box = MBR([0.0, 1.0], [2.0, 3.0])
        assert box.dim == 2
        assert np.array_equal(box.extents, [2.0, 2.0])

    def test_rejects_lo_above_hi(self):
        with pytest.raises(InvalidParameterError):
            MBR([1.0], [0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            MBR([1.0, 2.0], [3.0])

    def test_of_points(self):
        box = MBR.of_points(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert np.array_equal(box.lo, [1.0, 2.0])
        assert np.array_equal(box.hi, [3.0, 5.0])

    def test_of_points_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            MBR.of_points(np.empty((0, 2)))

    def test_of_point_degenerate(self):
        box = MBR.of_point(np.array([1.0, 2.0]))
        assert box.area() == 0.0
        assert box.contains_point([1.0, 2.0])


class TestGeometry:
    def test_area_margin_diagonal(self):
        box = MBR([0.0, 0.0], [3.0, 4.0])
        assert box.area() == 12.0
        assert box.margin() == 7.0
        assert box.diagonal() == 5.0

    def test_shape_ratio(self):
        assert MBR([0, 0], [4.0, 1.0]).shape_ratio() == 4.0
        assert MBR([0, 0], [2.0, 2.0]).shape_ratio() == 1.0
        assert MBR([0, 0], [2.0, 0.0]).shape_ratio() == math.inf
        assert MBR.of_point(np.zeros(2)).shape_ratio() == 1.0

    def test_log_area(self):
        box = MBR([0, 0], [10.0, 100.0])
        assert box.log_area() == pytest.approx(3.0)
        assert MBR.of_point(np.zeros(2)).log_area() == -math.inf

    def test_center(self):
        assert np.array_equal(MBR([0, 2], [4, 4]).center(), [2.0, 3.0])


class TestRelations:
    def test_contains_point_boundaries(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.0, 1.0])
        assert box.contains_point([0.5, 0.5])
        assert not box.contains_point([1.1, 0.5])

    def test_contains_box(self):
        outer = MBR([0, 0], [10, 10])
        inner = MBR([1, 1], [2, 2])
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_intersects(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        c = MBR([5, 5], [6, 6])
        edge = MBR([2, 0], [3, 2])
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)
        assert a.intersects(edge)  # closed boxes touch at the boundary

    def test_intersection_area(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        assert a.intersection_area(b) == 1.0
        assert a.intersection_area(MBR([5, 5], [6, 6])) == 0.0

    def test_union_and_extended(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([2, 2], [3, 3])
        u = a.union(b)
        assert np.array_equal(u.lo, [0, 0])
        assert np.array_equal(u.hi, [3, 3])
        e = a.extended([5.0, -1.0])
        assert np.array_equal(e.lo, [0, -1])
        assert np.array_equal(e.hi, [5, 1])

    def test_enlargement(self):
        a = MBR([0, 0], [1, 1])
        assert a.enlargement(MBR([0, 0], [2, 1])) == pytest.approx(1.0)
        assert a.enlargement(a) == 0.0

    def test_equality(self):
        assert MBR([0, 0], [1, 1]) == MBR([0, 0], [1, 1])
        assert MBR([0, 0], [1, 1]) != MBR([0, 0], [1, 2])


class TestScoreIntervals:
    def test_score_interval_brackets_members(self):
        rng = np.random.default_rng(3)
        pts = rng.random((50, 4))
        box = MBR.of_points(pts)
        w_lo = np.array([0.1, 0.1, 0.1, 0.1])
        w_hi = np.array([0.4, 0.3, 0.2, 0.5])
        lo, hi = box.score_interval(w_lo, w_hi)
        for w in (w_lo, w_hi, (w_lo + w_hi) / 2):
            scores = pts @ w
            assert lo <= scores.min() + 1e-12
            assert hi >= scores.max() - 1e-12

    def test_score_interval_fixed_w(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        box = MBR.of_points(pts)
        w = np.array([0.7, 0.3])
        lo, hi = box.score_interval_fixed_w(w)
        scores = pts @ w
        assert lo <= scores.min() and hi >= scores.max()
