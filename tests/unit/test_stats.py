"""Unit tests for repro.stats (counters, timing, report)."""

import time

import pytest

from repro.stats.counters import NULL_COUNTER, OpCounter
from repro.stats.report import format_value, print_table, render_table, speedup
from repro.stats.timing import LapClock, Timer, best_of, time_once


class TestOpCounter:
    def test_defaults_zero(self):
        c = OpCounter()
        assert c.pairwise == 0
        assert c.filtered_total == 0
        assert c.filtering_ratio() == 0.0

    def test_merge(self):
        a = OpCounter(pairwise=3, refined=2)
        b = OpCounter(pairwise=4, filtered_case1=5)
        a.merge(b)
        assert a.pairwise == 7
        assert a.filtered_case1 == 5
        assert a.refined == 2

    def test_reset(self):
        c = OpCounter(pairwise=10, additions=5)
        c.reset()
        assert c.pairwise == 0
        assert c.additions == 0

    def test_snapshot_keys(self):
        snap = OpCounter(grid_lookups=2).snapshot()
        assert snap["grid_lookups"] == 2
        assert "pairwise" in snap

    def test_filtering_ratio(self):
        c = OpCounter(filtered_case1=60, filtered_case2=30, refined=10)
        assert c.filtering_ratio() == pytest.approx(0.9)

    def test_null_counter_is_a_counter(self):
        NULL_COUNTER.pairwise += 1  # harmless shared sink
        assert isinstance(NULL_COUNTER, OpCounter)


class TestTimer:
    def test_measure_context(self):
        t = Timer()
        with t.measure():
            time.sleep(0.001)
        assert t.count == 1
        assert t.total > 0
        assert t.mean > 0
        assert t.median > 0

    def test_time_callable_repeats(self):
        t = Timer()
        t.time_callable(lambda: None, repeat=5)
        assert t.count == 5

    def test_reset(self):
        t = Timer()
        t.time_callable(lambda: None)
        t.reset()
        assert t.count == 0
        assert t.mean == 0.0

    def test_time_once_positive(self):
        assert time_once(lambda: sum(range(100))) >= 0

    def test_best_of(self):
        assert best_of(lambda: None, repeat=3) >= 0
        with pytest.raises(ValueError):
            best_of(lambda: None, repeat=0)

    def test_lap_clock_accumulates(self):
        clock = LapClock()
        for _ in range(3):
            with clock.lap("work"):
                pass
        assert clock.get("work") >= 0
        assert clock.get("missing") == 0.0


class TestReport:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value("x") == "x"
        assert format_value(3) == "3"
        assert format_value(3.14159, precision=2) == "3.14"
        assert format_value(1e7, precision=3) == "1e+07"
        assert format_value(True) == "True"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_print_table(self, capsys):
        print_table(["col"], [[1]])
        captured = capsys.readouterr().out
        assert "col" in captured

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) is None
