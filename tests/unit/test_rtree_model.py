"""Unit tests for repro.analysis.rtree_model (Section 5.1-5.2 analysis)."""

import math

import pytest

from repro.analysis.rtree_model import (
    filtering_collapse_table,
    histogram_bucket_count,
    histogram_expected_occupancy,
    max_filtered_fraction,
    tetra_volume,
)
from repro.errors import InvalidParameterError


class TestHistogramModel:
    def test_paper_example_counts(self):
        """Section 5.1: 5^3 = 125 buckets at d=3; ~9M at d=10."""
        assert histogram_bucket_count(5, 3) == 125
        assert histogram_bucket_count(5, 10) == 9_765_625

    def test_occupancy_collapse(self):
        """100K weights over 5^10 buckets: far less than one per bucket."""
        occ = histogram_expected_occupancy(100_000, 5, 10)
        assert occ < 0.02

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            histogram_bucket_count(0, 3)
        with pytest.raises(InvalidParameterError):
            histogram_expected_occupancy(0, 5, 3)


class TestVolumeModel:
    def test_tetra_volume_formula(self):
        assert tetra_volume(1) == 1.0
        assert tetra_volume(2) == pytest.approx(0.5)
        assert tetra_volume(5) == pytest.approx(1 / 120)

    def test_gamma_shrinks_volume(self):
        assert tetra_volume(3, gamma=0.5) < tetra_volume(3, gamma=0.0)

    def test_paper_example_d10(self):
        """Section 5.2: d = 10 (g = 5) filters at most 1/5! ~ 0.8%."""
        frac = max_filtered_fraction(10)
        assert frac == pytest.approx(1 / math.factorial(5))
        assert frac < 0.009

    def test_fraction_collapses_with_d(self):
        rows = filtering_collapse_table([2, 6, 10, 20])
        fracs = [frac for _, _, frac in rows]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] < 1e-6

    def test_explicit_g(self):
        assert max_filtered_fraction(10, g=2) == pytest.approx(0.5)
        with pytest.raises(InvalidParameterError):
            max_filtered_fraction(3, g=5)

    def test_rejects_bad_gamma(self):
        with pytest.raises(InvalidParameterError):
            tetra_volume(3, gamma=1.0)
