"""Unit tests for repro.data.io (binary persistence)."""

import numpy as np
import pytest

from repro.core.bitstring import packed_size_bytes
from repro.data.datasets import ProductSet, WeightSet
from repro.data.io import (
    file_size,
    load_approx,
    load_matrix,
    load_products,
    load_weights,
    save_approx,
    save_matrix,
    save_products,
    save_weights,
)
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DataValidationError


class TestRawMatrix:
    def test_roundtrip(self, tmp_path):
        arr = np.random.default_rng(1).random((17, 5))
        path = tmp_path / "m.rrq"
        written = save_matrix(path, arr)
        assert written == file_size(path)
        back = load_matrix(path)
        assert np.array_equal(arr, back)

    def test_rejects_1d(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_matrix(tmp_path / "x.rrq", np.zeros(5))

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.rrq"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(DataValidationError):
            load_matrix(path)

    def test_rejects_truncated(self, tmp_path):
        arr = np.ones((4, 4))
        path = tmp_path / "t.rrq"
        save_matrix(path, arr)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(DataValidationError):
            load_matrix(path)


class TestDatasets:
    def test_products_roundtrip_preserves_range(self, tmp_path):
        ps = uniform_products(30, 4, value_range=5000.0, seed=2)
        path = tmp_path / "p.rrq"
        save_products(path, ps)
        back = load_products(path)
        assert isinstance(back, ProductSet)
        assert back.value_range == 5000.0
        assert np.array_equal(back.values, ps.values)

    def test_weights_roundtrip(self, tmp_path):
        ws = uniform_weights(25, 3, seed=3)
        path = tmp_path / "w.rrq"
        save_weights(path, ws)
        back = load_weights(path)
        assert isinstance(back, WeightSet)
        assert np.array_equal(back.values, ws.values)


class TestApproxFiles:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 64, size=(40, 6))
        path = tmp_path / "a.rrqa"
        save_approx(path, codes, bits=6)
        back, bits = load_approx(path)
        assert bits == 6
        assert np.array_equal(back, codes)

    def test_compression_beats_raw(self, tmp_path):
        """Section 3.2: 6-bit codes are under 1/10 of 64-bit floats."""
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 64, size=(500, 6))
        raw = tmp_path / "raw.rrq"
        approx = tmp_path / "ap.rrqa"
        save_matrix(raw, codes.astype(np.float64))
        save_approx(approx, codes, bits=6)
        assert file_size(approx) < file_size(raw) / 9

    def test_payload_size_matches_formula(self, tmp_path):
        codes = np.zeros((12, 7), dtype=np.int64)
        path = tmp_path / "z.rrqa"
        save_approx(path, codes, bits=5)
        header = 4 + 2 + 2 + 4 + 4
        assert file_size(path) == header + packed_size_bytes(12, 7, 5)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rrqa"
        path.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(DataValidationError):
            load_approx(path)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_approx(tmp_path / "x.rrqa", np.zeros(3, dtype=int), bits=4)
