"""Unit tests for repro.data.io (binary persistence)."""

import numpy as np
import pytest

from repro.core.bitstring import packed_size_bytes
from repro.data.datasets import ProductSet, WeightSet
from repro.data.io import (
    file_size,
    load_approx,
    load_matrix,
    load_products,
    load_weights,
    save_approx,
    save_matrix,
    save_products,
    save_weights,
)
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DataValidationError


class TestRawMatrix:
    def test_roundtrip(self, tmp_path):
        arr = np.random.default_rng(1).random((17, 5))
        path = tmp_path / "m.rrq"
        written = save_matrix(path, arr)
        assert written == file_size(path)
        back = load_matrix(path)
        assert np.array_equal(arr, back)

    def test_rejects_1d(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_matrix(tmp_path / "x.rrq", np.zeros(5))

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.rrq"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(DataValidationError):
            load_matrix(path)

    def test_rejects_truncated(self, tmp_path):
        arr = np.ones((4, 4))
        path = tmp_path / "t.rrq"
        save_matrix(path, arr)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(DataValidationError):
            load_matrix(path)


class TestDatasets:
    def test_products_roundtrip_preserves_range(self, tmp_path):
        ps = uniform_products(30, 4, value_range=5000.0, seed=2)
        path = tmp_path / "p.rrq"
        save_products(path, ps)
        back = load_products(path)
        assert isinstance(back, ProductSet)
        assert back.value_range == 5000.0
        assert np.array_equal(back.values, ps.values)

    def test_weights_roundtrip(self, tmp_path):
        ws = uniform_weights(25, 3, seed=3)
        path = tmp_path / "w.rrq"
        save_weights(path, ws)
        back = load_weights(path)
        assert isinstance(back, WeightSet)
        assert np.array_equal(back.values, ws.values)


class TestApproxFiles:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 64, size=(40, 6))
        path = tmp_path / "a.rrqa"
        save_approx(path, codes, bits=6)
        back, bits = load_approx(path)
        assert bits == 6
        assert np.array_equal(back, codes)

    def test_compression_beats_raw(self, tmp_path):
        """Section 3.2: 6-bit codes are under 1/10 of 64-bit floats."""
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 64, size=(500, 6))
        raw = tmp_path / "raw.rrq"
        approx = tmp_path / "ap.rrqa"
        save_matrix(raw, codes.astype(np.float64))
        save_approx(approx, codes, bits=6)
        assert file_size(approx) < file_size(raw) / 9

    def test_payload_size_matches_formula(self, tmp_path):
        codes = np.zeros((12, 7), dtype=np.int64)
        path = tmp_path / "z.rrqa"
        save_approx(path, codes, bits=5)
        header = 4 + 2 + 2 + 4 + 4
        assert file_size(path) == header + packed_size_bytes(12, 7, 5)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rrqa"
        path.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(DataValidationError):
            load_approx(path)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_approx(tmp_path / "x.rrqa", np.zeros(3, dtype=int), bits=4)


class TestAtomicWrites:
    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        from repro.data.io import atomic_write_bytes

        path = tmp_path / "m.rrq"
        n = atomic_write_bytes(path, b"hello")
        assert n == 5
        assert path.read_bytes() == b"hello"
        assert list(tmp_path.iterdir()) == [path]

    def test_atomic_write_replaces_existing(self, tmp_path):
        from repro.data.io import atomic_write_bytes

        path = tmp_path / "m.rrq"
        atomic_write_bytes(path, b"old contents")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_save_refuses_nan(self, tmp_path):
        from repro.data.io import save_matrix

        arr = np.ones((4, 3))
        arr[2, 1] = np.nan
        with pytest.raises(DataValidationError, match="offending row 2"):
            save_matrix(tmp_path / "m.rrq", arr)
        assert not (tmp_path / "m.rrq").exists()

    def test_save_refuses_inf(self, tmp_path):
        from repro.data.io import save_matrix

        arr = np.ones((4, 3))
        arr[0, 0] = np.inf
        with pytest.raises(DataValidationError, match="offending row 0"):
            save_matrix(tmp_path / "m.rrq", arr)

    def test_truncated_payload_reports_byte_counts(self, tmp_path):
        arr = np.random.default_rng(8).random((10, 4))
        path = tmp_path / "m.rrq"
        save_matrix(path, arr)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(DataValidationError, match="truncated payload"):
            load_matrix(path)

    def test_corrupt_approx_payload_wrapped(self, tmp_path):
        codes = np.random.default_rng(9).integers(0, 16, size=(20, 5))
        path = tmp_path / "a.rrqa"
        save_approx(path, codes, bits=4)
        data = bytearray(path.read_bytes())
        del data[-3:]  # chop the bit-packed payload
        path.write_bytes(bytes(data))
        with pytest.raises(DataValidationError, match="corrupt bit-packed"):
            load_approx(path)

    def test_injected_corruption_is_applied_on_write(self, tmp_path):
        from repro.data.io import atomic_write_bytes
        from repro.resilience.faults import FaultPlan, inject

        path = tmp_path / "blob"
        plan = FaultPlan().add("io.write.blob", "corrupt",
                               corrupt_bytes=1, corrupt_offset=0)
        with inject(plan) as injector:
            atomic_write_bytes(path, b"\x00\x00\x00")
        assert injector.fired("io.write.blob") == 1
        assert path.read_bytes() == b"\xff\x00\x00"

    def test_injected_partial_write_tears_file_and_crashes(self, tmp_path):
        from repro.data.io import atomic_write_bytes
        from repro.resilience.faults import (
            FaultPlan,
            InjectedCrashError,
            inject,
        )

        path = tmp_path / "blob"
        plan = FaultPlan().add("io.write.blob", "partial_write",
                               keep_fraction=0.5)
        with inject(plan):
            with pytest.raises(InjectedCrashError):
                atomic_write_bytes(path, b"0123456789")
        assert path.read_bytes() == b"01234"
