"""ServiceMetrics: clock discipline, snapshot atomicity, Prometheus text.

Three bug classes this file pins down:

* **wall-clock leakage** — durations must come from monotonic clocks, so
  a backwards NTP step can never produce negative uptime or a latency
  sample; a source scan enforces that every remaining ``time.time()``
  call in the library is a marked human-readable timestamp;
* **torn snapshots** — ``snapshot()`` must be internally consistent and
  own its dicts even while eight threads hammer the recorders;
* **exposition fidelity** — the Prometheus rendering must lint clean and
  agree with the JSON body it is derived from.
"""

import re
import threading
import time
from pathlib import Path

import pytest

from repro.obs.prom import lint_exposition
from repro.service.metrics import ServiceMetrics

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

KERNEL_STATS = {
    "queries": 1,
    "stage_s": {"filter": 0.001, "refine": 0.002, "merge": 0.0005},
    "pairs": {"total": 100, "case1": 60, "case2": 30, "refined": 10,
              "domin_skipped": 5},
    "weights_pruned": 2,
    "filter_rate": 0.9,
}


class TestClockDiscipline:
    def test_uptime_never_negative_when_wall_clock_steps_back(self, monkeypatch):
        """Regression: a backwards wall-clock step must not skew uptime.

        ``time.time`` jumping into the past (NTP correction, manual
        clock change) used to be a risk for any duration computed from
        wall-clock deltas; uptime and qps must come from the monotonic
        clock and stay non-negative.
        """
        metrics = ServiceMetrics()
        metrics.record_request("rtk", 0.001)
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 3600.0)
        assert metrics.uptime_s() >= 0.0
        snap = metrics.snapshot()
        assert snap["uptime_s"] >= 0.0
        assert snap["qps"] >= 0.0
        # started_at stays the honest wall-clock birth timestamp.
        assert snap["started_at"] == pytest.approx(metrics._started)

    def test_no_unmarked_wall_clock_in_library(self):
        """Every ``time.time()`` in src/ is a marked display timestamp.

        Durations must use ``time.monotonic`` / ``time.perf_counter``;
        the only legitimate wall-clock reads are human-readable
        timestamps, and each must carry a ``wall-clock`` marker comment
        so this scan (and reviewers) can tell them apart at a glance.
        """
        pattern = re.compile(r"\btime\.time\(\)")
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if pattern.search(line) and "wall-clock" not in line:
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert offenders == [], (
            "unmarked time.time() calls (use a monotonic clock for "
            "durations, or add a '# wall-clock' marker for display "
            "timestamps):\n" + "\n".join(offenders)
        )


class TestSnapshotIsolation:
    def test_snapshot_owns_its_dicts(self):
        """Mutating after snapshot must not change the snapshot."""
        metrics = ServiceMetrics()
        metrics.record_request("rtk", 0.01)
        metrics.record_kernel(dict(KERNEL_STATS))
        metrics.record_mutation("insert_product")
        snap = metrics.snapshot()
        metrics.record_request("rkr", 0.02)
        metrics.record_kernel(dict(KERNEL_STATS))
        metrics.record_mutation("insert_product")
        assert snap["requests"]["total"] == 1
        assert snap["requests"]["by_kind"] == {"rtk": 1}
        assert snap["kernel"]["pairs"]["total"] == 100
        assert snap["kernel"]["stage_s"]["filter"] == \
            pytest.approx(0.001)
        assert snap["mutations"]["by_op"] == {"insert_product": 1}

    def test_concurrent_recording_never_tears_a_snapshot(self):
        """8 writer threads vs a snapshot reader: invariants must hold.

        Each recorded kernel stat adds exactly 100 pairs split 60/30/10,
        each request is 1 of a known kind, each batch adds its size to
        batched_requests — so any snapshot taken mid-flight must show
        internally consistent sums.  A torn read (half-folded kernel
        dict, aliased inner map) breaks one of the asserted identities.
        """
        metrics = ServiceMetrics()
        stop = threading.Event()
        errors = []

        def writer(i):
            kind = "rtk" if i % 2 == 0 else "rkr"
            while not stop.is_set():
                metrics.record_request(kind, 0.001, cache_hit=(i % 3 == 0))
                metrics.record_kernel(dict(KERNEL_STATS),
                                      trace_id=f"w{i}")
                metrics.record_batch(4)
                metrics.record_mutation("insert_product")

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        try:
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                snap = metrics.snapshot()
                try:
                    pairs = snap["kernel"]["pairs"]
                    assert pairs["total"] % 100 == 0
                    assert pairs["case1"] * 10 == pairs["total"] * 6
                    assert pairs["case2"] * 10 == pairs["total"] * 3
                    assert (pairs["case1"] + pairs["case2"]
                            + pairs["refined"]) == pairs["total"]
                    assert pairs["total"] == \
                        snap["kernel"]["queries"] * 100
                    by_kind = snap["requests"]["by_kind"]
                    assert sum(by_kind.values()) == \
                        snap["requests"]["total"]
                    batches = snap["batches"]
                    assert batches["batched_requests"] == \
                        batches["total"] * 4
                    assert snap["mutations"]["by_op"].get(
                        "insert_product", 0
                    ) == snap["mutations"]["total"]
                except AssertionError as exc:
                    errors.append(str(exc))
                    break
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        assert errors == []

    def test_concurrent_prometheus_render_lints_clean(self):
        """Rendering while writers run must still produce a valid body."""
        metrics = ServiceMetrics()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_request("rtk", 0.002, trace_id="hot")
                metrics.record_kernel(dict(KERNEL_STATS), trace_id="hot")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(20):
                assert lint_exposition(metrics.prometheus()) == []
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)


class TestPrometheusRendering:
    def test_lints_clean_and_matches_json(self):
        metrics = ServiceMetrics()
        metrics.record_request("rtk", 0.003, trace_id="abc123")
        metrics.record_request("rkr", 0.004)
        metrics.record_rejection(overload=True)
        metrics.record_kernel(dict(KERNEL_STATS), trace_id="abc123")
        metrics.record_batch(3)
        metrics.record_mutation("compact")
        text = metrics.prometheus(
            cache_stats={"capacity": 10, "entries": 2, "hits": 1,
                         "misses": 3, "invalidations": 0},
            durability={"wal": {"appends": 7, "fsyncs": 7},
                        "last_lsn": 7, "snapshot_lsn": 3},
            replication={"lag": 0, "applied_records": 7,
                         "poll_errors": 0},
            slowlog={"recorded_total": 1, "threshold_s": 0.25},
            traces={"finished_total": 2},
        )
        assert lint_exposition(text) == []
        assert 'rrq_requests_total{kind="rtk"} 1' in text
        assert 'rrq_requests_total{kind="rkr"} 1' in text
        assert 'rrq_requests_rejected_total{reason="overload"} 1' in text
        assert 'rrq_kernel_pairs_total{class="case1"} 60' in text
        assert 'rrq_mutations_total{op="compact"} 1' in text
        assert "rrq_wal_appends_total 7" in text
        assert "rrq_replication_lag 0" in text
        assert "rrq_slow_queries_total 1" in text
        assert "rrq_traces_finished_total 2" in text
        # The latency observation carries its trace id as an exemplar.
        assert 'trace_id="abc123"' in text

    def test_empty_metrics_still_lint_clean(self):
        assert lint_exposition(ServiceMetrics().prometheus()) == []

    def test_latency_histogram_counts_requests(self):
        metrics = ServiceMetrics()
        for latency in (0.0001, 0.003, 0.2, 9.0):
            metrics.record_request("rtk", latency)
        text = metrics.prometheus()
        assert "rrq_request_latency_seconds_count 4" in text
        assert 'rrq_request_latency_seconds_bucket{le="+Inf"} 4' in text
