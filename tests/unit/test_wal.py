"""Unit tests for the WAL framing layer (repro.durability.wal).

The edge cases pinned here are the ones recovery correctness hangs on:
zero-length logs, a single torn record, frames spanning read-buffer
boundaries, CRC mismatches mid-log vs at the tail, and replay-twice
idempotency.
"""

import struct
import zlib

import pytest

from repro.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalWriter,
    encode_record,
    read_wal,
    wal_path,
)
from repro.errors import InvalidParameterError, WalCorruptionError

_HEADER = struct.Struct("<II")


def _write_records(path, count, start_lsn=1):
    with WalWriter(path, fsync="never", next_lsn=start_lsn) as writer:
        return [writer.append("insert_product", {"vector": [0.1 * i, 0.2]})
                for i in range(count)]


class TestFraming:
    def test_zero_length_log(self, tmp_path):
        """A missing file and an empty file are both valid empty logs."""
        missing = tmp_path / "wal.log"
        assert read_wal(missing) == ([], 0, 0)
        missing.write_bytes(b"")
        assert read_wal(missing) == ([], 0, 0)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        written = _write_records(path, 5)
        records, valid_bytes, torn = read_wal(path)
        assert records == written
        assert valid_bytes == path.stat().st_size
        assert torn == 0
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]

    def test_payload_is_canonical_json(self, tmp_path):
        """Same logical record -> same bytes -> same digest, always."""
        a = WalRecord(lsn=3, op="compact", data={"b": 1, "a": 2})
        b = WalRecord(lsn=3, op="compact", data={"a": 2, "b": 1})
        assert a.to_payload() == b.to_payload()
        assert a.digest() == b.digest()
        assert zlib.crc32(a.to_payload()) & 0xFFFFFFFF == int(a.digest(), 16)

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 16])
    def test_record_spanning_buffer_boundary(self, tmp_path, chunk_size):
        """Frames larger than the read chunk must decode identically."""
        path = tmp_path / "wal.log"
        with WalWriter(path, fsync="never") as writer:
            big = writer.append("insert_product",
                                {"vector": [float(i) / 997 for i in range(64)]})
            small = writer.append("delete_product", {"index": 0})
        records, valid_bytes, torn = read_wal(path, chunk_size=chunk_size)
        assert records == [big, small]
        assert (valid_bytes, torn) == (path.stat().st_size, 0)


class TestTornTail:
    @pytest.mark.parametrize("cut", [1, 4, 7, 9])
    def test_torn_final_record_is_dropped(self, tmp_path, cut):
        """Any truncation inside the final frame is an interrupted append."""
        path = tmp_path / "wal.log"
        written = _write_records(path, 3)
        full = path.read_bytes()
        last_frame = encode_record(written[-1])
        path.write_bytes(full[: len(full) - len(last_frame) + cut])
        records, valid_bytes, torn = read_wal(path)
        assert records == written[:2]
        assert torn == cut
        assert valid_bytes == len(full) - len(last_frame)

    def test_single_torn_record_yields_empty_log(self, tmp_path):
        """A log holding only half an append recovers to zero records."""
        path = tmp_path / "wal.log"
        _write_records(path, 1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        records, valid_bytes, torn = read_wal(path)
        assert records == []
        assert valid_bytes == 0
        assert torn == len(data) // 2

    def test_corrupt_final_frame_is_a_torn_tail(self, tmp_path):
        """Bit rot confined to the last frame cannot be told apart from a
        torn append, so it is dropped — never a hard failure."""
        path = tmp_path / "wal.log"
        written = _write_records(path, 3)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        records, _, torn = read_wal(path)
        assert records == written[:2]
        assert torn == len(encode_record(written[-1]))

    def test_zero_filled_tail_is_a_torn_tail(self, tmp_path):
        """Some filesystems leave zeroed blocks after a crash (size
        updated, data never made it); that is torn, not corruption."""
        path = tmp_path / "wal.log"
        written = _write_records(path, 2)
        path.write_bytes(path.read_bytes() + b"\x00" * 512)
        records, _, torn = read_wal(path)
        assert records == written
        assert torn == 512

    def test_writer_truncates_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "wal.log"
        written = _write_records(path, 2)
        path.write_bytes(path.read_bytes() + b"\x99\x01")  # torn garbage
        records, valid_bytes, _ = read_wal(path)
        with WalWriter(path, fsync="never", truncate_to=valid_bytes,
                       next_lsn=records[-1].lsn + 1) as writer:
            third = writer.append("compact", {})
        records, _, torn = read_wal(path)
        assert records == written + [third]
        assert torn == 0


class TestMidLogCorruption:
    def test_crc_mismatch_mid_log_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_records(path, 4)
        data = bytearray(path.read_bytes())
        data[_HEADER.size + 2] ^= 0xFF  # inside record 1's payload
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError) as excinfo:
            read_wal(path)
        assert excinfo.value.offset == 0
        assert "CRC32 mismatch" in str(excinfo.value)

    def test_implausible_length_mid_log_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        written = _write_records(path, 3)
        data = bytearray(path.read_bytes())
        first = len(encode_record(written[0]))
        struct.pack_into("<I", data, first, 0xFFFFFFFF)
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError) as excinfo:
            read_wal(path)
        assert excinfo.value.offset == first
        assert excinfo.value.lsn == 1  # last good LSN before the damage

    def test_lsn_discontinuity_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        frames = (encode_record(WalRecord(1, "compact", {}))
                  + encode_record(WalRecord(5, "compact", {})))
        frames += encode_record(WalRecord(6, "compact", {}))
        (tmp_path / "wal.log").write_bytes(frames)
        with pytest.raises(WalCorruptionError, match="discontinuity"):
            read_wal(path)
        records, _, _ = read_wal(path, expect_contiguous=False)
        assert [r.lsn for r in records] == [1, 5, 6]


class TestWriter:
    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WalWriter(tmp_path / "wal.log", fsync="sometimes")
        assert set(FSYNC_POLICIES) == {"always", "interval", "never"}

    def test_stats_count_appends_and_bytes(self, tmp_path):
        with WalWriter(tmp_path / "wal.log", fsync="always") as writer:
            records = [writer.append("compact", {}) for _ in range(3)]
            stats = writer.stats()
        assert stats["appends"] == 3
        assert stats["fsyncs"] >= 3
        assert stats["last_lsn"] == records[-1].lsn == 3
        assert stats["bytes_written"] == sum(
            len(encode_record(r)) for r in records
        )

    def test_truncate_through_drops_barrier_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path, fsync="never") as writer:
            records = [writer.append("compact", {}) for _ in range(5)]
            writer.truncate_through(3, records)
            post = writer.append("compact", {})
        survivors, _, torn = read_wal(path)
        assert [r.lsn for r in survivors] == [4, 5, 6]
        assert torn == 0
        assert post.lsn == 6

    def test_append_record_enforces_contiguity(self, tmp_path):
        with WalWriter(tmp_path / "wal.log", fsync="never") as writer:
            writer.append("compact", {})
            with pytest.raises(InvalidParameterError, match="continue"):
                writer.append_record(WalRecord(7, "compact", {}))
            writer.append_record(WalRecord(2, "compact", {}))
            assert writer.last_lsn == 2

    def test_reset_to_adopts_a_new_lineage(self, tmp_path):
        path = tmp_path / "wal.log"
        with WalWriter(path, fsync="never") as writer:
            for _ in range(4):
                writer.append("compact", {})
            writer.reset_to(41)
            writer.append("reset", {})
        records, _, _ = read_wal(path)
        assert [r.lsn for r in records] == [41]

    def test_wal_path_layout(self, tmp_path):
        assert wal_path(tmp_path) == tmp_path / "wal.log"


class TestReplayIdempotency:
    def test_replaying_a_feed_twice_applies_each_lsn_once(self, tmp_path):
        """The engine-level guarantee framing exists for: same log twice,
        same state once."""
        from repro.durability.engine import DurableDynamicRRQ

        engine = DurableDynamicRRQ(tmp_path / "db", dim=2, fsync="never")
        engine.insert_product([0.2, 0.3])
        engine.insert_product([0.4, 0.1])
        engine.insert_weight([0.5, 0.5])
        records, _, _ = read_wal(wal_path(tmp_path / "db"))

        standby = DurableDynamicRRQ(tmp_path / "standby", dim=2,
                                    fsync="never")
        assert [standby.apply_replicated(r) for r in records] == [True] * 3
        assert [standby.apply_replicated(r) for r in records] == [False] * 3
        assert standby.last_lsn == engine.last_lsn
        assert standby.num_products == engine.num_products
        assert standby.num_weights == engine.num_weights
        engine.close()
        standby.close()
