"""Unit tests for the cluster membership manifest and partitioners."""

import numpy as np
import pytest

from repro.cluster.topology import (
    ClusterTopology,
    ShardSpec,
    partition_weight_indices,
)
from repro.errors import InvalidParameterError


def make_topology(total=100, shards=3, partitioner="range"):
    return ClusterTopology.build(
        [[f"http://127.0.0.1:{9000 + s}"] for s in range(shards)],
        total, partitioner,
    )


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", ["range", "mod"])
    @pytest.mark.parametrize("total,shards", [
        (0, 1), (1, 3), (7, 3), (100, 1), (100, 7), (101, 4),
    ])
    def test_partition_is_exact_and_disjoint(self, partitioner, total,
                                             shards):
        owned = partition_weight_indices(total, shards, partitioner)
        assert len(owned) == shards
        merged = np.concatenate(owned) if total else np.array([], dtype=int)
        assert sorted(merged.tolist()) == list(range(total))

    def test_range_matches_sharded_engine_split(self):
        # The in-process sharded engine splits with the same linspace;
        # a cluster partitioned 'range' answers exactly like it.
        total, shards = 103, 5
        bounds = np.linspace(0, total, shards + 1).astype(int)
        owned = partition_weight_indices(total, shards, "range")
        for s, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            assert owned[s][0] == lo and owned[s][-1] == hi - 1

    def test_mod_is_balanced(self):
        owned = partition_weight_indices(100, 7, "mod")
        sizes = sorted(len(o) for o in owned)
        assert sizes[-1] - sizes[0] <= 1

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_weight_indices(10, 2, "hash-ring")


class TestBijection:
    @pytest.mark.parametrize("partitioner", ["range", "mod"])
    def test_to_local_to_global_roundtrip(self, partitioner):
        topo = make_topology(101, 4, partitioner)
        for g in range(101):
            shard_id, local = topo.to_local(g)
            assert topo.to_global(shard_id, local) == g
            assert topo.owner_of(g) == shard_id

    @pytest.mark.parametrize("partitioner", ["range", "mod"])
    def test_owned_globals_agree_with_owner_of(self, partitioner):
        topo = make_topology(60, 3, partitioner)
        for shard_id in range(3):
            for g in topo.owned_globals(shard_id):
                assert topo.owner_of(int(g)) == shard_id

    def test_insert_owner_mod_round_robins(self):
        topo = make_topology(10, 3, "mod")
        assert [topo.insert_owner(10 + i) for i in range(6)] == \
            [1, 2, 0, 1, 2, 0]

    def test_insert_owner_range_appends_to_last_shard(self):
        topo = make_topology(10, 3, "range")
        assert topo.insert_owner(10) == 2
        # ...and the new weight's global id survives the round trip.
        local = 10 - topo.owned_globals(2)[0]
        assert topo.to_global(2, int(local)) == 10

    def test_negative_indices_rejected(self):
        topo = make_topology()
        with pytest.raises(InvalidParameterError):
            topo.to_local(-1)
        with pytest.raises(InvalidParameterError):
            topo.to_global(0, -1)


class TestManifest:
    def test_roundtrip_via_dict(self):
        topo = make_topology(77, 3, "mod")
        again = ClusterTopology.from_dict(topo.to_dict())
        assert again == topo

    def test_roundtrip_via_file(self, tmp_path):
        topo = make_topology(50, 2)
        path = tmp_path / "topology.json"
        topo.save(path)
        assert ClusterTopology.load(path) == topo

    def test_load_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ClusterTopology.load(tmp_path / "nope.json")

    def test_malformed_manifest_is_clean_error(self):
        with pytest.raises(InvalidParameterError):
            ClusterTopology.from_dict({"partitioner": "range"})

    def test_drifted_counts_rejected(self):
        # A manifest whose counts disagree with the partitioner would
        # corrupt every global<->local translation: refuse to load it.
        with pytest.raises(InvalidParameterError):
            ClusterTopology(partitioner="range", shards=(
                ShardSpec(0, ("http://a",), 10),
                ShardSpec(1, ("http://b",), 5),
            ))

    def test_sparse_shard_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            ClusterTopology(partitioner="range", shards=(
                ShardSpec(0, ("http://a",), 5),
                ShardSpec(2, ("http://b",), 5),
            ))

    def test_shard_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardSpec(0, ())
        with pytest.raises(InvalidParameterError):
            ShardSpec(-1, ("http://a",))
        spec = ShardSpec(0, ("http://p", "http://s"), 3)
        assert spec.primary == "http://p"


class TestRebalancePlan:
    def test_scale_out_moves_only_crossing_indices(self):
        topo = make_topology(100, 2, "range")
        plan = topo.rebalance_plan(
            [[f"http://127.0.0.1:{9100 + s}"] for s in range(4)])
        assert plan["from_shards"] == 2 and plan["to_shards"] == 4
        # Every move's ranges cover exactly its count, and the new
        # manifest is loadable.
        for move in plan["moves"]:
            covered = sum(hi - lo for lo, hi in move["ranges"])
            assert covered == move["count"]
        assert plan["moved_weights"] == sum(m["count"]
                                            for m in plan["moves"])
        new = ClusterTopology.from_dict(plan["new_topology"])
        assert new.num_shards == 4
        assert new.total_weights == 100

    def test_identity_rebalance_moves_nothing(self):
        topo = make_topology(100, 3, "mod")
        plan = topo.rebalance_plan(
            [[f"http://127.0.0.1:{9000 + s}"] for s in range(3)])
        assert plan["moved_weights"] == 0
        assert plan["moves"] == []

    def test_moves_are_consistent_with_new_owner(self):
        topo = make_topology(60, 3, "range")
        plan = topo.rebalance_plan(
            [[f"http://127.0.0.1:{9200 + s}"] for s in range(2)],
            partitioner="mod")
        new = ClusterTopology.from_dict(plan["new_topology"])
        for move in plan["moves"]:
            for lo, hi in move["ranges"]:
                for g in range(lo, hi):
                    assert topo.owner_of(g) == move["from"]
                    assert new.owner_of(g) == move["to"]
