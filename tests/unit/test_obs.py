"""Unit tests for repro.obs: tracing, Prometheus exposition, slow log."""

import json
import math
import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.prom import (
    FILTER_RATE_BUCKETS,
    LATENCY_BUCKETS_S,
    Exposition,
    Histogram,
    lint_exposition,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    Tracer,
    current,
    current_trace_id,
    new_trace_id,
    sanitize_trace_id,
    span,
    use_context,
)


class TestTraceIds:
    def test_new_trace_id_shape_and_uniqueness(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 32 and all(c in "0123456789abcdef" for c in a)

    def test_sanitize_accepts_well_formed(self):
        assert sanitize_trace_id("req-42.A_b") == "req-42.A_b"

    @pytest.mark.parametrize("bad", [
        None, "", "has space", "new\nline", 'quo"te', "x" * 65,
        "ünïcode", "semi;colon",
    ])
    def test_sanitize_replaces_malformed(self, bad):
        got = sanitize_trace_id(bad)
        assert got != bad
        assert len(got) == 32  # a fresh uuid4 hex


class TestSpansAndContext:
    def test_dark_span_is_noop(self):
        assert current() is None
        with span("anything") as sp:
            sp.annotate("k", 1)  # must not raise
            assert sp.trace_id is None
        assert current_trace_id() is None

    def test_root_and_child_span_tree(self):
        tracer = Tracer()
        with tracer.trace("root", trace_id="t1") as root:
            assert root.trace_id == "t1"
            assert current_trace_id() == "t1"
            with span("child") as child:
                child.annotate("depth", 1)
                with span("grandchild"):
                    pass
        stored = tracer.get("t1")
        assert stored is not None
        assert stored["root"] == "root"
        assert stored["span_count"] == 3
        (root_node,) = stored["spans"]
        assert root_node["name"] == "root"
        (child_node,) = root_node["children"]
        assert child_node["name"] == "child"
        assert child_node["annotations"] == {"depth": 1}
        (grand,) = child_node["children"]
        assert grand["name"] == "grandchild"
        assert grand["children"] == []

    def test_span_durations_nonnegative_and_nested(self):
        tracer = Tracer()
        with tracer.trace("root", trace_id="t"):
            with span("inner"):
                pass
        trace = tracer.get("t")
        (root_node,) = trace["spans"]
        inner = root_node["children"][0]
        assert root_node["duration_s"] >= inner["duration_s"] >= 0.0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.trace("root", trace_id="t"):
                with span("child"):
                    raise ValueError("boom")
        trace = tracer.get("t")
        (root_node,) = trace["spans"]
        assert root_node["status"] == "error"
        assert "boom" in root_node["error"]
        child = root_node["children"][0]
        assert child["status"] == "error"

    def test_context_resets_after_trace(self):
        tracer = Tracer()
        with tracer.trace("root"):
            assert current() is not None
        assert current() is None

    def test_cross_thread_handoff(self):
        """current() + use_context() carries one trace across threads."""
        tracer = Tracer()
        seen = {}

        def worker(ctx):
            with use_context(ctx):
                seen["trace_id"] = current_trace_id()
                with span("worker.step"):
                    pass
            seen["after"] = current_trace_id()

        with tracer.trace("root", trace_id="xthread"):
            ctx = current()
            t = threading.Thread(target=worker, args=(ctx,))
            t.start()
            t.join()
        assert seen["trace_id"] == "xthread"
        assert seen["after"] is None
        trace = tracer.get("xthread")
        (root_node,) = trace["spans"]
        assert [c["name"] for c in root_node["children"]] == ["worker.step"]

    def test_span_cap_drops_excess(self):
        tracer = Tracer()
        with tracer.trace("root", trace_id="big"):
            for _ in range(MAX_SPANS_PER_TRACE + 10):
                with span("s"):
                    pass
        trace = tracer.get("big")
        assert trace["span_count"] == MAX_SPANS_PER_TRACE
        assert trace["spans_dropped"] > 0


class TestTracerRing:
    def test_ring_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.trace("r", trace_id=f"t{i}"):
                pass
        snap = tracer.snapshot()
        assert snap["finished_total"] == 5
        ids = [t["trace_id"] for t in snap["traces"]]
        assert ids == ["t4", "t3", "t2"]  # most recent first
        assert tracer.get("t0") is None

    def test_snapshot_limit(self):
        tracer = Tracer()
        for i in range(4):
            with tracer.trace("r", trace_id=f"t{i}"):
                pass
        assert len(tracer.snapshot(limit=2)["traces"]) == 2

    def test_export_jsonl(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(export_path=str(path))
        with tracer.trace("a", trace_id="e1"):
            pass
        with tracer.trace("b", trace_id="e2"):
            pass
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["trace_id"] for line in lines] == \
            ["e1", "e2"]

    def test_export_failure_counted_not_raised(self, tmp_path):
        tracer = Tracer(export_path=str(tmp_path))  # a directory: open fails
        with tracer.trace("a"):
            pass
        assert tracer.export_errors == 1
        assert tracer.stats()["finished_total"] == 1


class TestHistogram:
    def test_cumulative_counts(self):
        h = Histogram((0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        les = [b["le"] for b in snap["buckets"]]
        counts = [b["count"] for b in snap["buckets"]]
        assert les == [0.1, 1.0, math.inf]
        assert counts == [1, 3, 4]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_boundary_lands_in_its_bucket(self):
        """An observation equal to a bound belongs to that bucket (le=)."""
        h = Histogram((0.1, 1.0))
        h.observe(0.1)
        snap = h.snapshot()
        assert snap["buckets"][0]["count"] == 1

    def test_non_finite_dropped(self):
        h = Histogram((1.0,))
        h.observe(float("nan"))
        h.observe(float("inf"))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["dropped_non_finite"] == 2
        assert math.isfinite(snap["sum"])

    def test_exemplar_kept_per_bucket(self):
        h = Histogram((0.1, 1.0))
        h.observe(0.05, exemplar="first")
        h.observe(0.06, exemplar="second")
        h.observe(0.5)  # no exemplar: previous one survives
        snap = h.snapshot()
        assert snap["buckets"][0]["exemplar"] == ("second", 0.06)
        assert snap["buckets"][1]["exemplar"] is None

    @pytest.mark.parametrize("bad", [(), (1.0, 1.0), (2.0, 1.0),
                                     (1.0, float("inf"))])
    def test_bad_buckets_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            Histogram(bad)

    def test_default_bucket_tuples_valid(self):
        Histogram(LATENCY_BUCKETS_S)
        Histogram(FILTER_RATE_BUCKETS)


class TestExposition:
    def test_render_and_lint_roundtrip(self):
        exp = Exposition()
        exp.counter("x_total", "Things counted.", 3)
        exp.counter("y_total", "By label.", 1, labels={"kind": "a"})
        exp.counter("y_total", "By label.", 2, labels={"kind": "b"})
        exp.gauge("z", "A gauge.", 1.5)
        h = Histogram((0.1, 1.0))
        h.observe(0.05, exemplar="trace-1")
        exp.histogram("lat_seconds", "Latency.", h.snapshot())
        text = exp.render()
        assert lint_exposition(text) == []
        assert text.count("# HELP y_total") == 1
        assert 'y_total{kind="a"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert '# {trace_id="trace-1"} 0.05' in text

    def test_conflicting_kind_rejected(self):
        exp = Exposition()
        exp.counter("m", "h", 1)
        with pytest.raises(InvalidParameterError):
            exp.gauge("m", "h", 1)

    def test_bad_names_rejected(self):
        exp = Exposition()
        with pytest.raises(InvalidParameterError):
            exp.counter("bad name", "h", 1)
        with pytest.raises(InvalidParameterError):
            exp.counter("ok", "h", 1, labels={"bad-label": "v"})

    def test_label_escaping(self):
        exp = Exposition()
        exp.counter("m_total", "h", 1, labels={"op": 'a"b\nc\\d'})
        text = exp.render()
        assert 'op="a\\"b\\nc\\\\d"' in text
        assert lint_exposition(text) == []

    def test_lint_catches_duplicates_and_gaps(self):
        assert lint_exposition("m_total 1\n")  # no HELP/TYPE
        dup = ("# HELP m h\n# TYPE m counter\nm 1\nm 1\n")
        assert any("duplicate series" in p for p in lint_exposition(dup))
        twice = ("# HELP m h\n# TYPE m counter\n"
                 "# HELP m h\n# TYPE m counter\nm 1\n")
        problems = lint_exposition(twice)
        assert any("duplicate HELP" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)

    def test_lint_catches_incomplete_histogram(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any('le="+Inf"' in p for p in lint_exposition(text))

    def test_lint_catches_non_numeric_value(self):
        text = "# HELP m h\n# TYPE m counter\nm oops\n"
        assert any("non-numeric" in p or "unparseable" in p
                   for p in lint_exposition(text))


class TestSlowQueryLog:
    def test_threshold_gate(self):
        log = SlowQueryLog(threshold_s=0.1)
        assert not log.should_log(0.05)
        assert log.should_log(0.1)
        assert log.should_log(1.0)

    def test_disabled_with_none(self):
        log = SlowQueryLog(threshold_s=None)
        assert not log.should_log(1e9)

    def test_negative_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            SlowQueryLog(threshold_s=-0.1)

    def test_record_and_snapshot(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=2)
        for i in range(3):
            log.record({"kind": "rtk", "latency_s": 0.5 + i})
        snap = log.snapshot()
        assert snap["recorded_total"] == 3
        assert len(snap["entries"]) == 2  # capacity evicted the oldest
        assert snap["entries"][0]["latency_s"] == 2.5  # most recent first
        assert snap["entries"][0]["threshold_s"] == 0.0
        assert "logged_at" in snap["entries"][0]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_s=0.0, path=str(path))
        log.record({"kind": "rkr", "latency_s": 1.0, "trace_id": "t9"})
        (line,) = path.read_text().strip().splitlines()
        entry = json.loads(line)
        assert entry["trace_id"] == "t9"
        assert log.sink_errors == 0

    def test_sink_failure_counted_not_raised(self, tmp_path):
        log = SlowQueryLog(threshold_s=0.0, path=str(tmp_path))  # directory
        log.record({"kind": "rtk", "latency_s": 1.0})
        assert log.sink_errors == 1
        assert log.stats()["recorded_total"] == 1
