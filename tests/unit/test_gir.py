"""Unit tests for repro.core.gir (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.stats.counters import OpCounter


@pytest.fixture
def data():
    P = uniform_products(180, 5, seed=31)
    W = uniform_weights(150, 5, seed=32)
    return P, W


class TestConstruction:
    def test_precomputes_approx_vectors(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        assert gir.PA.shape == (180, 5)
        assert gir.WA.shape == (150, 5)
        assert gir.partitions == 16

    def test_memory_report(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=32)
        report = gir.memory_report()
        assert report["grid_bytes"] == 33 * 33 * 8
        # Approximate vectors are 1/8 the size of float64 originals (uint8).
        assert report["pa_bytes"] * 8 == P.values.nbytes
        assert report["wa_bytes"] * 8 == W.values.nbytes

    def test_rejects_bad_partitions(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            GridIndexRRQ(P, W, partitions=0)

    @pytest.mark.parametrize("chunk", [0, -1, -256])
    def test_rejects_non_positive_chunk(self, data, chunk):
        P, W = data
        with pytest.raises(InvalidParameterError):
            GridIndexRRQ(P, W, chunk=chunk)


class TestRTK:
    def test_matches_naive(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        for qi in (0, 50, 177):
            q = P[qi]
            for k in (1, 5, 40):
                assert (gir.reverse_topk(q, k).weights
                        == naive.reverse_topk(q, k).weights)

    def test_empty_when_dominated(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        q = P.values.max(axis=0) * 0.999  # dominated by almost every product
        result = gir.reverse_topk(q, 3)
        assert result.weights == frozenset()

    def test_everything_qualifies_for_best_point(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        q = np.zeros(5)  # dominates everything: rank 0 for all w
        result = gir.reverse_topk(q, 1)
        assert result.size == W.size

    def test_k_validation(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W)
        with pytest.raises(InvalidParameterError):
            gir.reverse_topk(P[0], 0)

    def test_result_counter_populated(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        result = gir.reverse_topk(P[0], 10)
        assert result.counter.additions > 0
        assert result.counter.grid_lookups > 0


class TestRKR:
    def test_matches_naive(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        for qi in (3, 99):
            q = P[qi]
            for k in (1, 7, 25):
                assert (gir.reverse_kranks(q, k).entries
                        == naive.reverse_kranks(q, k).entries)

    def test_k_exceeds_weights(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        result = gir.reverse_kranks(P[0], W.size + 50)
        assert len(result.entries) == W.size

    def test_entries_sorted_by_rank_then_index(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        entries = gir.reverse_kranks(P[0], 20).entries
        assert list(entries) == sorted(entries)

    def test_minrank_feedback_reduces_work(self, data):
        """Algorithm 3's self-refining bound: answering with k=1 must scan
        fewer pairs than answering with k=|W| (no effective bound)."""
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        c_small = OpCounter()
        c_large = OpCounter()
        gir.reverse_kranks(P[0], 1, counter=c_small)
        gir.reverse_kranks(P[0], W.size, counter=c_large)
        assert c_small.pairwise < c_large.pairwise
        assert c_small.refined < c_large.refined


class TestEdgeConfigs:
    """Configurations the blocked kernel must also honor (ISSUE 4):
    answers stay byte-identical to NaiveRRQ at the extremes of every
    tuning knob."""

    @pytest.mark.parametrize("chunk", [1, 180, 5000])
    def test_chunk_extremes_match_naive(self, data, chunk):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16, chunk=chunk)
        naive = NaiveRRQ(P, W)
        q = P[25]
        for k in (1, 9):
            assert (gir.reverse_topk(q, k).weights
                    == naive.reverse_topk(q, k).weights)
            assert (gir.reverse_kranks(q, k).entries
                    == naive.reverse_kranks(q, k).entries)

    def test_use_domin_false_matches_naive(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16, use_domin=False)
        naive = NaiveRRQ(P, W)
        q = P.values.max(axis=0) * 0.999  # where Domin would matter most
        for k in (1, 4, 30):
            assert (gir.reverse_topk(q, k).weights
                    == naive.reverse_topk(q, k).weights)
            assert (gir.reverse_kranks(q, k).entries
                    == naive.reverse_kranks(q, k).entries)

    def test_k_at_least_weights_matches_naive(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        for k in (W.size, W.size + 25):
            assert (gir.reverse_topk(P[7], k).weights
                    == naive.reverse_topk(P[7], k).weights)
            assert (gir.reverse_kranks(P[7], k).entries
                    == naive.reverse_kranks(P[7], k).entries)


class TestExactRankHelper:
    def test_exact_rank_matches_naive_ranks(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        q = P[11]
        live = np.delete(P.values, 11, axis=0)
        for j in (0, 10, 149):
            expected = int(np.sum(live @ W[j] < np.dot(W[j], q)))
            assert gir.exact_rank(q, j) == expected


class TestPartitionSweep:
    @pytest.mark.parametrize("n", [2, 4, 8, 64])
    def test_any_partition_count_is_exact(self, data, n):
        """Filtering power varies with n but answers never change."""
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=n)
        naive = NaiveRRQ(P, W)
        q = P[60]
        assert gir.reverse_topk(q, 12).weights == naive.reverse_topk(q, 12).weights
        assert gir.reverse_kranks(q, 6).entries == naive.reverse_kranks(q, 6).entries

    def test_finer_grid_filters_more(self, data):
        P, W = data
        q = P[0]
        counters = {}
        for n in (4, 32):
            gir = GridIndexRRQ(P, W, partitions=n)
            c = OpCounter()
            gir.reverse_kranks(q, 5, counter=c)
            counters[n] = c
        assert (counters[32].filtering_ratio()
                >= counters[4].filtering_ratio())
