"""Unit tests for the Section 7 extensions (adaptive grid, sparse weights)."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import (
    clustered_products,
    exponential_products,
    uniform_products,
    uniform_weights,
)
from repro.errors import InvalidParameterError
from repro.ext.adaptive_grid import (
    AdaptiveGridIndexRRQ,
    build_adaptive_grid,
    quantile_boundaries,
)
from repro.ext.sparse import (
    SparseGridIndexRRQ,
    SparseWeightSet,
    sparsify_weights,
)
from repro.stats.counters import OpCounter


class TestQuantileBoundaries:
    def test_covers_range_monotone(self):
        rng = np.random.default_rng(61)
        values = rng.exponential(0.2, size=1000)
        values = np.clip(values, 0, 0.999)
        bounds = quantile_boundaries(values, 8, 0.0, 1.0)
        assert bounds[0] == 0.0
        assert bounds[-1] == 1.0
        assert np.all(np.diff(bounds) > 0)
        assert len(bounds) == 9

    def test_heavy_ties_still_monotone(self):
        values = np.full(100, 0.5)
        bounds = quantile_boundaries(values, 4, 0.0, 1.0)
        assert np.all(np.diff(bounds) > 0)

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            quantile_boundaries(np.ones(5), 0, 0.0, 1.0)
        with pytest.raises(InvalidParameterError):
            quantile_boundaries(np.ones(5), 4, 1.0, 0.0)

    def test_adapts_to_skew(self):
        """Exponential data: quantile cells are finer near zero."""
        rng = np.random.default_rng(62)
        values = np.clip(rng.exponential(0.1, size=5000), 0, 0.999)
        bounds = quantile_boundaries(values, 8, 0.0, 1.0)
        widths = np.diff(bounds)
        assert widths[0] < widths[-1]


class TestAdaptiveGIR:
    def test_exact_on_skewed_data(self):
        P = exponential_products(150, 4, seed=63)
        W = uniform_weights(120, 4, seed=64)
        adaptive = AdaptiveGridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        q = P[7]
        assert (adaptive.reverse_topk(q, 10).weights
                == naive.reverse_topk(q, 10).weights)
        assert (adaptive.reverse_kranks(q, 5).entries
                == naive.reverse_kranks(q, 5).entries)

    def test_build_helper_consistency(self):
        P = clustered_products(100, 3, seed=65)
        W = uniform_weights(80, 3, seed=66)
        grid, pq, wq = build_adaptive_grid(P, W, partitions=8)
        assert grid.partitions == 8
        codes = pq.quantize(P.values)
        assert codes.max() < 8

    def test_adaptive_filters_better_on_skew(self):
        """The point of the extension: on skewed data the quantile grid
        resolves more pairs than the equal-width grid at the same n."""
        P = exponential_products(400, 6, seed=67)
        W = uniform_weights(150, 6, seed=68)
        q = P[0]
        c_eq, c_ad = OpCounter(), OpCounter()
        GridIndexRRQ(P, W, partitions=8).reverse_kranks(q, 5, counter=c_eq)
        AdaptiveGridIndexRRQ(P, W, partitions=8).reverse_kranks(
            q, 5, counter=c_ad
        )
        assert c_ad.filtering_ratio() >= c_eq.filtering_ratio() - 0.05


class TestSparsify:
    def test_keeps_nnz_largest(self):
        W = uniform_weights(50, 8, seed=69)
        sparse = sparsify_weights(W, nnz=3)
        nnz_counts = (sparse.values > 0).sum(axis=1)
        assert np.all(nnz_counts <= 3)
        assert np.allclose(sparse.values.sum(axis=1), 1.0)

    def test_nnz_at_least_one(self):
        W = uniform_weights(10, 4, seed=70)
        with pytest.raises(InvalidParameterError):
            sparsify_weights(W, nnz=0)

    def test_nnz_capped_at_dim(self):
        W = uniform_weights(10, 4, seed=71)
        sparse = sparsify_weights(W, nnz=100)
        assert np.allclose(sparse.values, W.values)


class TestSparseWeightSet:
    def test_supports_and_values(self):
        from repro.data.datasets import WeightSet

        W = WeightSet([[0.5, 0.0, 0.5], [0.0, 1.0, 0.0]])
        sw = SparseWeightSet(W)
        assert sw.size == 2
        assert sw.nnz(0) == 2
        assert sw.nnz(1) == 1
        assert sw.average_nnz() == 1.5
        assert sw.supports[1].tolist() == [1]


class TestSparseGIR:
    def test_exact_on_sparse_weights(self):
        P = uniform_products(150, 8, seed=72)
        W = sparsify_weights(uniform_weights(120, 8, seed=73), nnz=3)
        sparse = SparseGridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        q = P[9]
        assert (sparse.reverse_topk(q, 10).weights
                == naive.reverse_topk(q, 10).weights)
        assert (sparse.reverse_kranks(q, 6).entries
                == naive.reverse_kranks(q, 6).entries)

    def test_exact_on_dense_weights_too(self):
        P = uniform_products(100, 5, seed=74)
        W = uniform_weights(90, 5, seed=75)
        sparse = SparseGridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        q = P[3]
        assert (sparse.reverse_kranks(q, 4).entries
                == naive.reverse_kranks(q, 4).entries)

    def test_sparse_does_less_bound_work(self):
        """nnz=2 of d=10: bound assembly cost drops accordingly."""
        P = uniform_products(200, 10, seed=76)
        W = sparsify_weights(uniform_weights(100, 10, seed=77), nnz=2)
        q = P[0]
        c_dense, c_sparse = OpCounter(), OpCounter()
        GridIndexRRQ(P, W, partitions=16).reverse_kranks(q, 5, counter=c_dense)
        SparseGridIndexRRQ(P, W, partitions=16).reverse_kranks(
            q, 5, counter=c_sparse
        )
        assert c_sparse.additions < c_dense.additions
