"""Unit tests for the R*-tree split and X-tree supernodes (repro.index.rstar)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.index.mbr import MBR
from repro.index.rstar import (
    RSTAR_MIN_FILL,
    XTreeSplitPolicy,
    rstar_split,
    split_quality,
)
from repro.index.rtree import RTree


def boxes_of(points):
    return [MBR.of_point(p) for p in points]


class TestRStarSplit:
    def test_separable_clusters_split_cleanly(self):
        left_pts = np.random.default_rng(1).random((10, 2)) * 0.3
        right_pts = np.random.default_rng(2).random((10, 2)) * 0.3 + 0.7
        boxes = boxes_of(np.vstack([left_pts, right_pts]))
        left, right, overlap = rstar_split(boxes)
        assert overlap == 0.0
        groups = {frozenset(left), frozenset(right)}
        assert frozenset(range(10)) in groups
        assert frozenset(range(10, 20)) in groups

    def test_min_fill_respected(self):
        rng = np.random.default_rng(3)
        boxes = boxes_of(rng.random((20, 3)))
        left, right, _ = rstar_split(boxes)
        min_fill = int(20 * RSTAR_MIN_FILL)
        assert len(left) >= min_fill
        assert len(right) >= min_fill
        assert sorted(left + right) == list(range(20))

    def test_rejects_single_entry(self):
        with pytest.raises(InvalidParameterError):
            rstar_split(boxes_of(np.zeros((1, 2))))

    def test_beats_or_ties_quadratic_on_overlap(self):
        """The R* criterion explicitly minimizes overlap, so it must not be
        worse than Guttman's quadratic split on that measure."""
        rng = np.random.default_rng(4)
        pts = rng.random((24, 2))
        boxes = boxes_of(pts)
        rstar_groups = rstar_split(boxes)[:2]
        tree = RTree(pts, capacity=30)  # only for its quadratic splitter
        quad_groups = tree._quadratic_split(boxes)
        rstar_overlap = split_quality(boxes, rstar_groups)["overlap"]
        quad_overlap = split_quality(boxes, quad_groups)["overlap"]
        assert rstar_overlap <= quad_overlap + 1e-12

    def test_split_quality_keys(self):
        boxes = boxes_of(np.random.default_rng(5).random((8, 2)))
        groups = rstar_split(boxes)[:2]
        quality = split_quality(boxes, groups)
        assert set(quality) == {"overlap", "total_margin", "total_area"}


class TestXTreePolicy:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            XTreeSplitPolicy(max_overlap=1.5)

    def test_clean_split_allowed(self):
        policy = XTreeSplitPolicy(max_overlap=0.1)
        left_pts = np.random.default_rng(6).random((8, 2)) * 0.2
        right_pts = np.random.default_rng(7).random((8, 2)) * 0.2 + 0.8
        result = policy.try_split(boxes_of(np.vstack([left_pts, right_pts])))
        assert result is not None
        assert policy.supernodes == 0

    def test_unsplittable_node_becomes_supernode(self):
        """Heavily overlapping high-d boxes: the policy must refuse."""
        rng = np.random.default_rng(8)
        # Boxes (not points) that all overlap each other around the centre.
        boxes = [MBR(rng.random(8) * 0.3, rng.random(8) * 0.3 + 0.6)
                 for _ in range(12)]
        policy = XTreeSplitPolicy(max_overlap=0.001)
        assert policy.try_split(boxes) is None
        assert policy.supernodes == 1


class TestRTreeIntegration:
    @pytest.fixture
    def points(self):
        return np.random.default_rng(9).random((350, 3)) * 50

    def test_rstar_tree_correct(self, points):
        tree = RTree(points, capacity=12, bulk=False, split="rstar")
        tree.check_invariants()
        box = MBR([10, 10, 10], [30, 30, 30])
        expected = {i for i, p in enumerate(points)
                    if np.all(p >= box.lo) and np.all(p <= box.hi)}
        assert set(tree.range_query(box)) == expected

    def test_rstar_reduces_leaf_overlap_in_2d(self):
        pts = np.random.default_rng(10).random((400, 2))

        def total_overlap(tree):
            leaves = tree.leaves()
            return sum(
                a.mbr.intersection_area(b.mbr)
                for i, a in enumerate(leaves) for b in leaves[i + 1:]
            )

        quad = RTree(pts, capacity=16, bulk=False, split="quadratic")
        rstar = RTree(pts, capacity=16, bulk=False, split="rstar")
        assert total_overlap(rstar) <= total_overlap(quad) * 1.1 + 1e-9

    def test_xtree_mode_stays_correct(self):
        """Queries stay exact with the supernode policy active.

        Note: *point* leaves always admit a zero-overlap split (sorting
        along an axis separates the two boxes there), so supernodes arise
        only from unlucky internal splits — the dedicated policy test
        above exercises the refusal path deterministically.
        """
        pts = np.random.default_rng(11).random((200, 10))
        tree = RTree(pts, capacity=8, bulk=False, split="rstar",
                     xtree_max_overlap=0.0)
        tree.check_invariants()  # supernodes (if any) allowed past capacity
        assert tree.xtree_policy is not None
        box = MBR(np.full(10, 0.2), np.full(10, 0.9))
        expected = {i for i, p in enumerate(pts)
                    if np.all(p >= 0.2) and np.all(p <= 0.9)}
        assert set(tree.range_query(box)) == expected

    def test_supernode_path_in_tree(self, monkeypatch):
        """Force the refusal path inside RTree and verify the node is kept
        oversized without corrupting the structure."""
        from repro.index import rstar

        pts = np.random.default_rng(12).random((40, 3))
        tree = RTree(pts[:5], capacity=4, bulk=False, split="rstar",
                     xtree_max_overlap=0.5)
        monkeypatch.setattr(tree.xtree_policy, "try_split",
                            lambda boxes: None)
        for idx in range(5, 40):
            tree.points = pts  # grow the backing array view
            tree.insert(idx)
        tree.check_invariants()
        assert any(len(leaf.entries) > 4 for leaf in tree.leaves())
        assert sorted(tree.all_point_indices()) == list(range(40))

    def test_invalid_split_name(self, points):
        with pytest.raises(InvalidParameterError):
            RTree(points, split="hilbert")

    def test_bbr_works_on_rstar_trees(self):
        """The RTK baseline stays exact when built over R*-split trees."""
        from repro.algorithms.bbr import BranchBoundRTK
        from repro.algorithms.naive import NaiveRRQ
        from repro.data.synthetic import uniform_products, uniform_weights

        P = uniform_products(120, 4, seed=12)
        W = uniform_weights(100, 4, seed=13)
        bbr = BranchBoundRTK(P, W)
        # Swap in R*-built trees (dynamic insertion path).
        bbr.p_tree = RTree(P.values, capacity=16, bulk=False, split="rstar")
        bbr.w_tree = RTree(W.values, capacity=16, bulk=False, split="rstar")
        naive = NaiveRRQ(P, W)
        q = P[5]
        assert bbr.reverse_topk(q, 8).weights == naive.reverse_topk(q, 8).weights
