"""Additional coverage for counter plumbing across the query stack."""

import numpy as np
import pytest

from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.stats.counters import OpCounter


@pytest.fixture
def setup():
    P = uniform_products(120, 4, seed=951)
    W = uniform_weights(100, 4, seed=952)
    return GridIndexRRQ(P, W, partitions=16), P, W


class TestCounterPlumbing:
    def test_counter_str_includes_nonzero_fields(self):
        c = OpCounter(pairwise=3, refined=1)
        text = str(c)
        assert "pairwise=3" in text
        assert "refined=1" in text
        assert "additions" not in text  # zero fields omitted

    def test_exact_rank_accepts_counter(self, setup):
        gir, P, _ = setup
        c = OpCounter()
        rank = gir.exact_rank(P[4], 0, counter=c)
        assert rank >= 0
        assert c.pairwise >= 1

    def test_counters_accumulate_across_queries(self, setup):
        gir, P, _ = setup
        c = OpCounter()
        gir.reverse_topk(P[0], 5, counter=c)
        first = c.pairwise
        gir.reverse_topk(P[1], 5, counter=c)
        assert c.pairwise > first

    def test_internal_counter_when_none_passed(self, setup):
        gir, P, _ = setup
        result = gir.reverse_topk(P[0], 5)
        assert result.counter.grid_lookups > 0

    def test_work_conservation(self, setup):
        """Every live pair is either bound-decided or refined — exactly once
        per (w, p) opportunity when there is no early termination."""
        gir, P, W = setup
        q = np.zeros(4)  # rank 0 for every w: no early aborts possible
        c = OpCounter()
        gir.reverse_kranks(q, W.size, counter=c)
        live_per_w = P.size  # q is not in P (all-zero point)
        assert (c.filtered_case1 + c.filtered_case2 + c.refined
                == live_per_w * W.size)

    def test_dominated_skips_counted(self, setup):
        gir, P, _ = setup
        q = P.values.max(axis=0) * 0.999
        c = OpCounter()
        gir.reverse_kranks(q, 3, counter=c)
        assert c.dominated_skips > 0
