"""Unit tests for the repro-rrq command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def data_dir(tmp_path):
    rc = main(["generate", "--dist", "UN", "--size", "120", "--dim", "4",
               "--seed", "3", "--out", str(tmp_path / "data")])
    assert rc == 0
    return tmp_path / "data"


class TestGenerate:
    def test_creates_files(self, data_dir):
        assert (data_dir / "products.rrq").exists()
        assert (data_dir / "weights.rrq").exists()

    @pytest.mark.parametrize("dist", ["CL", "HOUSE", "DIANPING"])
    def test_other_distributions(self, tmp_path, dist, capsys):
        rc = main(["generate", "--dist", dist, "--size", "60",
                   "--out", str(tmp_path / dist)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out


class TestBuildAndInfo:
    def test_build_then_info(self, data_dir, tmp_path, capsys):
        rc = main(["build", str(data_dir), "--index", str(tmp_path / "idx"),
                   "--partitions", "16"])
        assert rc == 0
        rc = main(["info", str(tmp_path / "idx")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "approx_over_raw" in out
        assert "kernel store" not in out  # no packed store yet

    def test_info_reports_kernel_store(self, data_dir, tmp_path, capsys):
        from repro.cli import _load_data
        from repro.vectorized.girkernel import GirKernelRRQ
        from repro.vectorized.kernelstore import save_kernel

        idx = tmp_path / "idx"
        rc = main(["build", str(data_dir), "--index", str(idx)])
        assert rc == 0
        products, weights = _load_data(str(data_dir))
        kernel = GirKernelRRQ(products, weights, partitions=8)
        save_kernel(idx / "static", kernel)
        rc = main(["info", str(idx)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel store" in out
        assert "static" in out
        assert "mmap" in out


class TestQuery:
    def test_rtk_on_index(self, data_dir, tmp_path, capsys):
        main(["build", str(data_dir), "--index", str(tmp_path / "idx")])
        rc = main(["query", str(tmp_path / "idx"), "--product", "5",
                   "--kind", "rtk", "-k", "10"])
        assert rc == 0
        assert "reverse top-10" in capsys.readouterr().out

    def test_rkr_on_raw_data(self, data_dir, capsys):
        rc = main(["query", str(data_dir), "--method", "sim",
                   "--product", "5", "--kind", "rkr", "-k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("preference") == 3

    def test_vector_query(self, data_dir, capsys):
        rc = main(["query", str(data_dir), "--vector", "10,20,30,40",
                   "--kind", "rtk", "-k", "5"])
        assert rc == 0

    def test_missing_query_point_errors(self, data_dir):
        with pytest.raises(SystemExit):
            main(["query", str(data_dir), "--kind", "rtk"])

    def test_out_of_range_product_errors(self, data_dir):
        with pytest.raises(SystemExit):
            main(["query", str(data_dir), "--product", "9999"])


class TestCompare:
    def test_all_methods_agree(self, data_dir, capsys):
        rc = main(["compare", str(data_dir), "--product", "5", "-k", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "gir" in out and "naive" in out

    def test_rkr_compare(self, data_dir, capsys):
        rc = main(["compare", str(data_dir), "--product", "5",
                   "--kind", "rkr", "-k", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "bbr" not in out  # RTK-only methods skipped


class TestModel:
    def test_worked_example(self, capsys):
        rc = main(["model", "--dim", "20", "--epsilon", "0.01"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended n   : 32" in out


class TestBench:
    def test_smoke_writes_json_and_verifies(self, tmp_path, capsys):
        import json

        config = [{"name": "cli-micro", "p_dist": "UN", "w_dist": "UN",
                   "n_products": 60, "n_weights": 50, "dim": 3, "k": 4,
                   "queries": 2, "partitions": 8}]
        config_file = tmp_path / "configs.json"
        config_file.write_text(json.dumps(config))
        out = tmp_path / "BENCH_test.json"
        rc = main(["bench", "--config", str(config_file),
                   "--out", str(out), "--shards", "0"])
        assert rc == 0
        assert "verified=True" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["ok"]
        assert report["machine"]["cpu_count"] >= 1
        record = report["configs"][0]
        assert record["oracle"] == "naive"
        assert record["rtk"]["kernel_p50_s"] > 0
        assert record["batch"]["per_query_p50_s"] >= 0
        for kind in ("rtk", "rkr"):
            assert record["kernel_stats"][kind]["pairs"]["total"] >= 0
            assert record["kernel_stats"][kind]["queries"] == 2

    def test_missing_config_exits_2(self, tmp_path, capsys):
        rc = main(["bench", "--config", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_out_dir_exits_2(self, tmp_path, capsys):
        rc = main(["bench", "--smoke",
                   "--out", str(tmp_path / "missing" / "b.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_config_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["bench", "--config", str(bad)])
        assert rc == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_fused_writes_json_and_verifies(self, tmp_path, capsys):
        import json

        config = [{"name": "cli-fused-micro", "p_dist": "UN",
                   "w_dist": "UN", "n_products": 60, "n_weights": 50,
                   "dim": 3, "k": 3, "queries": 4, "partitions": 8}]
        config_file = tmp_path / "configs.json"
        config_file.write_text(json.dumps(config))
        out = tmp_path / "BENCH_fused_test.json"
        rc = main(["bench", "--fused", "--config", str(config_file),
                   "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "verified=True" in printed
        assert "cold-start" in printed
        report = json.loads(out.read_text())
        assert report["ok"]
        assert report["benchmark"] == "girkernel-fused"
        record = report["configs"][0]
        assert record["fused_rtk"]["fused_wall_s"] > 0
        assert record["cold_start"]["mmap_load_s"] > 0

    def test_fused_smoke_defaults_to_fused_configs(self):
        args = build_parser().parse_args(["bench", "--fused", "--smoke"])
        assert args.fused and args.smoke
        args = build_parser().parse_args(["bench"])
        assert not args.fused


class TestServeFlags:
    def test_no_kernel_flag_parses(self):
        args = build_parser().parse_args(["serve", "idx/", "--no-kernel"])
        assert args.no_kernel
        args = build_parser().parse_args(["serve", "idx/"])
        assert not args.no_kernel

    def test_kernel_cache_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "idx/", "--kernel-cache", "cache/"])
        assert args.kernel_cache == "cache/"
        args = build_parser().parse_args(["serve", "idx/"])
        assert args.kernel_cache is None


class TestClusterFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["cluster", "data/"])
        assert args.workers == 3
        assert args.partitioner == "range"
        assert args.fsync == "never"
        assert args.port == 8378
        assert args.shard_timeout_ms == 5000.0
        assert not args.no_fallback

    def test_overrides(self):
        args = build_parser().parse_args(
            ["cluster", "data/", "--workers", "5", "--partitioner", "mod",
             "--fsync", "always", "--shard-timeout-ms", "250",
             "--no-fallback"])
        assert args.workers == 5
        assert args.partitioner == "mod"
        assert args.fsync == "always"
        assert args.shard_timeout_ms == 250.0
        assert args.no_fallback

    def test_bad_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "data/", "--partitioner", "hash"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTune:
    @pytest.fixture
    def clustered_dir(self, tmp_path):
        rc = main(["generate", "--dist", "CL", "--size", "150", "--dim",
                   "4", "--seed", "5", "--out", str(tmp_path / "cl")])
        assert rc == 0
        return tmp_path / "cl"

    def test_tune_prints_winner_table(self, clustered_dir, capsys):
        rc = main(["tune", str(clustered_dir), "-k", "5",
                   "--queries", "4", "--seed", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "<- winner" in out
        assert "improvement (undecided+refined):" in out
        assert "winner verified vs naive oracle: yes" in out

    def test_tune_json_output(self, clustered_dir, capsys):
        import json

        rc = main(["tune", str(clustered_dir), "-k", "5",
                   "--queries", "4", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["verified"] is True
        assert report["winner"]["config"]["partitions"] >= 1

    def test_tune_persists_winner_to_kernel_cache(self, clustered_dir,
                                                  tmp_path, capsys):
        from repro.vectorized.kernelstore import (
            load_kernel,
            read_tuned_pointer,
        )

        cache = tmp_path / "kc"
        rc = main(["tune", str(clustered_dir), "-k", "5", "--queries",
                   "4", "--kernel-cache", str(cache)])
        assert rc == 0
        out = capsys.readouterr().out
        pointer = read_tuned_pointer(cache)
        assert pointer is not None
        assert pointer["digest"][:12] in out
        kernel = load_kernel(cache / f"cfg-{pointer['digest'][:12]}",
                             expected_digest=pointer["digest"])
        assert kernel.partitions == pointer["config"]["partitions"]
        # info now reports the tuned pointer alongside the cfg store.
        rc = main(["info", str(cache)])
        if rc == 0:  # info on a bare cache dir may not be supported
            assert "tuned" in capsys.readouterr().out

    def test_missing_data_exits_2(self, tmp_path, capsys):
        rc = main(["tune", str(tmp_path / "nope")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_auto_tune_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "data", "--auto-tune",
                                  "--tune-interval", "5"])
        assert args.auto_tune is True
        assert args.tune_interval == 5.0
        args = parser.parse_args(["serve", "data"])
        assert args.auto_tune is False

    def test_cluster_auto_tune_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["cluster", "data",
                                  "--auto-tune-every", "12"])
        assert args.auto_tune_every == 12
        assert build_parser().parse_args(
            ["cluster", "data"]).auto_tune_every == 0
