"""Unit tests for repro.index.rtree."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.index.mbr import MBR
from repro.index.rtree import RTree
from repro.stats.counters import OpCounter


@pytest.fixture
def points():
    return np.random.default_rng(42).random((400, 3)) * 100


class TestConstruction:
    def test_bulk_load_invariants(self, points):
        tree = RTree(points, capacity=16)
        tree.check_invariants()
        assert tree.size == 400
        assert tree.height >= 2

    def test_dynamic_insert_invariants(self, points):
        tree = RTree(points[:120], capacity=8, bulk=False)
        tree.check_invariants()
        assert tree.size == 120

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 2.0]]))
        tree.check_invariants()
        assert tree.size == 1
        assert tree.height == 1

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            RTree(np.empty((0, 2)))

    def test_rejects_tiny_capacity(self):
        with pytest.raises(InvalidParameterError):
            RTree(np.ones((3, 2)), capacity=1)

    def test_all_points_indexed(self, points):
        for bulk in (True, False):
            tree = RTree(points[:150], capacity=10, bulk=bulk)
            assert sorted(tree.all_point_indices()) == list(range(150))

    def test_duplicate_points_supported(self):
        pts = np.tile(np.array([[1.0, 1.0]]), (50, 1))
        tree = RTree(pts, capacity=8)
        tree.check_invariants()
        box = MBR([0.5, 0.5], [1.5, 1.5])
        assert len(tree.range_query(box)) == 50


class TestRangeQuery:
    def test_matches_bruteforce(self, points):
        tree = RTree(points, capacity=16)
        rng = np.random.default_rng(1)
        for _ in range(10):
            lo = rng.random(3) * 80
            hi = lo + rng.random(3) * 30
            box = MBR(lo, hi)
            expected = {
                i for i, p in enumerate(points)
                if np.all(p >= lo) and np.all(p <= hi)
            }
            assert set(tree.range_query(box)) == expected

    def test_counts_node_accesses(self, points):
        tree = RTree(points, capacity=16)
        counter = OpCounter()
        tree.range_query(MBR([0, 0, 0], [100, 100, 100]), counter)
        assert counter.nodes_accessed >= len(tree.leaves())
        assert counter.points_accessed == 400

    def test_empty_result(self, points):
        tree = RTree(points, capacity=16)
        assert tree.range_query(MBR([200, 200, 200], [300, 300, 300])) == []


class TestStructure:
    def test_leaves_partition_points(self, points):
        tree = RTree(points, capacity=20)
        seen = []
        for leaf in tree.leaves():
            seen.extend(leaf.entries)
        assert sorted(seen) == list(range(len(points)))

    def test_node_counts_consistent(self, points):
        tree = RTree(points, capacity=20)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)

    def test_bulk_beats_insert_on_overlap(self):
        # STR-packed leaves overlap less than incrementally built ones in
        # low dimensions; use total pairwise leaf intersection as a proxy.
        pts = np.random.default_rng(5).random((300, 2))

        def overlap(tree):
            leaves = tree.leaves()
            total = 0.0
            for i, a in enumerate(leaves):
                for b in leaves[i + 1:]:
                    total += a.mbr.intersection_area(b.mbr)
            return total

        bulk = RTree(pts, capacity=16, bulk=True)
        dyn = RTree(pts, capacity=16, bulk=False)
        assert overlap(bulk) <= overlap(dyn) * 1.5 + 1e-9


class TestMBRStatistics:
    def test_statistics_fields(self, points):
        tree = RTree(points, capacity=25)
        stats = tree.mbr_statistics(query_fraction=0.01, num_queries=10, seed=0)
        assert stats["num_mbrs"] == len(tree.leaves())
        assert stats["avg_diagonal"] > 0
        assert stats["avg_shape_ratio"] >= 1.0
        assert 0.0 <= stats["overlap_fraction"] <= 1.0

    def test_overlap_grows_with_dimension(self):
        """The Table 3 effect: 1%-range queries overlap almost all MBRs in
        high d but few in low d."""
        rng = np.random.default_rng(9)
        low = RTree(rng.random((600, 2)), capacity=30).mbr_statistics(seed=1)
        high = RTree(rng.random((600, 12)), capacity=30).mbr_statistics(seed=1)
        assert high["overlap_fraction"] > low["overlap_fraction"]
        assert high["overlap_fraction"] > 0.9
