"""Unit tests for admission control (repro.service.limits).

Focus: deadline edge cases — zero and negative budgets, expiry exactly
at admission — and the structured rejection body, including one full
round trip through the HTTP frontend.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    DeadlineExceededError,
    DimensionMismatchError,
    InvalidParameterError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.service.limits import (
    Deadline,
    ServiceLimits,
    http_status,
    rejection_body,
)


class TestServiceLimits:
    def test_defaults_are_sane(self):
        limits = ServiceLimits()
        assert limits.max_queue_depth > 0
        assert limits.max_batch > 0
        assert limits.default_deadline_s > 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServiceLimits(max_queue_depth=0)
        with pytest.raises(InvalidParameterError):
            ServiceLimits(max_batch=-1)
        with pytest.raises(InvalidParameterError):
            ServiceLimits(default_deadline_s=0.0)

    def test_deadline_override_beats_default(self):
        limits = ServiceLimits(default_deadline_s=100.0)
        deadline = limits.deadline(0.0)
        assert deadline.expired()

    def test_none_default_yields_unbounded(self):
        limits = ServiceLimits(default_deadline_s=None)
        assert limits.deadline().remaining() is None


class TestDeadlineEdges:
    def test_zero_budget_expires_immediately(self):
        """after(0) is a legal way to say "reject me at admission"."""
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_negative_budget_is_a_caller_error(self):
        with pytest.raises(InvalidParameterError):
            Deadline.after(-0.001)

    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check()  # must not raise

    def test_remaining_goes_negative_after_expiry(self):
        deadline = Deadline.after(0.0)
        assert deadline.remaining() <= 0.0

    def test_generous_budget_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0


class TestHttpMapping:
    @pytest.mark.parametrize("exc,status", [
        (ServiceOverloadError("full"), 429),
        (ServiceUnavailableError("shutting down"), 503),
        (DeadlineExceededError("late"), 504),
        (InvalidParameterError("bad k"), 400),
        (DimensionMismatchError("d"), 400),
        (ValueError("not json"), 400),
        (KeyError("q"), 400),
        (RuntimeError("boom"), 500),
    ])
    def test_status_codes(self, exc, status):
        assert http_status(exc) == status

    def test_rejection_body_shape(self):
        body = rejection_body(ServiceOverloadError("queue full"))
        assert body == {"error": "ServiceOverloadError",
                        "message": "queue full", "status": 429}

    def test_rejection_body_never_empty_message(self):
        body = rejection_body(ValueError())
        assert body["message"] == "ValueError"


class TestRejectionRoundTrip:
    def test_expired_at_admission_rejected_as_504_over_http(self):
        """timeout_ms=0 admits an already-expired request; the structured

        rejection body must survive the full HTTP round trip."""
        from repro.data.synthetic import uniform_products, uniform_weights
        from repro.service import QueryService, serve_in_background

        P = uniform_products(60, 3, seed=771)
        W = uniform_weights(50, 3, seed=772)
        service = QueryService.from_datasets(P, W, method="naive")
        with serve_in_background(service) as server:
            payload = json.dumps({"vector": list(P[0]), "kind": "rtk",
                                  "k": 5, "timeout_ms": 0}).encode()
            request = urllib.request.Request(
                server.url + "/query", data=payload,
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 504
            body = json.loads(excinfo.value.read().decode())
            assert body["error"] == "DeadlineExceededError"
            assert body["status"] == 504
            assert body["message"]
