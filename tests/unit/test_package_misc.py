"""Gap-filling tests: lazy imports, misc accessors, failure injection."""

import numpy as np
import pytest

import repro
import repro.queries as queries_pkg
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import (
    DataValidationError,
    DimensionMismatchError,
    InvalidParameterError,
)


class TestLazyImports:
    def test_engine_symbols_resolve_lazily(self):
        assert queries_pkg.RRQEngine is not None
        assert callable(queries_pkg.make_algorithm)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            queries_pkg.does_not_exist  # noqa: B018


class TestResultTypes:
    def test_rtk_result_accessors(self):
        from repro.queries.types import RTKResult

        result = RTKResult(weights=frozenset({3, 1, 2}), k=5)
        assert result.size == 3
        assert result.sorted_indices() == [1, 2, 3]

    def test_rkr_result_accessors(self):
        from repro.queries.types import RKRResult

        result = RKRResult(entries=((2, 7), (5, 1)), k=2)
        assert result.weights == frozenset({7, 1})
        assert result.ranks == (2, 5)
        assert result.best_rank == 2
        empty = RKRResult(entries=(), k=2)
        assert empty.best_rank == -1

    def test_make_rkr_truncates_and_sorts(self):
        from repro.queries.types import make_rkr_result
        from repro.stats.counters import OpCounter

        result = make_rkr_result([(5, 2), (1, 9), (1, 3)], 2, OpCounter())
        assert result.entries == ((1, 3), (1, 9))


class TestFailureInjection:
    """Malformed inputs raise typed errors at every public entry point."""

    @pytest.fixture
    def engine(self):
        P = uniform_products(60, 3, seed=901)
        W = uniform_weights(50, 3, seed=902)
        return repro.RRQEngine(P, W)

    def test_nan_query(self, engine):
        with pytest.raises(DataValidationError):
            engine.reverse_topk(np.array([1.0, np.nan, 2.0]), 5)

    def test_negative_query(self, engine):
        with pytest.raises(DataValidationError):
            engine.reverse_kranks(np.array([1.0, -1.0, 2.0]), 5)

    def test_wrong_dim_query(self, engine):
        with pytest.raises(DimensionMismatchError):
            engine.reverse_topk(np.ones(7), 5)

    def test_zero_k(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.reverse_topk(np.ones(3), 0)

    def test_batch_oracle_many_rejects_bad_k(self):
        from repro.vectorized import BatchOracle

        P = uniform_products(30, 3, seed=903)
        W = uniform_weights(30, 3, seed=904)
        oracle = BatchOracle(P, W)
        with pytest.raises(InvalidParameterError):
            oracle.reverse_topk_many([P[0]], 0)
        with pytest.raises(InvalidParameterError):
            oracle.reverse_kranks_many([P[0]], -1)

    def test_gir_rejects_mismatched_custom_grid_quantizer(self):
        """A grid whose boundaries cannot cover the data must be rejected
        at quantization time, not produce silent garbage."""
        from repro.core.gir import GridIndexRRQ
        from repro.core.grid import GridIndex

        P = uniform_products(30, 3, value_range=10.0, seed=905)
        W = uniform_weights(30, 3, seed=906)
        tiny_grid = GridIndex(np.linspace(0, 1.0, 5), np.linspace(0, 1.0, 5))
        with pytest.raises(DataValidationError):
            GridIndexRRQ(P, W, grid=tiny_grid)


class TestVersionMetadata:
    def test_pyproject_version_matches_package(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        if not pyproject.exists():
            pytest.skip("source checkout layout not available")
        data = tomllib.loads(pyproject.read_text())
        assert data["project"]["version"] == repro.__version__
