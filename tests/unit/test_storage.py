"""Unit tests for repro.core.storage (crash-safe index persistence)."""

import json

import numpy as np
import pytest

from repro.core.gir import GridIndexRRQ
from repro.core.storage import (
    index_size_report,
    load_index,
    save_index,
    verify_index,
)
from repro.data.synthetic import clustered_products, uniform_weights
from repro.errors import DataValidationError, IndexCorruptionError


@pytest.fixture
def built_index():
    P = clustered_products(150, 5, seed=301)
    W = uniform_weights(120, 5, seed=302)
    return GridIndexRRQ(P, W, partitions=16, chunk=128, use_domin=False)


class TestRoundtrip:
    def test_save_load_identical_answers(self, built_index, tmp_path):
        manifest = save_index(tmp_path / "idx", built_index)
        assert all(v > 0 for v in manifest.values())
        loaded = load_index(tmp_path / "idx")
        assert loaded.partitions == built_index.partitions
        assert loaded.chunk == built_index.chunk
        assert loaded.use_domin == built_index.use_domin
        assert np.array_equal(loaded.PA, built_index.PA)
        assert np.array_equal(loaded.WA, built_index.WA)
        q = built_index.products[3]
        assert (loaded.reverse_topk(q, 10).weights
                == built_index.reverse_topk(q, 10).weights)
        assert (loaded.reverse_kranks(q, 5).entries
                == built_index.reverse_kranks(q, 5).entries)

    def test_boundaries_preserved_exactly(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        loaded = load_index(tmp_path / "idx")
        assert np.array_equal(loaded.grid.alpha_p, built_index.grid.alpha_p)
        assert np.array_equal(loaded.grid.alpha_w, built_index.grid.alpha_w)


class TestIntegrity:
    def test_missing_meta_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DataValidationError):
            load_index(tmp_path / "empty")

    def test_wrong_version_rejected(self, built_index, tmp_path):
        """Editing grid.meta breaks its checksum: structured corruption."""
        save_index(tmp_path / "idx", built_index)
        meta_path = tmp_path / "idx" / "grid.meta"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexCorruptionError) as excinfo:
            load_index(tmp_path / "idx")
        assert excinfo.value.artifacts == ("grid.meta",)
        assert not excinfo.value.recoverable

    def test_wrong_version_rejected_legacy(self, built_index, tmp_path):
        """Without a manifest the version check itself still rejects."""
        save_index(tmp_path / "idx", built_index)
        (tmp_path / "idx" / "MANIFEST.json").unlink()
        meta_path = tmp_path / "idx" / "grid.meta"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(DataValidationError):
            load_index(tmp_path / "idx")

    def test_stale_approx_vectors_rejected(self, built_index, tmp_path):
        """Swapping the raw data under the index must be detected."""
        from repro.data.io import save_products
        from repro.data.synthetic import clustered_products

        save_index(tmp_path / "idx", built_index)
        other = clustered_products(150, 5, seed=999)
        save_products(tmp_path / "idx" / "products.rrq", other)
        with pytest.raises(IndexCorruptionError) as excinfo:
            load_index(tmp_path / "idx")
        assert "products.rrq" in excinfo.value.artifacts

    def test_stale_approx_vectors_rejected_legacy(self, built_index,
                                                  tmp_path):
        """Pre-manifest directories rely on the deep quantization check."""
        from repro.data.io import save_products
        from repro.data.synthetic import clustered_products

        save_index(tmp_path / "idx", built_index)
        (tmp_path / "idx" / "MANIFEST.json").unlink()
        other = clustered_products(150, 5, seed=999)
        save_products(tmp_path / "idx" / "products.rrq", other)
        with pytest.raises(DataValidationError, match="stale or corrupted"):
            load_index(tmp_path / "idx")

    def test_legacy_missing_artifact_rejected(self, built_index, tmp_path):
        """A manifest-less dir missing an artifact looks like a torn save."""
        save_index(tmp_path / "idx", built_index)
        (tmp_path / "idx" / "MANIFEST.json").unlink()
        (tmp_path / "idx" / "wa.rrqa").unlink()
        with pytest.raises(DataValidationError, match="incomplete index"):
            load_index(tmp_path / "idx")


class TestManifest:
    def test_verify_reports_ok(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        report = verify_index(tmp_path / "idx")
        assert report["ok"]
        assert report["manifest"] == "ok"
        assert set(report["artifacts"]) == {
            "products.rrq", "weights.rrq", "pa.rrqa", "wa.rrqa", "grid.meta",
        }
        assert all(v == "ok" for v in report["artifacts"].values())

    def test_verify_flags_damage_and_recoverability(self, built_index,
                                                    tmp_path):
        save_index(tmp_path / "idx", built_index)
        pa = tmp_path / "idx" / "pa.rrqa"
        pa.write_bytes(b"\x00" * pa.stat().st_size)
        report = verify_index(tmp_path / "idx")
        assert not report["ok"]
        assert report["damaged"] == ["pa.rrqa"]
        assert report["recoverable"]

    def test_recover_rebuilds_derived_artifacts(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        original = (tmp_path / "idx" / "pa.rrqa").read_bytes()
        (tmp_path / "idx" / "pa.rrqa").write_bytes(b"garbage")
        loaded = load_index(tmp_path / "idx", recover=True)
        assert np.array_equal(loaded.PA, built_index.PA)
        # Healed in place, byte-identical (quantization is deterministic).
        assert (tmp_path / "idx" / "pa.rrqa").read_bytes() == original
        assert verify_index(tmp_path / "idx")["ok"]

    def test_recover_refuses_when_raw_damaged(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        target = tmp_path / "idx" / "weights.rrq"
        data = bytearray(target.read_bytes())
        data[50] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(IndexCorruptionError) as excinfo:
            load_index(tmp_path / "idx", recover=True)
        assert not excinfo.value.recoverable

    def test_corrupt_manifest_is_structured(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        (tmp_path / "idx" / "MANIFEST.json").write_text("{not json")
        with pytest.raises(IndexCorruptionError):
            load_index(tmp_path / "idx")


class TestSizeReport:
    def test_section32_overhead(self, built_index, tmp_path):
        """Approximate vectors cost well under 1/10 of the raw data."""
        save_index(tmp_path / "idx", built_index)
        report = index_size_report(tmp_path / "idx")
        assert 0 < report["approx_over_raw"] < 0.12
        assert report["pa.rrqa"] < report["products.rrq"] / 8
