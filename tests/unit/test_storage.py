"""Unit tests for repro.core.storage (index persistence)."""

import json

import numpy as np
import pytest

from repro.core.gir import GridIndexRRQ
from repro.core.storage import index_size_report, load_index, save_index
from repro.data.synthetic import clustered_products, uniform_weights
from repro.errors import DataValidationError


@pytest.fixture
def built_index():
    P = clustered_products(150, 5, seed=301)
    W = uniform_weights(120, 5, seed=302)
    return GridIndexRRQ(P, W, partitions=16, chunk=128, use_domin=False)


class TestRoundtrip:
    def test_save_load_identical_answers(self, built_index, tmp_path):
        manifest = save_index(tmp_path / "idx", built_index)
        assert all(v > 0 for v in manifest.values())
        loaded = load_index(tmp_path / "idx")
        assert loaded.partitions == built_index.partitions
        assert loaded.chunk == built_index.chunk
        assert loaded.use_domin == built_index.use_domin
        assert np.array_equal(loaded.PA, built_index.PA)
        assert np.array_equal(loaded.WA, built_index.WA)
        q = built_index.products[3]
        assert (loaded.reverse_topk(q, 10).weights
                == built_index.reverse_topk(q, 10).weights)
        assert (loaded.reverse_kranks(q, 5).entries
                == built_index.reverse_kranks(q, 5).entries)

    def test_boundaries_preserved_exactly(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        loaded = load_index(tmp_path / "idx")
        assert np.array_equal(loaded.grid.alpha_p, built_index.grid.alpha_p)
        assert np.array_equal(loaded.grid.alpha_w, built_index.grid.alpha_w)


class TestIntegrity:
    def test_missing_meta_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DataValidationError):
            load_index(tmp_path / "empty")

    def test_wrong_version_rejected(self, built_index, tmp_path):
        save_index(tmp_path / "idx", built_index)
        meta_path = tmp_path / "idx" / "grid.meta"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(DataValidationError):
            load_index(tmp_path / "idx")

    def test_stale_approx_vectors_rejected(self, built_index, tmp_path):
        """Swapping the raw data under the index must be detected."""
        from repro.data.io import save_products
        from repro.data.synthetic import clustered_products

        save_index(tmp_path / "idx", built_index)
        other = clustered_products(150, 5, seed=999)
        save_products(tmp_path / "idx" / "products.rrq", other)
        with pytest.raises(DataValidationError, match="stale or corrupted"):
            load_index(tmp_path / "idx")


class TestSizeReport:
    def test_section32_overhead(self, built_index, tmp_path):
        """Approximate vectors cost well under 1/10 of the raw data."""
        save_index(tmp_path / "idx", built_index)
        report = index_size_report(tmp_path / "idx")
        assert 0 < report["approx_over_raw"] < 0.12
        assert report["pa.rrqa"] < report["products.rrq"] / 8
