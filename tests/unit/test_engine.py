"""Unit tests for the RRQEngine facade and the top-level package API."""

import pytest

import repro
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.queries.engine import RRQEngine, available_methods, make_algorithm


@pytest.fixture
def data():
    return uniform_products(90, 3, seed=81), uniform_weights(70, 3, seed=82)


class TestEngine:
    def test_available_methods(self):
        methods = available_methods()
        for expected in ("gir", "sim", "bbr", "mpa", "naive",
                         "gir-adaptive", "gir-sparse"):
            assert expected in methods

    def test_default_method_is_gir(self, data):
        P, W = data
        engine = RRQEngine(P, W)
        assert engine.method == "gir"
        assert engine.algorithm.name == "GIR"

    def test_unknown_method(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            RRQEngine(P, W, method="btree")

    def test_method_case_insensitive(self, data):
        P, W = data
        assert RRQEngine(P, W, method="GIR").method == "gir"

    def test_kwargs_forwarded(self, data):
        P, W = data
        engine = RRQEngine(P, W, method="gir", partitions=8)
        assert engine.algorithm.partitions == 8

    @pytest.mark.parametrize("method", ["gir", "sim", "naive",
                                        "gir-adaptive", "gir-sparse"])
    def test_all_dual_methods_answer_both(self, data, method):
        P, W = data
        engine = RRQEngine(P, W, method=method)
        q = P[0]
        rtk = engine.reverse_topk(q, 5)
        rkr = engine.reverse_kranks(q, 5)
        assert rtk.k == 5
        assert len(rkr.entries) == 5

    def test_methods_agree_via_engine(self, data):
        P, W = data
        q = P[11]
        reference = RRQEngine(P, W, method="naive")
        expected_rtk = reference.reverse_topk(q, 8).weights
        expected_rkr = reference.reverse_kranks(q, 8).entries
        for method in ("gir", "sim", "gir-adaptive", "gir-sparse"):
            engine = RRQEngine(P, W, method=method)
            assert engine.reverse_topk(q, 8).weights == expected_rtk
            assert engine.reverse_kranks(q, 8).entries == expected_rkr
        assert RRQEngine(P, W, method="bbr").reverse_topk(q, 8).weights == expected_rtk
        assert RRQEngine(P, W, method="mpa").reverse_kranks(q, 8).entries == expected_rkr

    def test_make_algorithm(self, data):
        P, W = data
        alg = make_algorithm("sim", P, W)
        assert alg.name == "SIM"

    def test_properties(self, data):
        P, W = data
        engine = RRQEngine(P, W)
        assert engine.products is P
        assert engine.weights is W


class TestPackageAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_docstring(self):
        P = repro.uniform_products(size=100, dim=6, seed=1)
        W = repro.uniform_weights(size=100, dim=6, seed=2)
        engine = repro.RRQEngine(P, W, method="gir")
        rtk = engine.reverse_topk(P[0], k=10)
        rkr = engine.reverse_kranks(P[0], k=5)
        assert isinstance(rtk.sorted_indices(), list)
        assert len(rkr.entries) == 5
