"""Unit tests for the circuit breaker (repro.resilience.breaker).

All tests drive an injectable fake clock — no sleeps, no timing luck.
"""

import pytest

from repro.errors import InvalidParameterError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, threshold=3, reset=10.0):
    return CircuitBreaker(failure_threshold=threshold, reset_after_s=reset,
                          clock=clock)


class TestValidation:
    def test_bad_threshold(self, clock):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_bad_reset(self, clock):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(reset_after_s=-1.0, clock=clock)


class TestTransitions:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, clock):
        breaker = make(clock, threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self, clock):
        breaker = make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()      # this caller is the probe
        assert not breaker.allow()  # only one probe at a time

    def test_probe_success_closes(self, clock):
        breaker = make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # single failure re-opens from half-open
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_lost_probe_is_regranted_after_another_cooldown(self, clock):
        """A probe shed by admission control must not wedge the breaker."""
        breaker = make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # probe claimed... and never reported back
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # fresh probe granted


class TestSnapshot:
    def test_snapshot_counts_trips(self, clock):
        breaker = make(clock, threshold=2, reset=5.0)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["trips"] == 0
        breaker.record_failure()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["consecutive_failures"] == 2
        clock.advance(5.0)
        assert breaker.snapshot()["state"] == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.snapshot()["trips"] == 1
