"""Unit tests for repro.vectorized.parallel (batch fan-out)."""

import pytest

from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.vectorized.parallel import BatchStats, answer_batch, answer_batch_stats


@pytest.fixture(scope="module")
def setup():
    P = uniform_products(150, 4, seed=801)
    W = uniform_weights(120, 4, seed=802)
    gir = GridIndexRRQ(P, W, partitions=16)
    queries = [P[i] for i in (0, 10, 50, 99, 149)]
    return gir, queries


class TestSerialPath:
    def test_single_worker_rtk(self, setup):
        gir, queries = setup
        results = answer_batch(gir, queries, 8, "rtk", workers=1)
        for q, result in zip(queries, results):
            assert result.weights == gir.reverse_topk(q, 8).weights

    def test_single_query_short_circuits(self, setup):
        gir, queries = setup
        results = answer_batch(gir, queries[:1], 5, "rkr", workers=8)
        assert results[0].entries == gir.reverse_kranks(queries[0], 5).entries

    def test_empty_batch(self, setup):
        gir, _ = setup
        assert answer_batch(gir, [], 5, "rtk") == []

    def test_validation(self, setup):
        gir, queries = setup
        with pytest.raises(InvalidParameterError):
            answer_batch(gir, queries, 5, "nearest")
        with pytest.raises(InvalidParameterError):
            answer_batch(gir, queries, 5, "rtk", workers=0)


class TestParallelPath:
    def test_two_workers_match_serial_rtk(self, setup):
        gir, queries = setup
        parallel = answer_batch(gir, queries, 8, "rtk", workers=2)
        serial = answer_batch(gir, queries, 8, "rtk", workers=1)
        assert [r.weights for r in parallel] == [r.weights for r in serial]

    def test_two_workers_match_serial_rkr(self, setup):
        gir, queries = setup
        parallel = answer_batch(gir, queries, 6, "rkr", workers=2)
        serial = answer_batch(gir, queries, 6, "rkr", workers=1)
        assert [r.entries for r in parallel] == [r.entries for r in serial]

    def test_order_preserved(self, setup):
        gir, queries = setup
        results = answer_batch(gir, queries, 3, "rkr", workers=2)
        for q, result in zip(queries, results):
            assert result.entries == gir.reverse_kranks(q, 3).entries


class TestBatchStats:
    def test_default_workers_capped_at_batch_size(self, setup):
        gir, queries = setup
        results, stats = answer_batch_stats(gir, queries[:2], 5, "rtk")
        assert isinstance(stats, BatchStats)
        assert stats.batch_size == 2
        assert stats.requested_workers is None
        # Never more processes than queries, however many cores exist.
        assert stats.workers <= 2
        assert len(results) == 2

    def test_explicit_workers_capped_too(self, setup):
        gir, queries = setup
        results, stats = answer_batch_stats(gir, queries[:3], 5, "rtk",
                                            workers=64)
        assert stats.requested_workers == 64
        assert stats.workers == 3
        assert stats.parallel
        serial = answer_batch(gir, queries[:3], 5, "rtk", workers=1)
        assert [r.weights for r in results] == [r.weights for r in serial]

    def test_serial_path_reports_one_worker(self, setup):
        gir, queries = setup
        _, stats = answer_batch_stats(gir, queries, 5, "rkr", workers=1)
        assert stats.workers == 1
        assert not stats.parallel
        assert stats.elapsed_s >= 0.0

    def test_single_query_never_spawns_pool(self, setup):
        gir, queries = setup
        _, stats = answer_batch_stats(gir, queries[:1], 5, "rtk", workers=8)
        assert stats.workers == 1
        assert not stats.parallel

    def test_per_query_percentiles_serial(self, setup):
        gir, queries = setup
        _, stats = answer_batch_stats(gir, queries, 5, "rtk", workers=1)
        assert stats.per_query_p50_s > 0.0
        assert stats.per_query_p95_s >= stats.per_query_p50_s
        # Individual query times can't exceed the whole batch's wall clock.
        assert stats.per_query_p95_s <= stats.elapsed_s

    def test_per_query_percentiles_parallel(self, setup):
        gir, queries = setup
        _, stats = answer_batch_stats(gir, queries, 5, "rkr", workers=2)
        assert stats.parallel
        assert stats.per_query_p50_s > 0.0
        assert stats.per_query_p95_s >= stats.per_query_p50_s

    def test_per_query_percentiles_empty_batch(self, setup):
        gir, _ = setup
        _, stats = answer_batch_stats(gir, [], 5, "rtk")
        assert stats.per_query_p50_s == 0.0
        assert stats.per_query_p95_s == 0.0
