"""Unit tests for repro.queries.topk (forward query primitives)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.queries.topk import (
    all_ranks,
    in_top_k,
    kth_best_score,
    rank_of_point,
    rank_of_score,
    scores,
    top_k,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(10)
    return rng.random((60, 5)), rng.dirichlet(np.ones(5))


class TestScoresAndRanks:
    def test_scores_shape(self, data):
        P, w = data
        assert scores(P, w).shape == (60,)

    def test_rank_of_score_strict(self):
        assert rank_of_score([1.0, 2.0, 3.0], 2.0) == 1
        assert rank_of_score([1.0, 2.0, 3.0], 0.5) == 0
        assert rank_of_score([1.0, 2.0, 3.0], 10.0) == 3

    def test_rank_of_point_matches_manual(self, data):
        P, w = data
        q = P[7]
        expected = int(np.sum(P @ w < np.dot(w, q)))
        assert rank_of_point(P, w, q) == expected


class TestTopK:
    def test_figure1_topk(self, figure1_data):
        """Figure 1(a): Tom's top-2 = {p3, p2}, Jerry's = {p2, p5},
        Spike's = {p2, p3} (minimum preferable)."""
        P, W = figure1_data
        assert top_k(P, W[0], 2) == [2, 1]   # Tom: p3 then p2
        assert top_k(P, W[1], 2) == [1, 4]   # Jerry: p2 then p5
        # Figure 1(a) prints Spike's set as "p2,p3" but Figure 1(c)'s
        # rank list confirms p3 ranks 1st for Spike (0.15 < 0.21).
        assert top_k(P, W[2], 2) == [2, 1]

    def test_topk_ordering(self, data):
        P, w = data
        result = top_k(P, w, 10)
        s = P @ w
        assert list(s[result]) == sorted(s[result])
        assert len(result) == 10

    def test_k_larger_than_data(self, data):
        P, w = data
        assert len(top_k(P, w, 1000)) == 60

    def test_k_nonpositive_raises(self, data):
        P, w = data
        with pytest.raises(InvalidParameterError):
            top_k(P, w, 0)

    def test_tie_break_smaller_index(self):
        P = np.array([[1.0], [1.0], [0.5]])
        w = np.array([1.0])
        assert top_k(P, w, 2) == [2, 0]

    def test_kth_best_score(self, data):
        P, w = data
        s = np.sort(P @ w)
        assert kth_best_score(P, w, 3) == pytest.approx(s[2])
        with pytest.raises(InvalidParameterError):
            kth_best_score(P, w, 0)


class TestMembershipAndAllRanks:
    def test_in_top_k_definition(self, data):
        """Membership iff q would displace nothing above position k."""
        P, w = data
        q = P[3]
        r = rank_of_point(P, w, q)
        assert in_top_k(P, w, q, r + 1)
        if r > 0:
            assert not in_top_k(P, w, q, r)

    def test_all_ranks_matches_loop(self, data):
        P, _ = data
        rng = np.random.default_rng(11)
        W = rng.dirichlet(np.ones(5), size=30)
        q = rng.random(5)
        vec = all_ranks(P, W, q, chunk=7)
        for j in range(30):
            assert vec[j] == rank_of_point(P, W[j], q)
