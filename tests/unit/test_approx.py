"""Unit tests for repro.core.approx (quantizers / approximate vectors)."""

import numpy as np
import pytest

from repro.core.approx import Quantizer, bits_needed, code_dtype, quantize_dataset
from repro.errors import DataValidationError, InvalidParameterError


class TestHelpers:
    def test_code_dtype_sizes(self):
        assert code_dtype(4) == np.uint8
        assert code_dtype(256) == np.uint8
        assert code_dtype(257) == np.uint16
        assert code_dtype(70_000) == np.uint32

    def test_code_dtype_rejects_bad(self):
        with pytest.raises(InvalidParameterError):
            code_dtype(0)

    def test_bits_needed(self):
        assert bits_needed(2) == 1
        assert bits_needed(4) == 2
        assert bits_needed(32) == 5
        assert bits_needed(33) == 6
        assert bits_needed(1) == 1
        with pytest.raises(InvalidParameterError):
            bits_needed(-1)


class TestEqualWidthQuantizer:
    def test_paper_example(self):
        """Figure 4: p = (0.62, 0.15, 0.73) -> (2, 0, 2) with n = 4."""
        quant = Quantizer.equal_width(4, value_range=1.0)
        codes = quant.quantize(np.array([0.62, 0.15, 0.73]))
        assert codes.tolist() == [2, 0, 2]

    def test_paper_example_weights(self):
        """Figure 4: w = (0.12, 0.66, 0.22)... -> codes (0, 2, 0)."""
        quant = Quantizer.equal_width(4, value_range=1.0)
        codes = quant.quantize(np.array([0.12, 0.66, 0.30]))
        assert codes.tolist() == [0, 2, 1]

    def test_boundary_values(self):
        quant = Quantizer.equal_width(4, value_range=1.0)
        assert quant.quantize(np.array([0.0]))[0] == 0
        assert quant.quantize(np.array([0.25]))[0] == 1
        assert quant.quantize(np.array([1.0]))[0] == 3  # top clipped in

    def test_scaled_range(self):
        quant = Quantizer.equal_width(10, value_range=10_000.0)
        codes = quant.quantize(np.array([999.0, 1000.0, 9999.9]))
        assert codes.tolist() == [0, 1, 9]

    def test_out_of_range_raises(self):
        quant = Quantizer.equal_width(4, value_range=1.0)
        with pytest.raises(DataValidationError):
            quant.quantize(np.array([1.5]))
        with pytest.raises(DataValidationError):
            quant.quantize(np.array([-0.1]))

    def test_dtype_compact(self):
        quant = Quantizer.equal_width(32, value_range=1.0)
        codes = quant.quantize(np.linspace(0, 0.99, 100))
        assert codes.dtype == np.uint8


class TestGeneralQuantizer:
    def test_nonuniform_boundaries(self):
        quant = Quantizer(np.array([0.0, 0.1, 0.5, 1.0]))
        codes = quant.quantize(np.array([0.05, 0.3, 0.9]))
        assert codes.tolist() == [0, 1, 2]

    def test_rejects_bad_boundaries(self):
        with pytest.raises(InvalidParameterError):
            Quantizer(np.array([0.0, 0.0, 1.0]))
        with pytest.raises(InvalidParameterError):
            Quantizer(np.array([0.5]))

    def test_cell_bounds_cover_values(self):
        quant = Quantizer(np.array([0.0, 0.3, 0.6, 1.0]))
        vals = np.array([0.1, 0.45, 0.99])
        codes = quant.quantize(vals)
        assert np.all(quant.cell_low(codes) <= vals)
        assert np.all(vals <= quant.cell_high(codes))

    def test_reconstruct_midpoint(self):
        quant = Quantizer(np.array([0.0, 0.5, 1.0]))
        rec = quant.reconstruct(np.array([0, 1]))
        assert np.allclose(rec, [0.25, 0.75])

    def test_reconstruction_error_bounded_by_cell(self):
        rng = np.random.default_rng(2)
        quant = Quantizer.equal_width(32, value_range=1.0)
        vals = rng.random(500)
        rec = quant.reconstruct(quant.quantize(vals))
        assert np.max(np.abs(rec - vals)) <= 0.5 / 32 + 1e-12


class TestQuantizeDataset:
    def test_matrix_shape_preserved(self):
        rng = np.random.default_rng(3)
        data = rng.random((20, 7))
        quant = Quantizer.equal_width(16, value_range=1.0)
        codes = quantize_dataset(data, quant)
        assert codes.shape == (20, 7)

    def test_rejects_non_matrix(self):
        quant = Quantizer.equal_width(4, value_range=1.0)
        with pytest.raises(InvalidParameterError):
            quantize_dataset(np.zeros(5), quant)
