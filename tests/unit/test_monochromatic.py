"""Unit tests for the 2-d monochromatic reverse top-k query."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.queries.monochromatic import (
    MonochromaticResult,
    _rank_at,
    monochromatic_reverse_topk,
)


def brute_force_check(P, q, k, result, samples=None):
    """Membership at sampled lambdas must match exact rank evaluation."""
    if samples is None:
        samples = [Fraction(i, 37) for i in range(38)]
    # Also probe interval endpoints and near-endpoints.
    for lo, hi in result.intervals:
        samples.extend([lo, hi, (lo + hi) / 2])
    for lam in samples:
        if lam < 0 or lam > 1:
            continue
        expected = _rank_at(P, q, lam) < k
        got = any(lo <= lam <= hi for lo, hi in result.intervals)
        assert got == expected, f"lam={lam}: got {got}, expected {expected}"


class TestBasics:
    def test_rejects_wrong_dim(self):
        with pytest.raises(DimensionMismatchError):
            monochromatic_reverse_topk(np.ones((3, 3)), np.ones(3), 1)

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            monochromatic_reverse_topk(np.ones((3, 2)), np.ones(2), 0)

    def test_dominant_product_qualifies_everywhere(self):
        P = np.array([[0.5, 0.5], [0.9, 0.9], [0.7, 0.2]])
        q = np.array([0.1, 0.1])  # beats everything for every lambda
        result = monochromatic_reverse_topk(P, q, 1)
        assert result.intervals == ((Fraction(0), Fraction(1)),)
        assert result.total_measure() == 1

    def test_dominated_product_never_qualifies(self):
        P = np.array([[0.1, 0.1], [0.2, 0.2]])
        q = np.array([0.9, 0.9])
        result = monochromatic_reverse_topk(P, q, 2)
        assert result.is_empty

    def test_duplicates_of_q_ignored(self):
        q = np.array([0.5, 0.5])
        P = np.vstack([np.tile(q, (5, 1)), [[0.1, 0.9]]])
        result = monochromatic_reverse_topk(P, q, 1)
        # Only one product can beat q, and only for some lambdas.
        brute_force_check(P, q, 1, result)

    def test_figure1_phones(self, figure1_data):
        """Cross-check the paper's cell phones against exact evaluation."""
        P, _ = figure1_data
        for qi in range(len(P)):
            for k in (1, 2, 3):
                result = monochromatic_reverse_topk(P, P[qi], k)
                brute_force_check(P, P[qi], k, result)


class TestSweepCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(3, 40))
        P = rng.random((m, 2))
        q = P[int(rng.integers(0, m))] if seed % 2 else rng.random(2)
        k = int(rng.integers(1, m))
        result = monochromatic_reverse_topk(P, q, k)
        brute_force_check(P, q, k, result)

    def test_coarse_grid_ties(self):
        """Many exact crossings and ties at the same lambda."""
        vals = [0.0, 0.25, 0.5, 0.75, 1.0]
        P = np.array([[a, b] for a in vals for b in vals])
        q = np.array([0.5, 0.5])
        for k in (1, 3, 10):
            result = monochromatic_reverse_topk(P, q, k)
            brute_force_check(P, q, k, result)

    def test_intervals_disjoint_and_sorted(self):
        rng = np.random.default_rng(99)
        P = rng.random((60, 2))
        q = rng.random(2)
        result = monochromatic_reverse_topk(P, q, 5)
        for (lo1, hi1), (lo2, hi2) in zip(result.intervals,
                                          result.intervals[1:]):
            assert lo1 <= hi1
            assert hi1 < lo2

    def test_monotone_in_k(self):
        """Growing k grows the qualifying measure."""
        rng = np.random.default_rng(123)
        P = rng.random((50, 2))
        q = P[0]
        measures = [
            monochromatic_reverse_topk(P, q, k).total_measure()
            for k in (1, 5, 20, 50)
        ]
        assert all(a <= b for a, b in zip(measures, measures[1:]))
        assert measures[-1] == 1  # k = m: always in the top-m

    def test_contains_helper(self):
        P = np.array([[0.9, 0.1], [0.1, 0.9]])
        q = np.array([0.5, 0.5])
        result = monochromatic_reverse_topk(P, q, 1)
        # q is the best product only in the middle lambda range.
        assert result.contains(0.5)
        assert not result.contains(0.001) or not result.contains(0.999)


class TestConsistencyWithBichromatic:
    def test_interval_membership_matches_rtk(self):
        """Sampling W from a qualifying interval must satisfy the
        bichromatic query, and vice versa."""
        from repro.algorithms.naive import NaiveRRQ
        from repro.data.datasets import ProductSet, WeightSet

        rng = np.random.default_rng(7)
        P = rng.random((80, 2))
        q = P[3]
        k = 8
        mono = monochromatic_reverse_topk(P, q, k)
        lams = rng.random(50)
        W = np.column_stack([lams, 1.0 - lams])
        naive = NaiveRRQ(ProductSet(P, value_range=1.0), WeightSet(W))
        bichromatic = naive.reverse_topk(q, k).weights
        for j, lam in enumerate(lams):
            assert (j in bichromatic) == mono.contains(float(lam))
