"""Unit tests for the micro-batching scheduler (repro.service.scheduler).

The deterministic trick used throughout: construct the scheduler with
``auto_start=False``, stage requests while the dispatcher is parked, then
``start()`` — the first ``get`` plus a non-empty queue guarantees exactly
one coalesced batch, no timing luck required.
"""

import threading

import pytest

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.queries.engine import RRQEngine
from repro.service.limits import ServiceLimits
from repro.service.scheduler import MicroBatchScheduler


@pytest.fixture(scope="module")
def engine():
    from repro.data.synthetic import uniform_products, uniform_weights

    P = uniform_products(140, 4, seed=901)
    W = uniform_weights(110, 4, seed=902)
    return RRQEngine(P, W, method="gir")


def make_scheduler(engine, **kwargs):
    kwargs.setdefault("auto_start", False)
    return MicroBatchScheduler(engine, **kwargs)


class TestCoalescing:
    def test_staged_requests_form_one_batch(self, engine):
        scheduler = make_scheduler(
            engine, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16),
        )
        queries = [engine.products[i] for i in (0, 7, 23, 41, 99)]
        futures = [scheduler.submit(q, "rtk", 8) for q in queries[:3]]
        futures += [scheduler.submit(q, "rkr", 5) for q in queries[3:]]
        scheduler.start()
        try:
            results = [f.result(timeout=10) for f in futures]
        finally:
            scheduler.close()

        for q, result in zip(queries[:3], results[:3]):
            assert result.weights == engine.reverse_topk(q, 8).weights
        for q, result in zip(queries[3:], results[3:]):
            assert result.entries == engine.reverse_kranks(q, 5).entries

        snap = scheduler.metrics.snapshot()
        assert snap["batches"]["total"] == 1
        assert snap["batches"]["coalesced"] == 1
        assert snap["batches"]["max_size"] == 5

    def test_batch_respects_max_batch(self, engine):
        scheduler = make_scheduler(
            engine, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=2),
        )
        futures = [scheduler.submit(engine.products[i], "rtk", 5)
                   for i in range(5)]
        scheduler.start()
        try:
            for f in futures:
                f.result(timeout=10)
        finally:
            scheduler.close()
        snap = scheduler.metrics.snapshot()
        assert snap["batches"]["max_size"] <= 2
        assert snap["batches"]["batched_requests"] == 5

    def test_zero_window_disables_coalescing(self, engine):
        scheduler = make_scheduler(engine, batch_window_s=0.0)
        scheduler.start()
        try:
            for i in (3, 4, 5):
                result = scheduler.answer(engine.products[i], "rtk", 6)
                assert result.weights == engine.reverse_topk(
                    engine.products[i], 6).weights
        finally:
            scheduler.close()
        snap = scheduler.metrics.snapshot()
        assert snap["batches"]["total"] == 3
        assert snap["batches"]["coalesced"] == 0
        assert snap["batches"]["mean_size"] == 1.0

    def test_batched_equals_single_path(self, engine):
        """The all_ranks_multi path and the engine path agree exactly."""
        q = engine.products[17]
        coalescing = make_scheduler(engine, batch_window_s=0.1)
        futures = [coalescing.submit(q, "rkr", 4),
                   coalescing.submit(engine.products[2], "rkr", 4)]
        coalescing.start()
        try:
            batched = futures[0].result(timeout=10)
        finally:
            coalescing.close()
        assert batched.entries == engine.reverse_kranks(q, 4).entries


class TestKernelPath:
    def test_kernel_batches_match_engine_and_feed_metrics(self, engine):
        scheduler = make_scheduler(
            engine, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16),
        )
        assert scheduler.use_kernel
        queries = [engine.products[i] for i in (0, 7, 23, 41)]
        futures = [scheduler.submit(q, "rtk", 8) for q in queries[:2]]
        futures += [scheduler.submit(q, "rkr", 5) for q in queries[2:]]
        scheduler.start()
        try:
            results = [f.result(timeout=10) for f in futures]
        finally:
            scheduler.close()
        for q, result in zip(queries[:2], results[:2]):
            assert result.weights == engine.reverse_topk(q, 8).weights
        for q, result in zip(queries[2:], results[2:]):
            assert result.entries == engine.reverse_kranks(q, 5).entries
        kernel = scheduler.metrics.snapshot()["kernel"]
        assert kernel["queries"] == 4
        assert kernel["pairs"]["total"] + kernel["pairs"]["domin_skipped"] > 0
        assert 0.0 <= kernel["filter_rate"] <= 1.0
        assert kernel["stage_s"]["filter"] >= 0.0

    def test_coalesced_batch_dispatches_fused(self, engine):
        """A coalesced batch runs one fused kernel call per query kind
        (not one per query), and the answers still match the engine."""
        scheduler = make_scheduler(
            engine, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16),
        )
        queries = [engine.products[i] for i in (3, 11, 29, 57, 88)]
        futures = [scheduler.submit(q, "rtk", 6) for q in queries[:3]]
        futures += [scheduler.submit(q, "rkr", 4) for q in queries[3:]]
        scheduler.start()
        try:
            results = [f.result(timeout=10) for f in futures]
        finally:
            scheduler.close()
        for q, result in zip(queries[:3], results[:3]):
            assert result.weights == engine.reverse_topk(q, 6).weights
        for q, result in zip(queries[3:], results[3:]):
            assert result.entries == engine.reverse_kranks(q, 4).entries
        fused = scheduler.metrics.snapshot()["kernel"]["fused"]
        assert fused["queries"] == 5
        assert fused["batches"] == 2  # one rtk group + one rkr group

    def test_use_kernel_false_keeps_dense_sweep(self, engine):
        scheduler = make_scheduler(
            engine, batch_window_s=0.1, use_kernel=False,
            limits=ServiceLimits(max_batch=16),
        )
        futures = [scheduler.submit(engine.products[i], "rtk", 6)
                   for i in (1, 2, 3)]
        scheduler.start()
        try:
            results = [f.result(timeout=10) for f in futures]
        finally:
            scheduler.close()
        for i, result in zip((1, 2, 3), results):
            assert result.weights == engine.reverse_topk(
                engine.products[i], 6).weights
        assert scheduler.metrics.snapshot()["kernel"]["queries"] == 0

    def test_kernel_and_dense_payloads_identical(self, engine):
        """The acceptance bar: flipping the batch path never changes an
        HTTP response payload."""
        from repro.service.server import encode_result

        queries = [engine.products[i] for i in (5, 31, 77)]
        payloads = {}
        for use_kernel in (True, False):
            scheduler = make_scheduler(
                engine, batch_window_s=0.1, use_kernel=use_kernel,
                limits=ServiceLimits(max_batch=16),
            )
            futures = [scheduler.submit(q, "rtk", 7) for q in queries]
            futures += [scheduler.submit(q, "rkr", 4) for q in queries]
            scheduler.start()
            try:
                answers = [f.result(timeout=10) for f in futures]
            finally:
                scheduler.close()
            payloads[use_kernel] = (
                [encode_result(a, "rtk") for a in answers[:3]]
                + [encode_result(a, "rkr") for a in answers[3:]]
            )
        assert payloads[True] == payloads[False]

    def test_single_request_stays_on_engine_path(self, engine):
        scheduler = make_scheduler(engine, batch_window_s=0.0)
        scheduler.start()
        try:
            scheduler.answer(engine.products[9], "rtk", 5)
        finally:
            scheduler.close()
        # Batch of one takes the per-query engine, not the kernel.
        assert scheduler.metrics.snapshot()["kernel"]["queries"] == 0


class TestDeadlines:
    def test_expired_deadline_rejected_at_dispatch(self, engine):
        scheduler = make_scheduler(engine, batch_window_s=0.0)
        future = scheduler.submit(engine.products[0], "rtk", 5, deadline_s=0.0)
        scheduler.start()
        try:
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10)
        finally:
            scheduler.close()
        snap = scheduler.metrics.snapshot()
        assert snap["requests"]["rejected_deadline"] == 1

    def test_answer_times_out_while_parked(self, engine):
        """answer() enforces the deadline even if dispatch never happens."""
        scheduler = make_scheduler(engine, batch_window_s=0.0)
        with pytest.raises(DeadlineExceededError):
            scheduler.answer(engine.products[0], "rtk", 5, deadline_s=0.05)
        scheduler.close()

    def test_unbounded_deadline_allowed(self, engine):
        scheduler = make_scheduler(
            engine, batch_window_s=0.0,
            limits=ServiceLimits(default_deadline_s=None),
        )
        scheduler.start()
        try:
            result = scheduler.answer(engine.products[1], "rtk", 5)
            assert result.k == 5
        finally:
            scheduler.close()


class TestOverflow:
    def test_full_queue_rejects_submit(self, engine):
        scheduler = make_scheduler(
            engine, limits=ServiceLimits(max_queue_depth=4),
        )
        for i in range(4):
            scheduler.submit(engine.products[i], "rtk", 5)
        with pytest.raises(ServiceOverloadError):
            scheduler.submit(engine.products[4], "rtk", 5)
        assert scheduler.queue_depth() == 4
        snap = scheduler.metrics.snapshot()
        assert snap["requests"]["rejected_overload"] == 1
        scheduler.close()

    def test_close_fails_parked_requests_with_503(self, engine):
        """With the dispatcher parked, shutdown sheds the queue as 503s."""
        scheduler = make_scheduler(engine)
        future = scheduler.submit(engine.products[0], "rtk", 5)
        scheduler.close()
        with pytest.raises(ServiceUnavailableError):
            future.result(timeout=1)
        snap = scheduler.metrics.snapshot()
        assert snap["requests"]["rejected_unavailable"] == 1


class TestShutdownDrain:
    def test_close_drains_admitted_requests(self, engine):
        """Requests admitted before close() are answered, not dropped."""
        scheduler = make_scheduler(engine, batch_window_s=0.02)
        futures = [scheduler.submit(engine.products[i], "rtk", 6)
                   for i in range(4)]
        scheduler.start()
        scheduler.close(drain=True)
        for i, future in enumerate(futures):
            result = future.result(timeout=1)
            assert result.weights == engine.reverse_topk(
                engine.products[i], 6).weights

    def test_submit_after_close_is_503(self, engine):
        scheduler = make_scheduler(engine)
        scheduler.start()
        scheduler.close()
        with pytest.raises(ServiceUnavailableError):
            scheduler.submit(engine.products[0], "rtk", 5)

    def test_close_without_drain_sheds_queue(self, engine):
        scheduler = make_scheduler(engine)
        futures = [scheduler.submit(engine.products[i], "rtk", 5)
                   for i in range(3)]
        scheduler.close(drain=False)
        for future in futures:
            with pytest.raises(ServiceUnavailableError):
                future.result(timeout=1)


class TestValidation:
    def test_bad_kind_and_k(self, engine):
        scheduler = make_scheduler(engine)
        with pytest.raises(InvalidParameterError):
            scheduler.submit(engine.products[0], "nearest", 5)
        with pytest.raises(InvalidParameterError):
            scheduler.submit(engine.products[0], "rtk", 0)
        with pytest.raises(InvalidParameterError):
            MicroBatchScheduler(engine, batch_window_s=-1.0, auto_start=False)
        scheduler.close()

    def test_concurrent_submitters_all_answered(self, engine):
        scheduler = make_scheduler(engine, batch_window_s=0.02)
        scheduler.start()
        results = {}
        barrier = threading.Barrier(8)

        def hit(i):
            barrier.wait()
            results[i] = scheduler.answer(engine.products[i], "rtk", 7)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        scheduler.close()
        for i in range(8):
            assert results[i].weights == engine.reverse_topk(
                engine.products[i], 7).weights


class TestSnapshotBatchPath:
    """Coalesced batches over an MVCC engine pin one snapshot: no engine
    lock for the whole batch, answers byte-identical to the engine."""

    @pytest.fixture
    def durable(self, tmp_path):
        import numpy as np

        from repro.durability import DurableDynamicRRQ

        rng = np.random.default_rng(911)
        engine = DurableDynamicRRQ(tmp_path / "db", dim=4,
                                   backend="segmented", seal_every=16,
                                   auto_compact=False, fsync="never")
        for _ in range(60):
            engine.insert_product(rng.uniform(0, 0.9, 4))
        for _ in range(40):
            w = rng.uniform(0.1, 1.0, 4)
            engine.insert_weight(w / w.sum())
        yield engine
        engine.close()

    def test_batch_pins_one_snapshot_and_matches_engine(self, durable):
        scheduler = make_scheduler(
            durable, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16),
        )
        assert scheduler._use_snapshot_kernel
        queries = [durable.products[i] for i in (0, 7, 23, 41)]
        futures = [scheduler.submit(q, "rtk", 8) for q in queries[:2]]
        futures += [scheduler.submit(q, "rkr", 5) for q in queries[2:]]
        scheduler.start()
        try:
            results = [f.result(timeout=10) for f in futures]
        finally:
            scheduler.close()
        for q, result in zip(queries[:2], results[:2]):
            assert result.weights == durable.reverse_topk(q, 8).weights
        for q, result in zip(queries[2:], results[2:]):
            assert result.entries == durable.reverse_kranks(q, 5).entries
        # The densified snapshot kernel answered the batch.
        assert scheduler.metrics.snapshot()["kernel"]["queries"] == 4
        assert scheduler._snap_kernel is not None

    def test_kernel_cache_rebuilds_only_when_the_store_moves(self, durable):
        import numpy as np

        scheduler = make_scheduler(
            durable, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16),
        )
        queries = [durable.products[i] for i in (1, 5, 9)]

        def run_batch():
            futures = [scheduler.submit(q, "rtk", 6) for q in queries]
            scheduler.start()
            return [f.result(timeout=10) for f in futures]

        run_batch()
        first = scheduler._snap_kernel
        assert first is not None
        # Same store generation -> the cached kernel is reused.
        futures = [scheduler.submit(q, "rkr", 4) for q in queries]
        [f.result(timeout=10) for f in futures]
        assert scheduler._snap_kernel is first

        durable.insert_product(np.full(4, 0.42))  # writer never blocked
        futures = [scheduler.submit(q, "rtk", 6) for q in queries]
        results = [f.result(timeout=10) for f in futures]
        scheduler.close()
        assert scheduler._snap_kernel is not first  # generation moved
        for q, result in zip(queries, results):
            assert result.weights == durable.reverse_topk(q, 6).weights

    def test_single_request_uses_snapshot_without_kernel(self, durable):
        scheduler = make_scheduler(durable, batch_window_s=0.0)
        scheduler.start()
        try:
            got = scheduler.answer(durable.products[3], "rtk", 5)
        finally:
            scheduler.close()
        assert got.weights == durable.reverse_topk(
            durable.products[3], 5).weights
        assert scheduler.metrics.snapshot()["kernel"]["queries"] == 0


class TestKernelHotSwap:
    """The auto-tuner's flip: one reference assignment swaps the static
    batch-path kernel, and the persisted cache must never hand back a
    kernel whose grid config no longer matches the engine's."""

    def _run_batch(self, scheduler, queries, k=6):
        futures = [scheduler.submit(q, "rtk", k) for q in queries]
        scheduler.start()
        return [f.result(timeout=10) for f in futures]

    def test_swap_kernel_flips_the_batch_path(self, engine):
        from repro.tuning import CandidateConfig, build_tuned_kernel

        scheduler = make_scheduler(
            engine, batch_window_s=0.1, limits=ServiceLimits(max_batch=8))
        queries = [engine.products[i] for i in (0, 3, 9)]
        self._run_batch(scheduler, queries)
        old = scheduler._get_kernel()
        tuned = build_tuned_kernel(
            engine.products, engine.weights,
            CandidateConfig(partitions=16, boundaries="quantile"))
        scheduler.swap_kernel(tuned, CandidateConfig(
            partitions=16, boundaries="quantile"))
        assert scheduler._get_kernel() is tuned is not old
        futures = [scheduler.submit(q, "rtk", 6) for q in queries]
        results = [f.result(timeout=10) for f in futures]
        scheduler.close()
        for q, result in zip(queries, results):
            assert result.weights == engine.reverse_topk(q, 6).weights

    def test_swap_persists_config_store_and_pointer(self, engine,
                                                    tmp_path):
        from repro.tuning import CandidateConfig, build_tuned_kernel
        from repro.vectorized.kernelstore import (
            config_digest_of,
            read_tuned_pointer,
        )

        config = CandidateConfig(partitions=16)
        tuned = build_tuned_kernel(engine.products, engine.weights, config)
        scheduler = make_scheduler(engine, batch_window_s=0.0,
                                   kernel_cache_dir=str(tmp_path))
        scheduler.swap_kernel(tuned, config)
        scheduler.close()
        pointer = read_tuned_pointer(tmp_path)
        assert pointer["digest"] == config_digest_of(tuned)
        assert pointer["config"]["partitions"] == 16
        assert (tmp_path / f"cfg-{pointer['digest'][:12]}").is_dir()
        # A fresh scheduler warm-starts straight into the tuned config.
        again = make_scheduler(engine, batch_window_s=0.0,
                               kernel_cache_dir=str(tmp_path))
        loaded = again._get_kernel()
        again.close()
        assert loaded.partitions == 16
        assert config_digest_of(loaded) == pointer["digest"]

    def test_stale_cache_refused_after_config_change(self, tmp_path):
        """Regression: the static/ cache recorded layout but not grid
        config, so restarting with different partitions silently served
        a kernel quantized under the old boundaries."""
        from repro.data.synthetic import uniform_products, uniform_weights
        from repro.vectorized.kernelstore import store_config_digest

        P = uniform_products(60, 3, seed=921)
        W = uniform_weights(40, 3, seed=922)
        coarse = RRQEngine(P, W, method="gir", partitions=8)
        scheduler = make_scheduler(coarse, batch_window_s=0.0,
                                   kernel_cache_dir=str(tmp_path))
        assert scheduler._get_kernel() is not None  # builds + persists
        scheduler.close()
        cached_digest = store_config_digest(tmp_path / "static")
        assert cached_digest is not None

        fine = RRQEngine(P, W, method="gir", partitions=32)
        scheduler = make_scheduler(fine, batch_window_s=0.0,
                                   kernel_cache_dir=str(tmp_path))
        assert scheduler._load_cached_static_kernel() is None  # refused
        kernel = scheduler._get_kernel()                       # rebuilt
        scheduler.close()
        assert kernel.partitions == 32
        assert store_config_digest(tmp_path / "static") != cached_digest

        # Matching config -> the cache is honored again.
        same = RRQEngine(P, W, method="gir", partitions=32)
        scheduler = make_scheduler(same, batch_window_s=0.0,
                                   kernel_cache_dir=str(tmp_path))
        assert scheduler._load_cached_static_kernel() is not None
        scheduler.close()


class TestSnapshotTuning:
    """set_snapshot_tuning retargets the MVCC snapshot-kernel cache at
    the tuned config (the durable half of the tuner's hot-swap)."""

    durable = TestSnapshotBatchPath.durable

    def test_tuning_change_rebuilds_snapshot_kernel(self, durable):
        from repro.tuning import CandidateConfig

        scheduler = make_scheduler(
            durable, batch_window_s=0.1,
            limits=ServiceLimits(max_batch=16))
        queries = [durable.products[i] for i in (2, 11, 30)]
        futures = [scheduler.submit(q, "rtk", 6) for q in queries]
        scheduler.start()
        [f.result(timeout=10) for f in futures]
        default_kernel = scheduler._snap_kernel
        assert default_kernel is not None
        assert default_kernel.variant is None

        config = CandidateConfig(partitions=16, boundaries="quantile")
        scheduler.set_snapshot_tuning(config)
        futures = [scheduler.submit(q, "rtk", 6) for q in queries]
        results = [f.result(timeout=10) for f in futures]
        scheduler.close()
        tuned_kernel = scheduler._snap_kernel
        assert tuned_kernel is not default_kernel
        assert tuned_kernel.variant == config.short()
        for q, result in zip(queries, results):
            assert result.weights == durable.reverse_topk(q, 6).weights
