"""Unit tests for aggregate reverse rank queries (repro.ext.aggregate)."""

import numpy as np
import pytest

from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import clustered_products, uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.ext.aggregate import (
    AGGREGATIONS,
    AggregateGridIndexRKR,
    aggregate_reverse_kranks_naive,
)
from repro.stats.counters import OpCounter


@pytest.fixture
def data():
    P = uniform_products(180, 4, seed=401)
    W = uniform_weights(150, 4, seed=402)
    return P, W


class TestNaiveOracle:
    def test_single_member_equals_plain_rkr(self, data):
        """A bundle of one product is exactly the ordinary RKR query."""
        from repro.algorithms.naive import NaiveRRQ

        P, W = data
        q = P[5]
        agg = aggregate_reverse_kranks_naive(P, W, [q], 8)
        plain = NaiveRRQ(P, W).reverse_kranks(q, 8)
        assert agg.entries == plain.entries

    def test_sum_is_the_sum_of_member_ranks(self, data):
        P, W = data
        from repro.vectorized.batch import BatchOracle

        oracle = BatchOracle(P, W)
        bundle = [P[1], P[2]]
        result = aggregate_reverse_kranks_naive(P, W, bundle, 5, "sum")
        r1 = oracle.ranks(P[1])
        r2 = oracle.ranks(P[2])
        for agg_rank, j in result.entries:
            assert agg_rank == int(r1[j] + r2[j])

    def test_max_aggregation(self, data):
        P, W = data
        from repro.vectorized.batch import BatchOracle

        oracle = BatchOracle(P, W)
        bundle = [P[1], P[2], P[3]]
        result = aggregate_reverse_kranks_naive(P, W, bundle, 5, "max")
        ranks = np.vstack([oracle.ranks(q) for q in bundle])
        for agg_rank, j in result.entries:
            assert agg_rank == int(ranks[:, j].max())

    def test_validation(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            aggregate_reverse_kranks_naive(P, W, [], 5)
        with pytest.raises(InvalidParameterError):
            aggregate_reverse_kranks_naive(P, W, [P[0]], 0)
        with pytest.raises(InvalidParameterError):
            aggregate_reverse_kranks_naive(P, W, [P[0]], 5, "median")


class TestGridAccelerated:
    @pytest.mark.parametrize("aggregation", AGGREGATIONS)
    def test_matches_oracle(self, data, aggregation):
        P, W = data
        bundle = [P[0], P[42], P[99], P[150]]
        for k in (1, 6, 30):
            expected = aggregate_reverse_kranks_naive(
                P, W, bundle, k, aggregation
            )
            got = AggregateGridIndexRKR(P, W).query(bundle, k, aggregation)
            assert got.entries == expected.entries

    def test_matches_oracle_clustered(self):
        P = clustered_products(150, 5, seed=403)
        W = uniform_weights(120, 5, seed=404)
        bundle = [P[3], P[77]]
        expected = aggregate_reverse_kranks_naive(P, W, bundle, 9)
        got = AggregateGridIndexRKR(P, W).query(bundle, 9)
        assert got.entries == expected.entries

    def test_reuses_existing_gir(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        agg = AggregateGridIndexRKR(P, W, gir=gir)
        assert agg.gir is gir
        result = agg.query([P[0]], 5)
        assert result.entries == gir.reverse_kranks(P[0], 5).entries

    def test_budget_pruning_saves_work(self, data):
        """The k-th-best threshold must reduce refinement vs k=|W|."""
        P, W = data
        bundle = [P[0], P[1], P[2]]
        solver = AggregateGridIndexRKR(P, W)
        c_small, c_all = OpCounter(), OpCounter()
        solver.query(bundle, 1, counter=c_small)
        solver.query(bundle, W.size, counter=c_all)
        assert c_small.pairwise < c_all.pairwise

    def test_external_bundle_points(self, data):
        P, W = data
        rng = np.random.default_rng(405)
        bundle = [rng.random(4) * 9000 for _ in range(3)]
        expected = aggregate_reverse_kranks_naive(P, W, bundle, 7)
        got = AggregateGridIndexRKR(P, W).query(bundle, 7)
        assert got.entries == expected.entries

    def test_k_exceeding_w(self, data):
        P, W = data
        result = AggregateGridIndexRKR(P, W).query([P[0]], W.size + 10)
        assert len(result.entries) == W.size
