"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DEFAULT_VALUE_RANGE,
    anticorrelated_products,
    clustered_products,
    clustered_weights,
    exponential_products,
    exponential_weights,
    generate_products,
    generate_weights,
    normal_products,
    normal_weights,
    uniform_products,
    uniform_weights,
)
from repro.errors import InvalidParameterError


class TestProductGenerators:
    @pytest.mark.parametrize("gen", [
        uniform_products, clustered_products, anticorrelated_products,
        normal_products, exponential_products,
    ])
    def test_shapes_and_range(self, gen):
        ps = gen(200, 5, seed=3)
        assert ps.size == 200
        assert ps.dim == 5
        assert ps.value_range == DEFAULT_VALUE_RANGE
        assert ps.values.min() >= 0
        assert ps.values.max() < DEFAULT_VALUE_RANGE

    def test_determinism_with_seed(self):
        a = uniform_products(50, 3, seed=9)
        b = uniform_products(50, 3, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = uniform_products(50, 3, seed=1)
        b = uniform_products(50, 3, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(5)
        ps = uniform_products(10, 2, seed=rng)
        assert ps.size == 10

    def test_clustered_is_clumpy(self):
        # Clustered data should have smaller per-coordinate spread around
        # cluster centres than uniform data: compare nearest-neighbour
        # distances on a small sample.
        cl = clustered_products(300, 3, seed=4, num_clusters=4, sigma=0.01)
        un = uniform_products(300, 3, seed=4)

        def mean_nn(values):
            diff = values[:, None, :] - values[None, :, :]
            dist = np.sqrt((diff ** 2).sum(-1))
            np.fill_diagonal(dist, np.inf)
            return dist.min(axis=1).mean()

        assert mean_nn(cl.values) < mean_nn(un.values)

    def test_anticorrelated_sums_concentrate(self):
        ac = anticorrelated_products(500, 4, seed=6)
        un = uniform_products(500, 4, seed=6)
        # Coordinate totals of AC data vary less than those of UN data.
        assert np.std(ac.values.sum(axis=1)) < np.std(un.values.sum(axis=1))

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            uniform_products(0, 3)
        with pytest.raises(InvalidParameterError):
            uniform_products(10, 0)
        with pytest.raises(InvalidParameterError):
            clustered_products(10, 3, num_clusters=0)
        with pytest.raises(InvalidParameterError):
            exponential_products(10, 3, lam=0.0)


class TestWeightGenerators:
    @pytest.mark.parametrize("gen", [
        uniform_weights, clustered_weights, normal_weights, exponential_weights,
    ])
    def test_simplex_constraint(self, gen):
        ws = gen(150, 6, seed=8)
        assert ws.size == 150
        assert ws.dim == 6
        assert np.allclose(ws.values.sum(axis=1), 1.0)
        assert ws.values.min() >= 0

    def test_exponential_weights_rejects_bad_lambda(self):
        with pytest.raises(InvalidParameterError):
            exponential_weights(5, 3, lam=-1.0)


class TestDispatch:
    @pytest.mark.parametrize("code", ["UN", "CL", "AC", "NORMAL", "EXP", "un"])
    def test_product_codes(self, code):
        ps = generate_products(code, 30, 4, seed=1)
        assert ps.size == 30

    @pytest.mark.parametrize("code", ["UN", "CL", "NORMAL", "EXP"])
    def test_weight_codes(self, code):
        ws = generate_weights(code, 30, 4, seed=1)
        assert ws.size == 30

    def test_unknown_codes_raise(self):
        with pytest.raises(InvalidParameterError):
            generate_products("ZIPF", 10, 3)
        with pytest.raises(InvalidParameterError):
            generate_weights("AC", 10, 3)  # AC is product-only
