"""Unit tests for repro.core.grid (the Grid-index)."""

import numpy as np
import pytest

from repro.core.grid import DEFAULT_PARTITIONS, GridIndex
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_equal_width_boundaries(self):
        grid = GridIndex.equal_width(4, value_range=1.0)
        assert grid.partitions == 4
        assert np.allclose(grid.alpha_p, [0, 0.25, 0.5, 0.75, 1.0])
        assert np.allclose(grid.alpha_w, [0, 0.25, 0.5, 0.75, 1.0])

    def test_paper_example_grid_values(self):
        """Section 3.1: Grid[2][0] = 0.5*0 and Grid[3][1] = 0.75*0.25."""
        grid = GridIndex.equal_width(4, value_range=1.0)
        assert grid.grid[2, 0] == pytest.approx(0.0)
        assert grid.grid[3, 1] == pytest.approx(0.75 * 0.25)

    def test_grid_is_outer_product(self):
        grid = GridIndex.equal_width(8, value_range=100.0)
        expected = np.outer(grid.alpha_p, grid.alpha_w)
        assert np.array_equal(grid.grid, expected)

    def test_grid_read_only(self):
        grid = GridIndex.equal_width(4)
        with pytest.raises(ValueError):
            grid.grid[0, 0] = 1.0

    def test_custom_boundaries(self):
        grid = GridIndex([0, 1, 5, 10.0], [0, 0.2, 0.5, 1.0])
        assert grid.partitions == 3
        assert grid.value_range == 10.0

    def test_rejects_bad_boundaries(self):
        with pytest.raises(InvalidParameterError):
            GridIndex([0, 0, 1.0], [0, 0.5, 1.0])  # not strictly increasing
        with pytest.raises(InvalidParameterError):
            GridIndex([-1, 0, 1.0], [0, 0.5, 1.0])  # negative start
        with pytest.raises(InvalidParameterError):
            GridIndex([0, 1.0], [0, 0.5, 1.0])      # unequal lengths
        with pytest.raises(InvalidParameterError):
            GridIndex([0.5], [0.5])                 # too short

    def test_rejects_bad_equal_width_params(self):
        with pytest.raises(InvalidParameterError):
            GridIndex.equal_width(0)
        with pytest.raises(InvalidParameterError):
            GridIndex.equal_width(4, value_range=-1.0)

    def test_memory_matches_section53(self):
        """Section 5.3: a 32x32 grid needs less than 8 KB."""
        grid = GridIndex.equal_width(32)
        assert grid.memory_bytes <= 33 * 33 * 8
        assert grid.memory_bytes < 10_000


class TestBounds:
    def test_cell_bounds_bracket_product(self):
        grid = GridIndex.equal_width(4, value_range=1.0)
        # Paper example: p[1]=0.62 (code 2), w[1]=0.12 (code 0).
        lo, hi = grid.cell_bounds(2, 0)
        assert lo <= 0.62 * 0.12 <= hi
        assert lo == pytest.approx(0.5 * 0.0)
        assert hi == pytest.approx(0.75 * 0.25)

    def test_cell_bounds_range_check(self):
        grid = GridIndex.equal_width(4)
        with pytest.raises(InvalidParameterError):
            grid.cell_bounds(4, 0)
        with pytest.raises(InvalidParameterError):
            grid.cell_bounds(0, -1)

    def test_batch_bounds_shapes(self):
        grid = GridIndex.equal_width(8, value_range=1.0)
        p_codes = np.array([[0, 1, 2], [3, 4, 5]])
        w_codes = np.array([1, 2, 3])
        lo = grid.lower_bounds(p_codes, w_codes)
        hi = grid.upper_bounds(p_codes, w_codes)
        assert lo.shape == (2,)
        assert np.all(lo <= hi)

    def test_batch_bounds_sandwich_real_scores(self):
        rng = np.random.default_rng(1)
        n = 16
        grid = GridIndex.equal_width(n, value_range=1.0)
        P = rng.random((40, 6))
        w = rng.dirichlet(np.ones(6))
        p_codes = np.floor(P * n).astype(int)
        w_codes = np.floor(w * n).astype(int)
        lo, hi = grid.score_bounds(p_codes, w_codes)
        f = P @ w
        assert np.all(lo <= f + 1e-12)
        assert np.all(f <= hi + 1e-12)

    def test_default_partitions_is_32(self):
        assert DEFAULT_PARTITIONS == 32
