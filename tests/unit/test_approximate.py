"""Unit tests for bounds-only queries (repro.core.approximate)."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.approximate import (
    ApproxRKRResult,
    ApproxRTKResult,
    reverse_kranks_bounds,
    reverse_topk_bounds,
)
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import (
    clustered_products,
    uniform_products,
    uniform_weights,
)
from repro.errors import InvalidParameterError


@pytest.fixture
def setup():
    P = uniform_products(200, 5, seed=601)
    W = uniform_weights(160, 5, seed=602)
    return GridIndexRRQ(P, W, partitions=32), NaiveRRQ(P, W), P


class TestRTKEnvelope:
    def test_sandwiches_exact_answer(self, setup):
        gir, naive, P = setup
        for qi in (0, 50, 150):
            for k in (1, 10, 50):
                q = P[qi]
                exact = naive.reverse_topk(q, k).weights
                approx = reverse_topk_bounds(gir, q, k)
                assert approx.certain <= exact
                assert exact <= approx.possible

    def test_rank_intervals_contain_true_ranks(self, setup):
        gir, naive, P = setup
        q = P[3]
        approx = reverse_topk_bounds(gir, q, 5)
        from repro.vectorized.batch import BatchOracle

        true_ranks = BatchOracle(gir.products, gir.weights).ranks(q)
        for j, (lo, hi) in enumerate(approx.rank_intervals):
            assert lo <= true_ranks[j] <= hi

    def test_certain_and_undecided_disjoint(self, setup):
        gir, _, P = setup
        approx = reverse_topk_bounds(gir, P[9], 20)
        assert not (approx.certain & approx.undecided)
        assert 0.0 <= approx.uncertainty() <= 1.0

    def test_finer_grid_shrinks_uncertainty(self, setup):
        _, _, P = setup
        W = uniform_weights(160, 5, seed=602)
        coarse = GridIndexRRQ(P, W, partitions=4)
        fine = GridIndexRRQ(P, W, partitions=64)
        q = P[120]
        u_coarse = reverse_topk_bounds(coarse, q, 20).uncertainty()
        u_fine = reverse_topk_bounds(fine, q, 20).uncertainty()
        assert u_fine <= u_coarse

    def test_no_refinement_performed(self, setup):
        gir, _, P = setup
        approx = reverse_topk_bounds(gir, P[0], 10)
        assert approx.counter.refined == 0
        # Only the |W| query-score products are computed.
        assert approx.counter.pairwise == gir.W.shape[0]

    def test_k_validation(self, setup):
        gir, _, P = setup
        with pytest.raises(InvalidParameterError):
            reverse_topk_bounds(gir, P[0], 0)


class TestRKREnvelope:
    def test_sandwiches_exact_answer(self, setup):
        gir, naive, P = setup
        for qi in (5, 100):
            for k in (1, 8, 40):
                q = P[qi]
                exact = naive.reverse_kranks(q, k).weights
                approx = reverse_kranks_bounds(gir, q, k)
                assert approx.certain <= exact
                assert exact <= approx.candidates

    def test_clustered_data(self):
        P = clustered_products(150, 4, seed=603)
        W = uniform_weights(130, 4, seed=604)
        gir = GridIndexRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        q = P[7]
        exact = naive.reverse_kranks(q, 10).weights
        approx = reverse_kranks_bounds(gir, q, 10)
        assert approx.certain <= exact <= approx.candidates

    def test_candidates_at_least_k(self, setup):
        gir, _, P = setup
        approx = reverse_kranks_bounds(gir, P[2], 12)
        assert len(approx.candidates) >= 12

    def test_k_validation(self, setup):
        gir, _, P = setup
        with pytest.raises(InvalidParameterError):
            reverse_kranks_bounds(gir, P[0], -3)
