"""Unit tests for repro.core.ties (exact tie resolution)."""

import numpy as np
import pytest

from repro.core.ties import (
    TIE_REL_TOL,
    count_strictly_better,
    count_strictly_better_matrix,
    exact_score_cmp,
    exact_strictly_less,
    tie_tolerance,
)


class TestExactCmp:
    def test_clear_orderings(self):
        w = np.array([0.5, 0.5])
        q = np.array([0.4, 0.4])
        assert exact_score_cmp(w, np.array([0.1, 0.1]), q) == -1
        assert exact_score_cmp(w, np.array([0.9, 0.9]), q) == 1
        assert exact_score_cmp(w, q.copy(), q) == 0

    def test_cross_tie_between_distinct_vectors(self):
        """The motivating case: distinct p, q with exactly equal scores."""
        w = np.array([0.4, 0.4, 0.2])
        p = np.array([0.25, 1.0, 0.0])
        q = np.array([1.0, 0.25, 0.0])
        # 0.4*0.25 + 0.4*1.0 == 0.4*1.0 + 0.4*0.25 exactly.
        assert exact_score_cmp(w, p, q) == 0
        assert not exact_strictly_less(w, p, q)

    def test_sub_ulp_differences_resolved(self):
        """Differences far below float rounding are still decided exactly."""
        w = np.array([1.0])
        q = np.array([0.1])
        p_below = np.array([np.nextafter(0.1, 0.0)])
        p_above = np.array([np.nextafter(0.1, 1.0)])
        assert exact_score_cmp(w, p_below, q) == -1
        assert exact_score_cmp(w, p_above, q) == 1

    def test_zero_weights_ignored(self):
        w = np.array([0.0, 1.0])
        p = np.array([999.0, 0.5])
        q = np.array([0.0, 0.5])
        assert exact_score_cmp(w, p, q) == 0


class TestTolerance:
    def test_scales_with_magnitude(self):
        assert tie_tolerance(0.0) == TIE_REL_TOL
        assert tie_tolerance(10_000.0) > tie_tolerance(1.0)
        assert tie_tolerance(-5.0) == tie_tolerance(5.0)


class TestCountStrictlyBetter:
    def test_no_near_ties_uses_float_path(self):
        w = np.array([1.0, 0.0])
        q = np.array([0.5, 0.0])
        vectors = np.array([[0.1, 0], [0.4, 0], [0.9, 0]])
        scores = vectors @ w
        assert count_strictly_better(scores, vectors, w, q, 0.5) == 2

    def test_exact_resolution_of_planted_tie(self):
        w = np.array([0.4, 0.4, 0.2])
        q = np.array([1.0, 0.25, 0.0])
        fq = float(np.dot(w, q))
        vectors = np.array([
            [0.25, 1.0, 0.0],    # exact tie -> not counted
            [0.25, 0.999, 0.0],  # strictly below
            [1.0, 1.0, 1.0],     # strictly above
        ])
        # Deliberately feed scores that a hostile kernel might have
        # produced: the tie's score nudged below fq.
        scores = np.array([np.nextafter(fq, 0.0), 0.4996, 1.0])
        assert count_strictly_better(scores, vectors, w, q, fq) == 1

    def test_matrix_variant_matches_columnwise(self):
        rng = np.random.default_rng(5)
        P = rng.random((30, 4))
        W = rng.dirichlet(np.ones(4), size=6)
        q = rng.random(4)
        scores = P @ W.T
        fq = W @ q
        counts = count_strictly_better_matrix(scores, P, W, q, fq)
        for j in range(6):
            assert counts[j] == count_strictly_better(
                scores[:, j], P, W[j], q, float(fq[j])
            )

    def test_matrix_variant_with_planted_ties(self):
        w = np.array([0.4, 0.4, 0.2])
        q = np.array([1.0, 0.25, 0.0])
        P = np.array([[0.25, 1.0, 0.0], [0.0, 0.0, 0.0]])
        W = w[None, :]
        scores = P @ W.T
        fq = W @ q
        counts = count_strictly_better_matrix(scores, P, W, q, fq)
        assert counts.tolist() == [1]  # only the all-zero row is better
