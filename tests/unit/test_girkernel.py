"""Unit tests for repro.vectorized.girkernel (the weight-blocked kernel)."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.queries.engine import RRQEngine
from repro.vectorized.girkernel import GirKernelRRQ, KernelStats


@pytest.fixture
def data():
    P = uniform_products(180, 5, seed=31)
    W = uniform_weights(150, 5, seed=32)
    return P, W


class TestConstruction:
    def test_mirrors_gir_grid(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        kernel = GirKernelRRQ(P, W, partitions=16)
        np.testing.assert_array_equal(kernel.grid.alpha_p, gir.grid.alpha_p)
        np.testing.assert_array_equal(kernel.grid.alpha_w, gir.grid.alpha_w)
        np.testing.assert_array_equal(kernel.PA, gir.PA)
        np.testing.assert_array_equal(kernel.WA, gir.WA)
        assert kernel.partitions == 16
        assert kernel.use_domin

    def test_from_gir_reuses_quantization(self, data):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=8)
        kernel = GirKernelRRQ.from_gir(gir)
        assert kernel.grid is gir.grid
        assert kernel.PA is gir.PA
        assert kernel.WA is gir.WA
        assert kernel.partitions == 8

    def test_rejects_bad_blocks(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            GirKernelRRQ(P, W, w_block=0)
        with pytest.raises(InvalidParameterError):
            GirKernelRRQ(P, W, p_block=-1)

    def test_memory_report(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        report = kernel.memory_report()
        # Two pre-gathered float64 bound matrices per side, same shapes
        # as P and W.
        assert report["bound_matrix_bytes"] == (2 * P.values.nbytes
                                                + 2 * W.values.nbytes)
        assert report["grid_bytes"] > 0

    def test_registered_engine_method(self, data):
        P, W = data
        engine = RRQEngine(P, W, method="gir-kernel")
        naive = NaiveRRQ(P, W)
        assert (engine.reverse_topk(P[0], 7).weights
                == naive.reverse_topk(P[0], 7).weights)


class TestEquivalence:
    """Byte-identity against both the per-weight loop and the naive scan."""

    @pytest.mark.parametrize("w_block,p_block", [(1024, 2048), (7, 16), (1, 1)])
    def test_any_blocking_matches_gir(self, data, w_block, p_block):
        P, W = data
        gir = GridIndexRRQ(P, W, partitions=16)
        kernel = GirKernelRRQ(P, W, partitions=16,
                              w_block=w_block, p_block=p_block)
        for qi in (0, 50, 177):
            q = P[qi]
            for k in (1, 5, 40):
                assert (kernel.reverse_topk(q, k)
                        == gir.reverse_topk(q, k))
                assert (kernel.reverse_kranks(q, k).entries
                        == gir.reverse_kranks(q, k).entries)

    def test_matches_naive(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        for qi in (3, 99):
            q = P[qi]
            for k in (1, 7, 25):
                assert (kernel.reverse_topk(q, k).weights
                        == naive.reverse_topk(q, k).weights)
                assert (kernel.reverse_kranks(q, k).entries
                        == naive.reverse_kranks(q, k).entries)

    def test_use_domin_false_equivalent(self, data):
        P, W = data
        naive = NaiveRRQ(P, W)
        kernel = GirKernelRRQ(P, W, partitions=16, use_domin=False)
        q = P.values.max(axis=0) * 0.999  # heavy domination pressure
        for k in (1, 3, 20):
            assert (kernel.reverse_topk(q, k).weights
                    == naive.reverse_topk(q, k).weights)
            assert (kernel.reverse_kranks(q, k).entries
                    == naive.reverse_kranks(q, k).entries)

    def test_domin_abort_empty_rtk(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        q = P.values.max(axis=0) * 0.999
        result = kernel.reverse_topk(q, 3)
        assert result.weights == frozenset()
        assert kernel.last_stats.pairs_domin_skipped >= 0

    def test_k_exceeds_weights(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        naive = NaiveRRQ(P, W)
        result = kernel.reverse_kranks(P[0], W.size + 50)
        assert len(result.entries) == W.size
        assert result.entries == naive.reverse_kranks(P[0], W.size + 50).entries
        rtk = kernel.reverse_topk(P[0], W.size + 50)
        assert rtk.weights == naive.reverse_topk(P[0], W.size + 50).weights


class TestStats:
    def test_last_stats_populated(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        kernel.reverse_topk(P[0], 10)
        stats = kernel.last_stats
        assert isinstance(stats, KernelStats)
        assert stats.queries == 1
        assert stats.pairs_total > 0
        assert 0.0 < stats.filter_rate() <= 1.0
        assert stats.pairs_decided == stats.pairs_case1 + stats.pairs_case2

    def test_snapshot_shape(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        kernel.reverse_kranks(P[0], 5)
        snap = kernel.last_stats.snapshot()
        assert set(snap) == {"queries", "stage_s", "pairs",
                             "weights_pruned", "filter_rate", "fused"}
        assert set(snap["stage_s"]) == {"filter", "refine", "merge"}
        assert set(snap["pairs"]) == {"total", "case1", "case2",
                                      "refined", "domin_skipped", "f32"}
        assert set(snap["fused"]) == {"batches", "queries"}

    def test_merge_accumulates(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        total = KernelStats()
        for qi in (0, 1, 2):
            kernel.reverse_topk(P[qi], 5)
            total.merge(kernel.last_stats)
        assert total.queries == 3
        assert total.pairs_total >= kernel.last_stats.pairs_total

    def test_counter_tallies_refinements(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=16)
        result = kernel.reverse_topk(P[0], 10)
        assert result.counter.pairwise > 0
