"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DataValidationError,
    DimensionMismatchError,
    EmptyDatasetError,
    IndexCorruptionError,
    InvalidParameterError,
    ReproError,
)


@pytest.mark.parametrize("exc", [
    DataValidationError,
    DimensionMismatchError,
    EmptyDatasetError,
    IndexCorruptionError,
    InvalidParameterError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_repro_error_is_value_error():
    assert issubclass(ReproError, ValueError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise DataValidationError("bad data")
