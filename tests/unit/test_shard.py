"""Unit tests for repro.vectorized.shard (shared-memory single-query sharding)."""

import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError
from repro.vectorized.girkernel import GirKernelRRQ
from repro.vectorized.shard import ShardedGirRRQ


@pytest.fixture(scope="module")
def data():
    P = uniform_products(150, 4, seed=41)
    W = uniform_weights(130, 4, seed=42)
    return P, W


@pytest.fixture(scope="module")
def sharded(data):
    """One pool for the whole module — worker startup is the slow part."""
    P, W = data
    engine = ShardedGirRRQ(P, W, shards=3, partitions=16)
    yield engine
    engine.close()


class TestEquivalence:
    def test_rtk_matches_naive(self, data, sharded):
        P, W = data
        naive = NaiveRRQ(P, W)
        for qi in (0, 60, 149):
            for k in (1, 7, 50):
                assert (sharded.reverse_topk(P[qi], k).weights
                        == naive.reverse_topk(P[qi], k).weights)

    def test_rkr_matches_naive(self, data, sharded):
        P, W = data
        naive = NaiveRRQ(P, W)
        for qi in (2, 77):
            for k in (1, 5, 30):
                assert (sharded.reverse_kranks(P[qi], k).entries
                        == naive.reverse_kranks(P[qi], k).entries)

    def test_k_exceeds_weights(self, data, sharded):
        P, W = data
        result = sharded.reverse_kranks(P[0], W.size + 10)
        assert len(result.entries) == W.size

    def test_merged_stats_single_query(self, data, sharded):
        P, W = data
        # An undominated point: the Domin floor can't short-circuit, so
        # every shard must actually classify pairs.
        q = P.values.min(axis=0) * 0.9
        sharded.reverse_topk(q, 5)
        stats = sharded.last_stats
        assert stats is not None
        assert stats.queries == 1  # shards merge into one logical scan
        assert stats.pairs_total > 0

    def test_reuses_supplied_kernel(self, data):
        P, W = data
        kernel = GirKernelRRQ(P, W, partitions=8)
        with ShardedGirRRQ(P, W, shards=2, kernel=kernel) as engine:
            assert engine.kernel is kernel
            naive = NaiveRRQ(P, W)
            assert (engine.reverse_topk(P[5], 9).weights
                    == naive.reverse_topk(P[5], 9).weights)


class TestLifecycle:
    def test_rejects_bad_shards(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            ShardedGirRRQ(P, W, shards=0)

    def test_post_close_serial_fallback(self, data):
        P, W = data
        engine = ShardedGirRRQ(P, W, shards=2, partitions=16)
        engine.close()
        naive = NaiveRRQ(P, W)
        # Still answers, exactly, from the in-process kernel.
        assert (engine.reverse_kranks(P[3], 7).entries
                == naive.reverse_kranks(P[3], 7).entries)
        assert engine.last_stats is not None

    def test_close_idempotent(self, data):
        P, W = data
        engine = ShardedGirRRQ(P, W, shards=2, partitions=16)
        engine.close()
        engine.close()  # second close is a no-op, not an error

    def test_shards_capped_at_weights(self):
        P = uniform_products(40, 3, seed=1)
        W = uniform_weights(2, 3, seed=2)
        with ShardedGirRRQ(P, W, shards=8) as engine:
            assert engine.shards <= 2
            naive = NaiveRRQ(P, W)
            assert (engine.reverse_topk(P[0], 1).weights
                    == naive.reverse_topk(P[0], 1).weights)


class TestShutdownSafety:
    """Regressions for GC/interpreter-exit crashes in close()/__del__."""

    def test_half_built_instance_closes_cleanly(self):
        # A constructor that raises before _pool/_segments exist still
        # gets __del__ -> close(); neither may raise AttributeError.
        engine = ShardedGirRRQ.__new__(ShardedGirRRQ)
        engine.close()
        engine.__del__()

    def test_failed_constructor_leaves_no_raising_garbage(self, data):
        import gc

        P, W = data
        with pytest.raises(InvalidParameterError):
            ShardedGirRRQ(P, W, shards=0)
        gc.collect()  # collects the half-built instance; must not raise

    def test_interpreter_exit_without_close_is_silent(self):
        # An engine alive at interpreter shutdown is torn down by GC
        # after arbitrary module teardown; "Exception ignored" on stderr
        # is the failure mode this guards against.
        import subprocess
        import sys

        script = (
            "from repro.data.synthetic import uniform_products, "
            "uniform_weights\n"
            "from repro.vectorized.shard import ShardedGirRRQ\n"
            "P = uniform_products(30, 3, seed=1)\n"
            "W = uniform_weights(20, 3, seed=2)\n"
            "engine = ShardedGirRRQ(P, W, shards=2, partitions=8)\n"
            "engine.reverse_topk(P[0], 3)\n"
            "# deliberately no close(): exit with the pool still up\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, timeout=120,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        assert "Exception ignored" not in result.stderr
        assert "Traceback" not in result.stderr
