"""Unit tests for the packed-blob kernel store (mmap warm start).

The contract under test: ``save_kernel`` → ``load_kernel`` yields a
kernel whose arrays and *answers* are identical to the one that was
saved (both the mmap and the in-RAM load path), extras round-trip, and
every flavor of on-disk damage surfaces as a structured
:class:`IndexCorruptionError` naming the damaged artifacts — never a
wrong answer, never a raw OS error.
"""

import json

import numpy as np
import pytest

from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DataValidationError, IndexCorruptionError
from repro.vectorized.girkernel import GirKernelRRQ
from repro.vectorized.kernelstore import (
    CORE_ARRAYS,
    F32_ARRAYS,
    kernel_store_size,
    load_kernel,
    load_kernel_bundle,
    save_kernel,
)


@pytest.fixture(scope="module")
def kernel():
    P = uniform_products(90, 4, seed=501)
    W = uniform_weights(120, 4, seed=502)
    return GirKernelRRQ(P, W, partitions=8)


@pytest.fixture()
def store(tmp_path, kernel):
    save_kernel(tmp_path, kernel)
    return tmp_path


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_arrays_and_answers_identical(self, store, kernel, mmap):
        loaded = load_kernel(store, mmap=mmap)
        core, lcore = kernel.core, loaded.core
        for name in ("P", "W", "pa_lo", "pa_hi", "wb_lo", "wb_hi"):
            np.testing.assert_array_equal(getattr(core, name),
                                          getattr(lcore, name))
        np.testing.assert_array_equal(kernel.PA, loaded.PA)
        np.testing.assert_array_equal(kernel.WA, loaded.WA)
        if core.filter_dtype == "float32":
            for name in F32_ARRAYS:
                np.testing.assert_array_equal(getattr(core, name),
                                              getattr(lcore, name))
        for qi in (0, 17, 60):
            q = kernel.products[qi]
            assert loaded.reverse_topk(q, 7) == kernel.reverse_topk(q, 7)
            assert (loaded.reverse_kranks(q, 7).entries
                    == kernel.reverse_kranks(q, 7).entries)

    def test_float64_filter_round_trip(self, tmp_path):
        P = uniform_products(40, 3, seed=601)
        W = uniform_weights(50, 3, seed=602)
        kernel = GirKernelRRQ(P, W, partitions=8, filter_dtype="float64")
        save_kernel(tmp_path, kernel)
        loaded = load_kernel(tmp_path)
        assert loaded.core.filter_dtype == "float64"
        assert loaded.core.pa_lo32 is None
        q = kernel.products[3]
        assert loaded.reverse_topk(q, 5) == kernel.reverse_topk(q, 5)

    def test_extras_round_trip(self, tmp_path, kernel):
        extras = {"gids": np.arange(120, dtype=np.int64),
                  "flags": np.zeros(7, dtype=bool)}
        save_kernel(tmp_path, kernel, extras=extras)
        _, loaded_extras = load_kernel_bundle(tmp_path)
        assert set(loaded_extras) == {"gids", "flags"}
        np.testing.assert_array_equal(loaded_extras["gids"], extras["gids"])
        np.testing.assert_array_equal(loaded_extras["flags"],
                                      extras["flags"])

    def test_extra_name_collision_rejected(self, tmp_path, kernel):
        with pytest.raises(DataValidationError):
            save_kernel(tmp_path, kernel,
                        extras={"pa_lo": np.zeros(3)})
        with pytest.raises(DataValidationError):
            save_kernel(tmp_path, kernel,
                        extras={"kernel.bin": np.zeros(3)})

    def test_store_size_reported(self, store):
        size = kernel_store_size(store)
        assert size > 0
        assert size == sum(f.stat().st_size for f in store.iterdir())
        assert kernel_store_size(store / "never-there") == 0

    def test_full_verify_passes_on_intact_store(self, store):
        loaded = load_kernel(store, verify="full")
        assert loaded.core.P.shape == (90, 4)

    def test_loaded_views_are_readonly(self, store):
        loaded = load_kernel(store)
        with pytest.raises(ValueError):
            loaded.core.pa_lo[0, 0] = 1.0


class TestCorruption:
    def test_missing_directory_is_structured(self, tmp_path):
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(tmp_path / "nope")
        assert "MANIFEST.json" in exc.value.artifacts

    def test_truncated_blob_detected_without_reading_data(self, store):
        blob = store / "kernel.bin"
        blob.write_bytes(blob.read_bytes()[:-64])
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(store)
        assert "kernel.bin" in exc.value.artifacts

    def test_missing_blob_detected(self, store):
        (store / "kernel.bin").unlink()
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(store)
        assert "kernel.bin" in exc.value.artifacts

    def test_flipped_byte_caught_by_full_verify(self, store):
        blob = store / "kernel.bin"
        raw = bytearray(blob.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blob.write_bytes(bytes(raw))
        # size-only verification cannot see a same-length flip ...
        load_kernel(store, verify="size")
        # ... the CRC pass must.
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(store, verify="full")
        assert "kernel.bin" in exc.value.artifacts

    def test_corrupt_manifest_json(self, store):
        (store / "MANIFEST.json").write_text("{not json")
        with pytest.raises(IndexCorruptionError):
            load_kernel(store)

    def test_meta_missing_array_entry(self, store, kernel):
        # Rewrite the store with a meta whose layout lost an array; the
        # manifest must be regenerated for sizes to match.
        meta_path = store / "kernel.meta"
        meta = json.loads(meta_path.read_text())
        del meta["arrays"]["wb_hi"]
        from repro.core.storage import write_manifest_dir
        write_manifest_dir(store, {
            "kernel.bin": (store / "kernel.bin").read_bytes(),
            "kernel.meta": json.dumps(meta).encode(),
        })
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(store)
        assert "wb_hi" in str(exc.value)

    def test_unsupported_version_rejected(self, store):
        meta_path = store / "kernel.meta"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        from repro.core.storage import write_manifest_dir
        write_manifest_dir(store, {
            "kernel.bin": (store / "kernel.bin").read_bytes(),
            "kernel.meta": json.dumps(meta).encode(),
        })
        with pytest.raises(DataValidationError):
            load_kernel(store)

    def test_bad_verify_mode_rejected(self, store):
        with pytest.raises(DataValidationError):
            load_kernel(store, verify="paranoid")


class TestLayout:
    def test_blob_offsets_are_aligned(self, store):
        meta = json.loads((store / "kernel.meta").read_text())
        for name, spec in meta["arrays"].items():
            assert spec["offset"] % 64 == 0, name
        assert set(CORE_ARRAYS) <= set(meta["arrays"])

    def test_store_is_two_artifacts_plus_manifest(self, store):
        names = sorted(f.name for f in store.iterdir())
        assert names == ["MANIFEST.json", "kernel.bin", "kernel.meta"]


class TestConfigDigest:
    """The stale-kernel-after-config-change fix: every store records the
    digest of the grid/tile/domin config that built it, and loaders can
    demand a match — a cached kernel built under old boundaries must be
    refused, never silently served."""

    def test_digest_recorded_and_readable(self, store, kernel):
        from repro.vectorized.kernelstore import (
            config_digest_of,
            store_config_digest,
        )

        digest = store_config_digest(store)
        assert digest == config_digest_of(kernel)
        assert len(digest) == 64

    def test_digest_tracks_every_config_axis(self, kernel):
        from repro.vectorized.kernelstore import kernel_config_digest

        base_args = (kernel.grid.alpha_p, kernel.grid.alpha_w,
                     1024, 2048, True, "float32")
        base = kernel_config_digest(*base_args)
        moved = np.array(kernel.grid.alpha_p, dtype=np.float64)
        moved[1] += 1e-9
        assert kernel_config_digest(moved, *base_args[1:]) != base
        assert kernel_config_digest(base_args[0], base_args[1],
                                    512, 2048, True, "float32") != base
        assert kernel_config_digest(base_args[0], base_args[1],
                                    1024, 2048, False, "float32") != base
        assert kernel_config_digest(base_args[0], base_args[1],
                                    1024, 2048, True, "float64") != base

    def test_expected_digest_mismatch_refused(self, store):
        with pytest.raises(IndexCorruptionError) as exc:
            load_kernel(store, expected_digest="0" * 64)
        assert "kernel.meta" in exc.value.artifacts
        assert "config" in str(exc.value)

    def test_expected_digest_match_loads(self, store, kernel):
        from repro.vectorized.kernelstore import config_digest_of

        loaded = load_kernel(store,
                             expected_digest=config_digest_of(kernel))
        q = kernel.products[2]
        assert loaded.reverse_topk(q, 4) == kernel.reverse_topk(q, 4)

    def test_legacy_store_without_digest_refused_when_expected(
            self, store):
        meta_path = store / "kernel.meta"
        meta = json.loads(meta_path.read_text())
        del meta["config_digest"]
        from repro.core.storage import write_manifest_dir
        write_manifest_dir(store, {
            "kernel.bin": (store / "kernel.bin").read_bytes(),
            "kernel.meta": json.dumps(meta).encode(),
        })
        from repro.vectorized.kernelstore import store_config_digest
        assert store_config_digest(store) is None
        with pytest.raises(IndexCorruptionError):
            load_kernel(store, expected_digest="f" * 64)
        # Without an expectation the legacy store still loads.
        load_kernel(store)


class TestTunedPointer:
    def test_round_trip_and_clear(self, tmp_path):
        from repro.vectorized.kernelstore import (
            clear_tuned_pointer,
            config_store_dir,
            read_tuned_pointer,
            write_tuned_pointer,
        )

        assert read_tuned_pointer(tmp_path) is None
        write_tuned_pointer(tmp_path, "ab" * 32,
                            config={"partitions": 64})
        pointer = read_tuned_pointer(tmp_path)
        assert pointer["digest"] == "ab" * 32
        assert pointer["config"]["partitions"] == 64
        assert config_store_dir(tmp_path, pointer["digest"]).endswith(
            "cfg-abababababab")
        clear_tuned_pointer(tmp_path)
        assert read_tuned_pointer(tmp_path) is None
        clear_tuned_pointer(tmp_path)  # idempotent

    def test_damaged_pointer_treated_as_absent(self, tmp_path):
        from repro.vectorized.kernelstore import (
            TUNED_POINTER_NAME,
            read_tuned_pointer,
        )

        target = tmp_path / TUNED_POINTER_NAME
        target.write_text("{torn")
        assert read_tuned_pointer(tmp_path) is None
        target.write_text(json.dumps({"no_digest": True}))
        assert read_tuned_pointer(tmp_path) is None
        target.write_text(json.dumps({"digest": 7}))
        assert read_tuned_pointer(tmp_path) is None
