"""Unit tests for repro.vectorized.batch."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.vectorized.batch import BatchOracle, all_ranks_multi


@pytest.fixture
def data():
    P = uniform_products(130, 4, seed=51)
    W = uniform_weights(110, 4, seed=52)
    return P, W


class TestAllRanksMulti:
    def test_matches_per_query_naive(self, data):
        P, W = data
        naive = NaiveRRQ(P, W)
        Q = P.values[[0, 5, 9]]
        ranks = all_ranks_multi(P.values, W.values, Q)
        for qi, q in enumerate(Q):
            expected = naive._all_ranks(q, naive.reverse_topk(q, 1).counter)
            assert np.array_equal(ranks[qi], expected)

    def test_single_query_1d_input(self, data):
        P, W = data
        q = P.values[3]
        ranks = all_ranks_multi(P.values, W.values, q)
        assert ranks.shape == (1, W.size)

    def test_chunking_invariance(self, data):
        P, W = data
        Q = P.values[:4]
        full = all_ranks_multi(P.values, W.values, Q)
        tiny = all_ranks_multi(P.values, W.values, Q, chunk_budget=200)
        assert np.array_equal(full, tiny)

    def test_dimension_mismatch(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            all_ranks_multi(P.values, W.values, np.zeros((1, 7)))

    @pytest.mark.parametrize("budget", [0, -1, -8_000_000])
    def test_rejects_non_positive_chunk_budget(self, data, budget):
        P, W = data
        with pytest.raises(InvalidParameterError):
            all_ranks_multi(P.values, W.values, P.values[:2], budget)


class TestBatchOracle:
    def test_matches_naive(self, data):
        P, W = data
        oracle = BatchOracle(P, W)
        naive = NaiveRRQ(P, W)
        q = P[17]
        assert oracle.reverse_topk(q, 9).weights == naive.reverse_topk(q, 9).weights
        assert (oracle.reverse_kranks(q, 9).entries
                == naive.reverse_kranks(q, 9).entries)

    def test_many_variants_match_single(self, data):
        P, W = data
        oracle = BatchOracle(P, W)
        queries = [P[i] for i in (2, 40, 99)]
        many_rtk = oracle.reverse_topk_many(queries, 5)
        many_rkr = oracle.reverse_kranks_many(queries, 5)
        for q, rtk, rkr in zip(queries, many_rtk, many_rkr):
            assert rtk.weights == oracle.reverse_topk(q, 5).weights
            assert rkr.entries == oracle.reverse_kranks(q, 5).entries

    def test_validation(self, data):
        P, W = data
        oracle = BatchOracle(P, W)
        with pytest.raises(InvalidParameterError):
            oracle.reverse_topk(P[0], 0)
        with pytest.raises(DimensionMismatchError):
            oracle.ranks(np.zeros(9))

    def test_rejects_non_positive_chunk_budget(self, data):
        P, W = data
        with pytest.raises(InvalidParameterError):
            BatchOracle(P, W, chunk_budget=0)
