"""Unit tests for the result cache and the admission-limit primitives."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadError,
)
from repro.ext.dynamic import DynamicRRQEngine
from repro.service.cache import ResultCache, bind_dynamic, make_key
from repro.service.limits import (
    Deadline,
    ServiceLimits,
    http_status,
    rejection_body,
)


class TestMakeKey:
    def test_equal_points_share_a_key(self):
        q1 = np.array([1.0, 2.0, 3.0])
        q2 = np.array([1.0, 2.0, 3.0])
        assert make_key(q1, "rtk", 5, "gir") == make_key(q2, "rtk", 5, "gir")

    def test_any_field_changes_the_key(self):
        q = np.array([1.0, 2.0])
        base = make_key(q, "rtk", 5, "gir")
        assert make_key(q + 1e-12, "rtk", 5, "gir") != base
        assert make_key(q, "rkr", 5, "gir") != base
        assert make_key(q, "rtk", 6, "gir") != base
        assert make_key(q, "rtk", 5, "naive") != base


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        key = make_key(np.array([1.0]), "rtk", 3, "gir")
        assert cache.get(key) is None
        cache.put(key, {"answer": 1})
        assert cache.get(key) == {"answer": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        keys = [make_key(np.array([float(i)]), "rtk", 1, "gir")
                for i in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        assert cache.get(keys[0]) == "a"   # refresh 0; 1 is now LRU
        cache.put(keys[2], "c")            # evicts 1
        assert keys[1] not in cache
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[2]) == "c"

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        key = make_key(np.array([1.0]), "rtk", 1, "gir")
        cache.put(key, "x")
        assert cache.get(key) is None
        with pytest.raises(InvalidParameterError):
            ResultCache(capacity=-1)

    def test_invalidate_clears_everything(self):
        cache = ResultCache(capacity=8)
        for i in range(5):
            cache.put(make_key(np.array([float(i)]), "rtk", 1, "gir"), i)
        assert len(cache) == 5
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_thread_safety_smoke(self):
        cache = ResultCache(capacity=32)

        def worker(seed):
            for i in range(200):
                key = make_key(np.array([float(i % 40)]), "rtk", 1, "gir")
                if (i + seed) % 3:
                    cache.put(key, i)
                else:
                    cache.get(key)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 32


class TestDynamicInvalidation:
    def test_every_mutation_flushes(self):
        engine = DynamicRRQEngine(dim=2, value_range=1.0, partitions=8)
        cache = ResultCache(capacity=8)
        bind_dynamic(cache, engine)
        key = make_key(np.array([0.5, 0.5]), "rtk", 1, "gir")

        def reprime():
            cache.put(key, "stale")
            assert key in cache

        reprime()
        pid = engine.insert_product([0.3, 0.4])
        assert key not in cache

        reprime()
        wid = engine.insert_weight([0.5, 0.5])
        assert key not in cache

        reprime()
        engine.remove_product(pid)
        assert key not in cache

        reprime()
        engine.remove_weight(wid)
        assert key not in cache

        reprime()
        engine.compact()
        assert key not in cache


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()

    def test_expiry(self):
        deadline = Deadline.after(0.0)
        time.sleep(0.001)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            Deadline.after(-1.0)

    def test_limits_validation(self):
        with pytest.raises(InvalidParameterError):
            ServiceLimits(max_queue_depth=0)
        with pytest.raises(InvalidParameterError):
            ServiceLimits(max_batch=0)
        with pytest.raises(InvalidParameterError):
            ServiceLimits(default_deadline_s=0.0)
        assert ServiceLimits(default_deadline_s=None).deadline().at is None

    def test_per_request_override(self):
        limits = ServiceLimits(default_deadline_s=100.0)
        tight = limits.deadline(0.01)
        assert tight.remaining() <= 0.01 + 1e-6


class TestHTTPMapping:
    @pytest.mark.parametrize("exc,status", [
        (ServiceOverloadError("full"), 429),
        (DeadlineExceededError("late"), 504),
        (InvalidParameterError("bad k"), 400),
        (ValueError("bad json"), 400),
        (RuntimeError("bug"), 500),
    ])
    def test_status_codes(self, exc, status):
        assert http_status(exc) == status
        body = rejection_body(exc)
        assert body["status"] == status
        assert body["error"] == type(exc).__name__
        assert body["message"]


class TestGenerationKeying:
    """The swap-vs-in-flight race: a put computed against a dead index
    must never land after the invalidate that retired that index."""

    def test_put_with_stale_generation_is_dropped(self):
        cache = ResultCache(capacity=8)
        key = make_key(np.array([1.0]), "rtk", 3, "gir")
        gen = cache.generation()
        cache.invalidate()           # the swap lands mid-computation
        cache.put(key, "stale", generation=gen)
        assert key not in cache

    def test_put_with_current_generation_lands(self):
        cache = ResultCache(capacity=8)
        key = make_key(np.array([1.0]), "rtk", 3, "gir")
        cache.put(key, "fresh", generation=cache.generation())
        assert cache.get(key) == "fresh"

    def test_ungated_put_keeps_old_behavior(self):
        cache = ResultCache(capacity=8)
        key = make_key(np.array([1.0]), "rtk", 3, "gir")
        cache.invalidate()
        cache.put(key, "x")          # no generation -> unconditional
        assert key in cache

    def test_every_invalidate_bumps_generation(self):
        cache = ResultCache(capacity=8)
        gens = [cache.generation()]
        for _ in range(3):
            cache.invalidate()
            gens.append(cache.generation())
        assert gens == sorted(set(gens))

    def test_mutate_rebuild_serves_fresh_answer(self, tmp_path):
        """Regression: mutate -> rebuild used to leave a pre-rebuild
        answer in the cache; a repeated query then returned ranks that
        ignored the new weight entirely."""
        import numpy as np

        from repro.durability import DurableDynamicRRQ
        from repro.service.server import DurableQueryService, ServiceConfig

        rng = np.random.default_rng(13)
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3,
                                   backend="segmented", seal_every=8,
                                   auto_compact=False, fsync="never")
        for _ in range(20):
            engine.insert_product(rng.uniform(0, 0.9, 3))
        for _ in range(10):
            w = rng.uniform(0.1, 1.0, 3)
            engine.insert_weight(w / w.sum())
        service = DurableQueryService(
            engine, config=ServiceConfig(batch_window_s=0.0,
                                         cache_capacity=16))
        try:
            q = engine.products[4]
            primed = service.query(q, kind="rtk", k=5)
            assert primed["weights"], "need a non-empty answer to go stale"
            # Deleting a weight that is *in* the answer guarantees the
            # cached entry is now provably wrong.
            victim = primed["weights"][0]
            service.mutate("delete_weight", {"index": victim})
            service.mutate("rebuild")
            fresh = service.query(q, kind="rtk", k=5)
            assert victim not in fresh["weights"]
            assert fresh["weights"] == sorted(
                engine.reverse_topk(q, 5).weights)
        finally:
            service.close()
