"""Unit tests for the ServiceClient per-call knobs the coordinator uses.

Covers the per-call ``timeout_s`` override, extra request ``headers``
(trace propagation), and the opt-in ``"_endpoint"`` answer annotation.
"""

import json
import threading
import urllib.request
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import ServiceUnavailableError
from repro.service.client import ServiceClient
from repro.service.server import (
    QueryService,
    canonical_json,
    encode_result,
    serve_in_background,
)


@pytest.fixture(scope="module")
def served():
    products = uniform_products(size=60, dim=3, seed=91)
    weights = uniform_weights(size=50, dim=3, seed=92)
    service = QueryService.from_datasets(products, weights, method="naive")
    with serve_in_background(service) as server:
        yield server, service, products, weights


class TestEndpointAnnotation:
    def test_off_by_default_answers_stay_canonical(self, served):
        server, service, products, _ = served
        client = ServiceClient(server.url)
        answer = client.query(list(products[0]), kind="rtk", k=5)
        assert "_endpoint" not in answer
        expected = encode_result(
            service.engine.reverse_topk(products[0], 5), "rtk")
        assert canonical_json(answer) == canonical_json(expected)

    def test_opt_in_names_the_answering_endpoint(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url, annotate_endpoint=True)
        answer = client.query(list(products[0]), kind="rtk", k=5)
        assert answer["_endpoint"] == server.url
        health = client.healthz()
        assert health["_endpoint"] == server.url

    def test_annotation_survives_failover(self, served):
        server, _, products, _ = served
        client = ServiceClient(["http://127.0.0.1:9", server.url],
                               annotate_endpoint=True, retries=1,
                               backoff_base_s=0.0, backoff_cap_s=0.0)
        answer = client.query(list(products[0]), kind="rtk", k=3)
        # The dead first endpoint rotated away; the annotation names the
        # replica that actually answered.
        assert answer["_endpoint"] == server.url


@pytest.fixture
def silent_server():
    """A socket that accepts connections but never answers.

    Requests hang at the read, so only the *socket timeout* can end
    them — which is exactly what the per-call override must control.
    """
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    yield f"http://127.0.0.1:{sock.getsockname()[1]}"
    sock.close()


class TestPerCallTimeout:
    def test_override_caps_the_socket_wait(self, silent_server):
        import time

        # Client default of 30s; the per-call override must win, or
        # this test visibly hangs.
        client = ServiceClient(silent_server, timeout_s=30.0, retries=0)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.query([0.1, 0.1, 0.1], kind="rtk", k=5, timeout_s=0.2)
        assert time.monotonic() - start < 10.0

    def test_client_default_still_works_without_override(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url, timeout_s=30.0, retries=0)
        assert client.query(list(products[0]), kind="rtk", k=5)["kind"] \
            == "rtk"

    def test_healthz_per_call_override(self, served, silent_server):
        import time

        server, _, _, _ = served
        client = ServiceClient(silent_server, timeout_s=30.0, retries=2)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.healthz(timeout_s=0.2, retries=0)
        assert time.monotonic() - start < 10.0
        assert ServiceClient(server.url).healthz(
            timeout_s=10.0)["status"] == "ok"


class TestHeaderPropagation:
    def test_trace_id_header_reaches_the_server(self, served):
        server, service, products, _ = served
        client = ServiceClient(server.url)
        trace_id = "clienttestid42"
        client.query(list(products[1]), kind="rkr", k=4,
                     headers={"X-Trace-Id": trace_id})
        snapshot = service.traces_snapshot(trace_id=trace_id)
        assert snapshot["found"] is True

    def test_content_type_not_clobbered_by_extra_headers(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url)
        answer = client.query(list(products[2]), kind="rtk", k=3,
                              headers={"X-Extra": "1"})
        assert answer["kind"] == "rtk"


@contextmanager
def scripted_server(respond):
    """A throwaway HTTP server whose every answer comes from ``respond``.

    ``respond(method, path) -> (status, body_dict)``; the body is sent
    as JSON either way, so 4xx/5xx rejections carry the same structured
    payloads the real frontend emits.
    """
    class Handler(BaseHTTPRequestHandler):
        def _serve(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                self.rfile.read(length)
            status, body = respond(self.command, self.path)
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        do_GET = do_POST = _serve

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


class TestPromoteWindowRotation:
    """A client caught mid-failover must find the new primary itself.

    During the promote window the old primary answers with connection
    resets/refusals and the surviving standbys may still say 409 to
    writes; the client's free rotation (no retry budget consumed) is
    what keeps application traffic flowing while the supervisor flips
    routing.
    """

    def test_connection_refused_rotates_for_free(self, served):
        """retries=0, two dead endpoints ahead of a live one: the query
        still succeeds, because transport rotation does not consume the
        retry budget."""
        server, _, products, _ = served
        client = ServiceClient(
            ["http://127.0.0.1:9", "http://127.0.0.1:10", server.url],
            retries=0, timeout_s=2.0)
        answer = client.query(list(products[0]), kind="rtk", k=5)
        assert answer["kind"] == "rtk"
        # Failover is sticky: the next request starts at the survivor.
        assert client.base_url == server.url

    def test_mutation_409_rotates_to_the_promoted_primary(self):
        """The first endpoint still thinks it is a standby (409); the
        write must land on the next replica without a retry attempt."""
        hits = {"standby": 0, "primary": 0}

        def standby(method, path):
            hits["standby"] += 1
            return 409, {"error": "not_primary",
                         "message": "standby refuses writes"}

        def primary(method, path):
            hits["primary"] += 1
            return 200, {"index": 7, "lsn": 42}

        with scripted_server(standby) as standby_url, \
                scripted_server(primary) as primary_url:
            client = ServiceClient([standby_url, primary_url], retries=0)
            receipt = client.insert_weight([0.2, 0.3, 0.5])
            assert receipt["lsn"] == 42
            assert hits == {"standby": 1, "primary": 1}

    def test_reads_pinned_to_an_endpoint_never_rotate(self):
        """``endpoint=`` pins (the hedged backup probe, promote,
        retarget): a pinned request must fail rather than wander."""
        with scripted_server(lambda m, p: (200, {"kind": "rtk",
                                                 "k": 1,
                                                 "weights": []})) as live:
            client = ServiceClient(["http://127.0.0.1:9", live],
                                   retries=0, timeout_s=1.0)
            with pytest.raises(ServiceUnavailableError):
                client.query([0.1, 0.1, 0.1], kind="rtk", k=1,
                             endpoint="http://127.0.0.1:9")
            # The pin failing must not have rotated the client either.
            assert client.base_url == "http://127.0.0.1:9"

    def test_shed_503_carries_the_retry_after_hint(self):
        """A load-shedding 503 body's ``retry_after_s`` rides on the
        raised exception so callers can honor the server's pacing."""
        def shedding(method, path):
            return 503, {"error": "service_unavailable",
                         "message": "coordinator at max in-flight",
                         "retry_after_s": 1.5}

        with scripted_server(shedding) as url:
            client = ServiceClient(url, retries=0)
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.query([0.1, 0.1, 0.1], kind="rtk", k=1)
            assert excinfo.value.retry_after_s == 1.5
