"""Unit tests for the ServiceClient per-call knobs the coordinator uses.

Covers the per-call ``timeout_s`` override, extra request ``headers``
(trace propagation), and the opt-in ``"_endpoint"`` answer annotation.
"""

import json
import urllib.request

import pytest

from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import ServiceUnavailableError
from repro.service.client import ServiceClient
from repro.service.server import (
    QueryService,
    canonical_json,
    encode_result,
    serve_in_background,
)


@pytest.fixture(scope="module")
def served():
    products = uniform_products(size=60, dim=3, seed=91)
    weights = uniform_weights(size=50, dim=3, seed=92)
    service = QueryService.from_datasets(products, weights, method="naive")
    with serve_in_background(service) as server:
        yield server, service, products, weights


class TestEndpointAnnotation:
    def test_off_by_default_answers_stay_canonical(self, served):
        server, service, products, _ = served
        client = ServiceClient(server.url)
        answer = client.query(list(products[0]), kind="rtk", k=5)
        assert "_endpoint" not in answer
        expected = encode_result(
            service.engine.reverse_topk(products[0], 5), "rtk")
        assert canonical_json(answer) == canonical_json(expected)

    def test_opt_in_names_the_answering_endpoint(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url, annotate_endpoint=True)
        answer = client.query(list(products[0]), kind="rtk", k=5)
        assert answer["_endpoint"] == server.url
        health = client.healthz()
        assert health["_endpoint"] == server.url

    def test_annotation_survives_failover(self, served):
        server, _, products, _ = served
        client = ServiceClient(["http://127.0.0.1:9", server.url],
                               annotate_endpoint=True, retries=1,
                               backoff_base_s=0.0, backoff_cap_s=0.0)
        answer = client.query(list(products[0]), kind="rtk", k=3)
        # The dead first endpoint rotated away; the annotation names the
        # replica that actually answered.
        assert answer["_endpoint"] == server.url


@pytest.fixture
def silent_server():
    """A socket that accepts connections but never answers.

    Requests hang at the read, so only the *socket timeout* can end
    them — which is exactly what the per-call override must control.
    """
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    yield f"http://127.0.0.1:{sock.getsockname()[1]}"
    sock.close()


class TestPerCallTimeout:
    def test_override_caps_the_socket_wait(self, silent_server):
        import time

        # Client default of 30s; the per-call override must win, or
        # this test visibly hangs.
        client = ServiceClient(silent_server, timeout_s=30.0, retries=0)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.query([0.1, 0.1, 0.1], kind="rtk", k=5, timeout_s=0.2)
        assert time.monotonic() - start < 10.0

    def test_client_default_still_works_without_override(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url, timeout_s=30.0, retries=0)
        assert client.query(list(products[0]), kind="rtk", k=5)["kind"] \
            == "rtk"

    def test_healthz_per_call_override(self, served, silent_server):
        import time

        server, _, _, _ = served
        client = ServiceClient(silent_server, timeout_s=30.0, retries=2)
        start = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.healthz(timeout_s=0.2, retries=0)
        assert time.monotonic() - start < 10.0
        assert ServiceClient(server.url).healthz(
            timeout_s=10.0)["status"] == "ok"


class TestHeaderPropagation:
    def test_trace_id_header_reaches_the_server(self, served):
        server, service, products, _ = served
        client = ServiceClient(server.url)
        trace_id = "clienttestid42"
        client.query(list(products[1]), kind="rkr", k=4,
                     headers={"X-Trace-Id": trace_id})
        snapshot = service.traces_snapshot(trace_id=trace_id)
        assert snapshot["found"] is True

    def test_content_type_not_clobbered_by_extra_headers(self, served):
        server, _, products, _ = served
        client = ServiceClient(server.url)
        answer = client.query(list(products[2]), kind="rtk", k=3,
                              headers={"X-Extra": "1"})
        assert answer["kind"] == "rtk"
