"""Unit tests for the baseline algorithms (naive, SIM, BBR, MPA)."""

import numpy as np
import pytest

from repro.algorithms.base import duplicate_mask, strictly_dominates
from repro.algorithms.bbr import BranchBoundRTK
from repro.algorithms.mpa import MarkedPruningRKR
from repro.algorithms.naive import NaiveRRQ
from repro.algorithms.sim import SimpleScan
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import OpCounter


@pytest.fixture
def data():
    P = uniform_products(160, 4, seed=41)
    W = uniform_weights(140, 4, seed=42)
    return P, W


class TestBaseHelpers:
    def test_strictly_dominates(self):
        assert strictly_dominates(np.array([1.0, 2.0]), np.array([2.0, 3.0]))
        assert not strictly_dominates(np.array([1.0, 3.0]), np.array([2.0, 3.0]))
        assert not strictly_dominates(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_duplicate_mask(self):
        P = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        mask = duplicate_mask(P, np.array([1.0, 2.0]))
        assert mask.tolist() == [True, False, True]

    def test_dimension_checked(self, data):
        P, W = data
        alg = NaiveRRQ(P, W)
        with pytest.raises(DimensionMismatchError):
            alg.reverse_topk(np.zeros(7), 3)

    def test_k_checked(self, data):
        P, W = data
        alg = NaiveRRQ(P, W)
        with pytest.raises(InvalidParameterError):
            alg.reverse_topk(P[0], -1)

    def test_incompatible_sets_rejected(self):
        P = uniform_products(10, 3, seed=1)
        W = uniform_weights(10, 5, seed=2)
        with pytest.raises(DimensionMismatchError):
            NaiveRRQ(P, W)


class TestNaive:
    def test_figure1_rkr(self, figure1_data):
        """Figure 1(c): ranks of each phone per user, and the R-1R winner."""
        Pv, Wv = figure1_data
        from repro.data.datasets import ProductSet, WeightSet

        P = ProductSet(Pv, value_range=1.0)
        W = WeightSet(Wv)
        naive = NaiveRRQ(P, W)
        # p1 is ranked 3rd by Tom, 5th by Jerry, 3rd by Spike -> strict
        # ranks (count of better) are 2, 4, 2.  R-1R winner: Tom (index 0).
        result = naive.reverse_kranks(Pv[0], 1)
        assert result.entries == ((2, 0),)
        # p5: ranked 5/2/5 -> strict 4/1/4 -> Jerry.
        result = naive.reverse_kranks(Pv[4], 1)
        assert result.entries == ((1, 1),)

    def test_figure1_rtk(self, figure1_data):
        """Figure 1(b): RT-2 of p2 = all users, of p1 and p4 = empty."""
        Pv, Wv = figure1_data
        from repro.data.datasets import ProductSet, WeightSet

        P = ProductSet(Pv, value_range=1.0)
        W = WeightSet(Wv)
        naive = NaiveRRQ(P, W)
        assert naive.reverse_topk(Pv[1], 2).weights == frozenset({0, 1, 2})
        assert naive.reverse_topk(Pv[0], 2).weights == frozenset()
        assert naive.reverse_topk(Pv[3], 2).weights == frozenset()
        assert naive.reverse_topk(Pv[2], 2).weights == frozenset({0, 2})
        assert naive.reverse_topk(Pv[4], 2).weights == frozenset({1})

    def test_pairwise_counter(self, data):
        P, W = data
        c = OpCounter()
        NaiveRRQ(P, W).reverse_topk(np.full(4, 0.5) * 100, 5, counter=c)
        assert c.pairwise == P.size * W.size + W.size


class TestSimpleScan:
    def test_chunk_one_matches_default(self, data):
        P, W = data
        q = P[9]
        a = SimpleScan(P, W, chunk=1)
        b = SimpleScan(P, W)
        assert a.reverse_topk(q, 8).weights == b.reverse_topk(q, 8).weights
        assert a.reverse_kranks(q, 8).entries == b.reverse_kranks(q, 8).entries

    def test_early_termination_saves_work(self, data):
        P, W = data
        q = P.values.max(axis=0) * 0.999  # a terrible product
        c_small = OpCounter()
        c_exact = OpCounter()
        sim = SimpleScan(P, W)
        sim.reverse_topk(q, 1, counter=c_small)
        sim.reverse_kranks(q, W.size, counter=c_exact)
        assert c_small.pairwise < c_exact.pairwise

    def test_domin_buffer_shrinks_scans(self, data):
        P, W = data
        sim = SimpleScan(P, W)
        q = np.percentile(P.values, 90, axis=0)  # many dominators exist
        c = OpCounter()
        sim.reverse_kranks(q, 3, counter=c)
        assert c.dominated_skips > 0

    def test_rejects_bad_chunk(self, data):
        P, W = data
        with pytest.raises(ValueError):
            SimpleScan(P, W, chunk=0)


class TestBBR:
    def test_supports_rtk_only(self, data):
        P, W = data
        bbr = BranchBoundRTK(P, W)
        with pytest.raises(InvalidParameterError):
            bbr.reverse_kranks(P[0], 3)

    def test_matches_naive_various_k(self, data):
        P, W = data
        bbr = BranchBoundRTK(P, W)
        naive = NaiveRRQ(P, W)
        for k in (1, 10, 100):
            for qi in (0, 80):
                q = P[qi]
                assert (bbr.reverse_topk(q, k).weights
                        == naive.reverse_topk(q, k).weights)

    def test_group_level_acceptance(self, data):
        """A query that everything must accept exercises the possible<k path."""
        P, W = data
        bbr = BranchBoundRTK(P, W)
        q = np.zeros(4)
        assert bbr.reverse_topk(q, 1).size == W.size

    def test_group_level_rejection(self, data):
        P, W = data
        bbr = BranchBoundRTK(P, W)
        q = P.values.max(axis=0) * 0.9999
        assert bbr.reverse_topk(q, 1).size == 0


class TestMPA:
    def test_supports_rkr_only(self, data):
        P, W = data
        mpa = MarkedPruningRKR(P, W)
        with pytest.raises(InvalidParameterError):
            mpa.reverse_topk(P[0], 3)

    def test_matches_naive_various_k(self, data):
        P, W = data
        mpa = MarkedPruningRKR(P, W)
        naive = NaiveRRQ(P, W)
        for k in (1, 6, 30):
            for qi in (5, 120):
                q = P[qi]
                assert (mpa.reverse_kranks(q, k).entries
                        == naive.reverse_kranks(q, k).entries)

    def test_resolution_variants_agree(self, data):
        P, W = data
        naive = NaiveRRQ(P, W)
        q = P[33]
        expected = naive.reverse_kranks(q, 9).entries
        for c in (2, 5, 8):
            mpa = MarkedPruningRKR(P, W, resolution=c)
            assert mpa.reverse_kranks(q, 9).entries == expected

    def test_bucket_pruning_happens(self, data):
        P, W = data
        mpa = MarkedPruningRKR(P, W)
        c = OpCounter()
        mpa.reverse_kranks(P[0], 1, counter=c)
        # With k=1 most buckets should be marked (never refined per-w).
        assert c.approx_accessed < W.size
