"""Unit tests for DurableDynamicRRQ (repro.durability.engine) and the
dynamic-engine satellites it leans on (structured delete errors, compact
maps, LiveView).
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.durability import (
    DurableDynamicRRQ,
    current_snapshot_lsn,
    durability_report,
    read_wal,
    wal_path,
)
from repro.errors import (
    DataValidationError,
    DimensionMismatchError,
    InvalidParameterError,
)
from repro.ext.dynamic import DynamicRRQEngine


def oracle_answers(engine, q, k):
    """Exact answers over the engine's live rows, in stable-index space."""
    pv, wv = engine.products, engine.weights
    naive = NaiveRRQ(
        ProductSet(pv.live_values(), value_range=pv.value_range),
        WeightSet(wv.live_values()),
    )
    w_map = list(wv.live_indices())
    rtk = frozenset(int(w_map[j]) for j in naive.reverse_topk(q, k).weights)
    rkr = tuple(sorted((rank, int(w_map[j]))
                       for rank, j in naive.reverse_kranks(q, k).entries))
    return rtk, rkr


def assert_exact(engine, q, k):
    rtk, rkr = oracle_answers(engine, q, k)
    assert engine.reverse_topk(q, k).weights == rtk
    assert engine.reverse_kranks(q, k).entries == rkr


@pytest.fixture
def rng():
    return np.random.default_rng(902)


def mutate_a_bit(engine, rng, products=30, weights=12):
    for _ in range(products):
        engine.insert_product(rng.random(engine.params["dim"]) * 0.99)
    for _ in range(weights):
        w = rng.random(engine.params["dim"]) + 1e-3
        engine.insert_weight(w / w.sum())
    engine.delete_product(2)
    if products > 11:
        engine.delete_product(11)
    engine.delete_weight(min(3, weights - 1))


class TestRecovery:
    def test_reopen_replays_to_identical_answers(self, tmp_path, rng):
        q = rng.random(4) * 0.9
        with DurableDynamicRRQ(tmp_path / "db", dim=4,
                               fsync="never") as engine:
            mutate_a_bit(engine, rng)
            live_rtk = engine.reverse_topk(q, 5).weights
            live_rkr = engine.reverse_kranks(q, 5).entries
            acked = engine.last_lsn
        with DurableDynamicRRQ(tmp_path / "db", fsync="never") as recovered:
            assert recovered.last_lsn == acked
            assert recovered.replayed_records == acked  # no snapshot yet
            assert recovered.reverse_topk(q, 5).weights == live_rtk
            assert recovered.reverse_kranks(q, 5).entries == live_rkr
            assert_exact(recovered, q, 5)

    def test_snapshot_truncates_wal_and_recovery_uses_it(self, tmp_path, rng):
        q = rng.random(4) * 0.9
        with DurableDynamicRRQ(tmp_path / "db", dim=4,
                               fsync="never") as engine:
            mutate_a_bit(engine, rng)
            barrier = engine.snapshot()
            engine.insert_product(rng.random(4) * 0.9)
            tail_len = engine.last_lsn - barrier
            live = engine.reverse_topk(q, 5).weights
        records, _, _ = read_wal(wal_path(tmp_path / "db"))
        assert len(records) == tail_len  # prefix truncated at the barrier
        assert current_snapshot_lsn(tmp_path / "db") == barrier
        with DurableDynamicRRQ(tmp_path / "db", fsync="never") as recovered:
            assert recovered.snapshot_lsn == barrier
            assert recovered.replayed_records == tail_len
            assert recovered.reverse_topk(q, 5).weights == live

    def test_auto_snapshot_every(self, tmp_path, rng):
        with DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="never",
                               snapshot_every=10) as engine:
            for _ in range(25):
                engine.insert_product(rng.random(3) * 0.9)
            assert engine.snapshots_taken == 2
            assert engine.snapshot_lsn == 20

    def test_fresh_directory_requires_dim(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="dim"):
            DurableDynamicRRQ(tmp_path / "empty")

    def test_persisted_params_win_over_constructor(self, tmp_path, rng):
        with DurableDynamicRRQ(tmp_path / "db", dim=3, value_range=2.0,
                               fsync="never") as engine:
            engine.insert_product(rng.random(3))
        with DurableDynamicRRQ(tmp_path / "db", dim=7, value_range=9.0,
                               fsync="never") as recovered:
            assert recovered.params["dim"] == 3
            assert recovered.params["value_range"] == 2.0

    def test_durability_report_on_healthy_directory(self, tmp_path, rng):
        with DurableDynamicRRQ(tmp_path / "db", dim=3,
                               fsync="never") as engine:
            mutate_a_bit(engine, rng, products=5, weights=3)
            engine.snapshot()
            engine.insert_product(rng.random(3) * 0.9)
        report = durability_report(tmp_path / "db")
        assert report["ok"]
        assert report["snapshot"]["status"] == "ok"
        assert report["wal"]["status"] == "ok"
        assert report["wal"]["records"] == 1


class TestValidation:
    def test_rejected_mutation_leaves_no_wal_record(self, tmp_path):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="never")
        before = engine.last_lsn
        with pytest.raises(DataValidationError, match="sums to"):
            engine.insert_weight([0.9, 0.9, 0.9])
        with pytest.raises(DimensionMismatchError):
            engine.insert_product([0.1, 0.2])  # wrong dimensionality
        assert engine.last_lsn == before
        records, _, _ = read_wal(wal_path(tmp_path / "db"))
        assert records == []
        engine.close()

    def test_delete_out_of_range_is_structured(self, tmp_path):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="never")
        engine.insert_product([0.1, 0.2, 0.3])
        with pytest.raises(InvalidParameterError, match="out of range"):
            engine.delete_product(5)
        with pytest.raises(InvalidParameterError, match="out of range"):
            engine.delete_weight(0)
        assert engine.last_lsn == 1  # only the insert was acknowledged
        engine.close()

    def test_delete_tombstoned_is_structured(self, tmp_path):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="never")
        engine.insert_product([0.1, 0.2, 0.3])
        engine.insert_product([0.3, 0.2, 0.1])
        engine.delete_product(0)
        with pytest.raises(InvalidParameterError, match="deleted"):
            engine.delete_product(0)
        engine.close()


class TestDynamicSatellites:
    """The raw engine's new structured errors and compact maps."""

    def test_kill_distinguishes_out_of_range_from_tombstoned(self):
        engine = DynamicRRQEngine(dim=2)
        engine.insert_product(np.array([0.1, 0.2]))
        with pytest.raises(InvalidParameterError, match="out of range"):
            engine.remove_product(3)
        engine.remove_product(0)
        with pytest.raises(InvalidParameterError,
                           match="already deleted"):
            engine.remove_product(0)

    def test_compact_returns_old_to_new_maps(self, tmp_path, rng):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="never")
        for _ in range(6):
            engine.insert_product(rng.random(3) * 0.9)
        w = rng.random(3) + 1e-3
        engine.insert_weight(w / w.sum())
        engine.delete_product(1)
        engine.delete_product(4)
        p_map, w_map, lsn = engine.compact()
        assert list(p_map) == [0, -1, 1, 2, -1, 3]
        assert list(w_map) == [0]
        assert lsn == engine.last_lsn
        assert engine.products.live_count == 4
        engine.close()

    def test_live_view_has_no_static_values(self, tmp_path):
        """The absence of ``.values`` is the scheduler's signal that the
        arrays move underneath it."""
        engine = DurableDynamicRRQ(tmp_path / "db", dim=2, fsync="never")
        engine.insert_product([0.1, 0.2])
        assert not hasattr(engine.products, "values")
        assert engine.products.dim == 2
        assert engine.products.size == 1
        engine.close()


class TestBootstrap:
    def test_bootstrap_matches_naive_and_feeds_standbys(self, tmp_path):
        P = uniform_products(50, 3, value_range=1.0, seed=11)
        W = uniform_weights(20, 3, seed=12)
        naive = NaiveRRQ(P, W)
        engine = DurableDynamicRRQ.bootstrap(tmp_path / "db", P, W,
                                             fsync="never")
        q = P[7]
        assert engine.reverse_topk(q, 5).weights == \
            naive.reverse_topk(q, 5).weights
        # The initial state was logged as one reset record, so a standby
        # tailing from LSN 0 receives everything.
        feed = engine.replication_feed(0)
        standby = DurableDynamicRRQ(tmp_path / "standby", dim=3,
                                    fsync="never")
        from repro.durability.wal import WalRecord

        for raw in feed["records"]:
            standby.apply_replicated(WalRecord(raw["lsn"], raw["op"],
                                               raw["data"]))
        assert standby.last_lsn == engine.last_lsn
        assert standby.reverse_topk(q, 5).weights == \
            naive.reverse_topk(q, 5).weights
        engine.close()
        standby.close()

    def test_bootstrap_of_existing_directory_recovers(self, tmp_path):
        P = uniform_products(30, 3, value_range=1.0, seed=21)
        W = uniform_weights(10, 3, seed=22)
        first = DurableDynamicRRQ.bootstrap(tmp_path / "db", P, W,
                                            fsync="never")
        idx, _ = first.insert_product(np.array([0.5, 0.5, 0.5]))
        acked = first.last_lsn
        first.close()
        again = DurableDynamicRRQ.bootstrap(tmp_path / "db", P, W,
                                            fsync="never")
        assert again.last_lsn == acked  # recovery won; no re-seed
        assert again.num_products == P.size + 1
        again.close()


class TestStats:
    def test_durability_stats_shape(self, tmp_path, rng):
        with DurableDynamicRRQ(tmp_path / "db", dim=3,
                               fsync="always") as engine:
            mutate_a_bit(engine, rng, products=4, weights=2)
            engine.snapshot()
            stats = engine.durability_stats()
        assert stats["wal"]["fsync_policy"] == "always"
        assert stats["wal"]["appends"] == stats["last_lsn"]
        assert stats["wal"]["fsyncs"] >= stats["wal"]["appends"]
        assert stats["snapshots_taken"] == 1
        assert stats["snapshot_lsn"] == stats["last_lsn"]
        assert stats["replayed_records"] == 0
        assert stats["replay_time_s"] >= 0.0
