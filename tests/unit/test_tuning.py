"""Unit tests for the workload-adaptive auto-tuner (repro.tuning).

The contract under test: candidate enumeration is deterministic and
deduplicated, the offline ``AutoTuner`` only ever reports a verified
winner, and the serving-side ``ServiceTuner`` swaps the scheduler's
kernel with zero downtime — answers stay byte-identical to the naive
oracle across the flip, and the result cache can never serve a
pre-swap answer afterwards.
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import generate_products, generate_weights
from repro.errors import InvalidParameterError
from repro.service.server import QueryService, ServiceConfig
from repro.tuning import (
    AutoTuner,
    CandidateConfig,
    ServiceTuner,
    build_tuned_kernel,
    default_config,
    format_tune_report,
    poor_filtering,
    verify_against_naive,
)


@pytest.fixture(scope="module")
def clustered():
    # Clustered data is where tuning matters: equal-width cells are
    # mostly empty and the undecided fraction balloons.
    P = generate_products("CL", 120, 4, seed=41)
    W = generate_weights("CL", 300, 4, seed=42)
    return P, W


class TestCandidateConfig:
    def test_label_and_short_are_stable(self):
        config = CandidateConfig(partitions=32, boundaries="quantile")
        assert config.label() == "n32-quantile"
        assert config.short() == CandidateConfig(
            partitions=32, boundaries="quantile").short()
        assert config.short() != default_config().short()

    def test_label_encodes_non_defaults(self):
        config = CandidateConfig(partitions=8, use_domin=False,
                                 w_block=256, p_block=512,
                                 filter_dtype="float64")
        label = config.label()
        for token in ("n8", "nodomin", "w256p512", "float64"):
            assert token in label

    def test_round_trips_through_dict(self):
        config = CandidateConfig(partitions=64, boundaries="quantile",
                                 use_domin=False)
        again = CandidateConfig.from_dict(config.as_dict())
        assert again == config
        assert again.short() == config.short()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CandidateConfig(partitions=0)
        with pytest.raises(InvalidParameterError):
            CandidateConfig(partitions=8, boundaries="logspace")
        with pytest.raises(InvalidParameterError):
            CandidateConfig(partitions=8, w_block=0)
        with pytest.raises(InvalidParameterError):
            CandidateConfig.from_dict({"partitions": "many"})
        with pytest.raises(InvalidParameterError):
            CandidateConfig.from_dict({})

    def test_poor_filtering_verdict(self):
        bad = poor_filtering({"fractions": {"undecided": 0.3,
                                            "refined": 0.2}})
        assert bad["poor"] and bad["undecided_refined_fraction"] == 0.5
        good = poor_filtering({"fractions": {"undecided": 0.1,
                                             "refined": 0.05}})
        assert not good["poor"]
        # Exactly at the threshold is not poor (strictly greater fires).
        edge = poor_filtering({"fractions": {"undecided": 0.35}},
                              threshold=0.35)
        assert not edge["poor"]


class TestEnumeration:
    def test_ladder_includes_current_and_doubling(self, clustered):
        P, W = clustered
        tuner = AutoTuner(P, W, current=default_config(32))
        ns = tuner.candidate_partitions()
        assert 32 in ns and 64 in ns
        assert ns == sorted(set(ns))

    def test_doubling_is_capped(self, clustered):
        P, W = clustered
        tuner = AutoTuner(P, W, current=default_config(512))
        assert max(tuner.candidate_partitions()) == 512

    def test_candidates_deduplicated_current_first(self, clustered):
        P, W = clustered
        tuner = AutoTuner(P, W, current=default_config(32))
        candidates = tuner.candidates()
        shorts = [c.short() for c in candidates]
        assert len(shorts) == len(set(shorts))
        assert candidates[0] == tuner.current
        kinds = {c.boundaries for c in candidates}
        assert kinds == {"uniform", "quantile"}

    def test_probe_workload_is_pinned(self, clustered):
        P, W = clustered
        a = AutoTuner(P, W, probe_queries=4, seed=3).probe_workload()
        b = AutoTuner(P, W, probe_queries=4, seed=3).probe_workload()
        assert len(a) == 4
        for qa, qb in zip(a, b):
            np.testing.assert_array_equal(qa, qb)

    def test_parameter_validation(self, clustered):
        P, W = clustered
        with pytest.raises(InvalidParameterError):
            AutoTuner(P, W, k=0)
        with pytest.raises(InvalidParameterError):
            AutoTuner(P, W, probe_queries=0)


class TestTunedKernels:
    def test_quantile_kernel_is_exact(self, clustered):
        P, W = clustered
        config = CandidateConfig(partitions=16, boundaries="quantile")
        kernel = build_tuned_kernel(P, W, config)
        queries = [P[i] for i in (0, 17, 63)]
        assert verify_against_naive(kernel, P, W, queries, 5)

    def test_verify_catches_a_lying_engine(self, clustered):
        P, W = clustered

        class FakeAnswer:
            weights = frozenset({999})
            k = 5

        class Liar:
            def __init__(self, inner):
                self.inner = inner

            def reverse_topk(self, q, k):
                return FakeAnswer()

            def reverse_kranks(self, q, k):
                return self.inner.reverse_kranks(q, k)

        kernel = build_tuned_kernel(P, W, default_config(8))
        assert not verify_against_naive(Liar(kernel), P, W, [P[0]], 5)


class TestTuneReport:
    @pytest.fixture(scope="class")
    def report(self, clustered):
        P, W = clustered
        tuner = AutoTuner(P, W, k=5, probe_queries=4, seed=11,
                          current=default_config(32))
        return tuner.tune(), tuner

    def test_winner_is_best_by_measured_fraction(self, report):
        rep, _ = report
        fractions = [c["measured"]["undecided_refined_fraction"]
                     for c in rep["candidates"]]
        winner = rep["winner"]["measured"]["undecided_refined_fraction"]
        assert winner == min(fractions)
        assert rep["improvement"] == pytest.approx(
            rep["baseline"]["measured"]["undecided_refined_fraction"]
            - winner)

    def test_winner_verified_and_buildable(self, report, clustered):
        rep, tuner = report
        P, W = clustered
        assert rep["verified"] is True
        kernel = tuner.build_winner(rep)
        assert kernel.partitions == rep["winner"]["config"]["partitions"]

    def test_report_is_json_ready(self, report):
        import json

        rep, _ = report
        encoded = json.dumps(rep, sort_keys=True, default=float)
        assert json.loads(encoded)["schema"] == 1

    def test_format_marks_winner_and_current(self, report):
        rep, _ = report
        text = format_tune_report(rep)
        assert "<- winner" in text
        assert "improvement (undecided+refined):" in text
        assert "yes" in text.splitlines()[-1]


class TestServiceTuner:
    @pytest.fixture
    def service(self, clustered):
        P, W = clustered
        service = QueryService.from_datasets(
            P, W, method="gir",
            config=ServiceConfig(batch_window_s=0.0, cache_capacity=64),
        )
        yield service
        service.close()

    def test_forced_run_swaps_and_stays_exact(self, service, clustered):
        P, W = clustered
        naive = NaiveRRQ(P, W)
        tuner = ServiceTuner(service, probe_queries=4, k=5,
                             min_improvement=-1.0)
        before = service.query(P[5], kind="rtk", k=5)
        outcome = tuner.run_once(force=True)
        assert outcome["status"] in ("swapped", "rejected")
        assert outcome["verified"] is True
        after = service.query(P[5], kind="rtk", k=5)
        expect = sorted(naive.reverse_topk(P[5], 5).weights)
        assert before["weights"] == after["weights"] == expect
        if outcome["status"] == "swapped":
            assert tuner.status()["swaps"] == 1
            assert (tuner.status()["current_config"]
                    == outcome["winner"])

    def test_unforced_run_skips_quiet_service(self, service):
        tuner = ServiceTuner(service, threshold=0.99)
        outcome = tuner.run_once(force=False)
        assert outcome["status"] == "skipped"
        snap = service.metrics.snapshot()["tuner"]
        assert snap["runs"] == 1 and snap["swaps"] == 0

    def test_swap_invalidates_result_cache(self, service, clustered):
        P, _ = clustered
        service.query(P[3], kind="rtk", k=5)
        assert len(service.cache) == 1
        gen = service.cache.generation()
        tuner = ServiceTuner(service, probe_queries=4, k=5,
                             min_improvement=-1.0)
        outcome = tuner.run_once(force=True)
        if outcome["status"] == "swapped":
            assert len(service.cache) == 0
            assert service.cache.generation() == gen + 1

    def test_http_handlers(self, service):
        assert service.tuner_status() == {"enabled": False}
        outcome = service.handle_tuner_request({"force": True})
        assert outcome["status"] in ("swapped", "rejected")
        status = service.tuner_status()
        assert status["enabled"] is True and status["runs"] == 1
        assert status["auto"] is False

    def test_metrics_expose_tuner_counters(self, service):
        service.handle_tuner_request({"force": True})
        text = service.metrics.prometheus()
        assert "rrq_tuner_runs_total 1" in text
        assert "rrq_tuner_last_improvement" in text
        assert "rrq_tuner_last_undecided_refined_fraction" in text

    def test_background_thread_lifecycle(self, service):
        tuner = ServiceTuner(service, interval_s=30.0).start()
        assert tuner._thread is not None and tuner._thread.daemon
        tuner.stop()
        assert tuner._thread is None
        # interval 0 -> no thread at all.
        assert ServiceTuner(service).start()._thread is None


class TestServiceTunerDurable:
    @pytest.fixture
    def durable_service(self, tmp_path):
        from repro.durability import DurableDynamicRRQ
        from repro.service.server import DurableQueryService

        rng = np.random.default_rng(77)
        engine = DurableDynamicRRQ(tmp_path / "db", dim=4,
                                   backend="segmented", seal_every=8,
                                   auto_compact=False, fsync="never")
        service = DurableQueryService(
            engine,
            config=ServiceConfig(batch_window_s=0.0, cache_capacity=32),
        )
        # Two clusters of products -> clustered enough to tune on.
        for center in (0.2, 0.7):
            for _ in range(30):
                service.engine.insert_product(
                    np.clip(rng.normal(center, 0.03, 4), 0, 0.999))
        for _ in range(60):
            w = rng.uniform(0.1, 1.0, 4)
            service.engine.insert_weight(w / w.sum())
        yield service
        service.close()

    def test_mvcc_swap_keeps_answers_exact(self, durable_service):
        service = durable_service
        engine = service.engine
        q = engine.products[5]
        before = service.query(q, kind="rtk", k=5)
        tuner = ServiceTuner(service, probe_queries=4, k=5,
                             min_improvement=-1.0)
        outcome = tuner.run_once(force=True)
        assert outcome["verified"] is True
        after = service.query(q, kind="rtk", k=5)
        assert before["weights"] == after["weights"]
        assert after["weights"] == sorted(engine.reverse_topk(q, 5).weights)
        if outcome["status"] == "swapped":
            # The MVCC swap sealed a fresh generation and retargeted
            # the scheduler's snapshot kernels at the tuned config.
            assert service.scheduler._snapshot_tuning is not None

    def test_post_swap_mutations_stay_visible(self, durable_service):
        service = durable_service
        engine = service.engine
        tuner = ServiceTuner(service, probe_queries=4, k=5,
                             min_improvement=-1.0)
        tuner.run_once(force=True)
        q = engine.products[3]
        service.query(q, kind="rtk", k=5)       # prime the cache
        engine.insert_weight(np.full(4, 0.25))  # mutation invalidates
        fresh = service.query(q, kind="rtk", k=5)
        assert fresh["weights"] == sorted(engine.reverse_topk(q, 5).weights)


class TestDatasetExtraction:
    def test_static_engine_datasets(self, clustered):
        P, W = clustered
        service = QueryService.from_datasets(
            P, W, config=ServiceConfig(batch_window_s=0.0))
        try:
            tuner = ServiceTuner(service)
            products, weights = tuner._datasets()
            assert products.size == P.size and weights.size == W.size
        finally:
            service.close()

    def test_flat_dynamic_engine_has_no_datasets(self):
        from repro.ext.dynamic import DynamicRRQEngine

        engine = DynamicRRQEngine(dim=2, value_range=1.0, partitions=4)
        engine.insert_product([0.5, 0.5])

        class FakeService:
            pass

        service = FakeService()
        service.engine = engine
        tuner = ServiceTuner.__new__(ServiceTuner)
        tuner.service = service
        assert tuner._datasets() is None
