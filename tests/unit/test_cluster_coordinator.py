"""Coordinator semantics over in-process HTTP workers.

The workers here are real ``serve_in_background`` HTTP servers (sockets,
threads, canonical JSON) — only the *processes* are elided, which keeps
these tests fast; the subprocess/SIGKILL acceptance path lives in
``tests/integration/test_cluster.py``.
"""

from contextlib import ExitStack

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.cluster import (
    ClusterCoordinator,
    ClusterTopology,
    partition_weight_indices,
)
from repro.data.datasets import WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError, ServiceUnavailableError
from repro.service.server import (
    QueryService,
    canonical_json,
    encode_result,
    serve_in_background,
)

PRODUCTS = uniform_products(size=90, dim=3, seed=421)
WEIGHTS = uniform_weights(size=70, dim=3, seed=422)
ORACLE = NaiveRRQ(PRODUCTS, WEIGHTS)


def start_cluster(stack, partitioner="range", shards=3):
    """3 in-process HTTP workers over weight slices + a coordinator."""
    owned = partition_weight_indices(WEIGHTS.size, shards, partitioner)
    urls = []
    for s in range(shards):
        service = QueryService.from_datasets(
            PRODUCTS, WeightSet(WEIGHTS.values[owned[s]]), method="naive")
        server = stack.enter_context(serve_in_background(service))
        urls.append(server.url)
    topology = ClusterTopology.build([[u] for u in urls], WEIGHTS.size,
                                     partitioner)
    coordinator = ClusterCoordinator(topology, products=PRODUCTS,
                                     weights=WEIGHTS, shard_timeout_s=10.0)
    stack.callback(coordinator.close)
    return coordinator, urls


def expected(q, kind, k):
    if kind == "rtk":
        return encode_result(ORACLE.reverse_topk(q, k), "rtk")
    return encode_result(ORACLE.reverse_kranks(q, k), "rkr")


class TestScatterGather:
    @pytest.mark.parametrize("partitioner", ["range", "mod"])
    @pytest.mark.parametrize("kind", ["rtk", "rkr"])
    def test_byte_identical_to_single_node(self, partitioner, kind):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack, partitioner)
            rng = np.random.default_rng(7)
            for _ in range(4):
                q = PRODUCTS[int(rng.integers(0, PRODUCTS.size))]
                got = coordinator.query(list(q), kind=kind, k=8)
                assert canonical_json(got) == \
                    canonical_json(expected(q, kind, 8))

    def test_product_reference_queries(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            got = coordinator.query(product=11, kind="rkr", k=5)
            assert canonical_json(got) == \
                canonical_json(expected(PRODUCTS[11], "rkr", 5))

    def test_parameter_validation(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            with pytest.raises(InvalidParameterError):
                coordinator.query([0.1] * 3, kind="nope")
            with pytest.raises(InvalidParameterError):
                coordinator.query([0.1] * 3, k=0)
            with pytest.raises(InvalidParameterError):
                coordinator.query([0.1] * 3, product=1)
            with pytest.raises(InvalidParameterError):
                coordinator.query()


class TestPartialFailure:
    @pytest.mark.parametrize("kind", ["rtk", "rkr"])
    def test_dead_shard_with_fallback_stays_exact(self, kind):
        with ExitStack() as stack:
            coordinator, urls = start_cluster(stack)
            # Point shard 1's client at a dead port: its sub-requests
            # fail like a crashed worker's would.
            coordinator.clients[1].endpoints = ["http://127.0.0.1:9"]
            q = PRODUCTS[3]
            got = coordinator.query(list(q), kind=kind, k=6)
            assert got.pop("degraded") is True
            assert got.pop("degraded_shards") == [1]
            assert canonical_json(got) == canonical_json(expected(q, kind, 6))

    def test_dead_shard_without_fallback_is_flagged_partial(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            coordinator.products = None
            coordinator.weights = None
            coordinator.clients[0].endpoints = ["http://127.0.0.1:9"]
            q = PRODUCTS[3]
            got = coordinator.query(list(q), kind="rtk", k=6)
            assert got["degraded"] is True
            assert got["degraded_shards"] == [0]
            full = set(expected(q, "rtk", 6)["weights"])
            missing = set(coordinator.topology.owned_globals(0).tolist())
            assert set(got["weights"]) == full - missing

    def test_all_shards_dead_without_fallback_raises(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            coordinator.products = None
            coordinator.weights = None
            for client in coordinator.clients:
                client.endpoints = ["http://127.0.0.1:9"]
            with pytest.raises(ServiceUnavailableError):
                coordinator.query([0.2, 0.2, 0.2], kind="rtk", k=4)

    def test_all_shards_dead_with_fallback_stays_exact(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            for client in coordinator.clients:
                client.endpoints = ["http://127.0.0.1:9"]
            q = PRODUCTS[8]
            got = coordinator.query(list(q), kind="rkr", k=6)
            assert got.pop("degraded") is True
            assert got.pop("degraded_shards") == [0, 1, 2]
            assert canonical_json(got) == canonical_json(expected(q, "rkr", 6))

    def test_breaker_opens_after_repeated_failures(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            coordinator.clients[2].endpoints = ["http://127.0.0.1:9"]
            from repro.cluster.coordinator import (
                DEFAULT_SHARD_BREAKER_THRESHOLD,
            )

            for _ in range(DEFAULT_SHARD_BREAKER_THRESHOLD):
                coordinator.query([0.2, 0.2, 0.2], kind="rtk", k=4)
            assert coordinator.stats()["breakers"]["2"] != "closed"
            # Queries keep answering exactly through the fallback.
            q = PRODUCTS[1]
            got = coordinator.query(list(q), kind="rtk", k=4)
            assert got.pop("degraded") is True
            got.pop("degraded_shards")
            assert canonical_json(got) == canonical_json(expected(q, "rtk", 4))

    def test_shard_health_reports_unreachable(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            coordinator.clients[1].endpoints = ["http://127.0.0.1:9"]
            health = coordinator.shard_health(timeout_s=0.5)
            assert health["status"] == "unreachable"
            statuses = [s["status"] for s in health["shards"]]
            assert statuses == ["ok", "unreachable", "ok"]


class TestMutationRouting:
    def test_compact_is_rejected(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            with pytest.raises(InvalidParameterError, match="rebalance"):
                coordinator.route_mutation("/compact", {})

    def test_unknown_route_is_rejected(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            with pytest.raises(InvalidParameterError):
                coordinator.route_mutation("/truncate", {})

    def test_promote_requires_shard(self):
        with ExitStack() as stack:
            coordinator, _ = start_cluster(stack)
            with pytest.raises(InvalidParameterError, match="shard"):
                coordinator.route_mutation("/promote", {})
            with pytest.raises(InvalidParameterError, match="replica"):
                coordinator.route_mutation(
                    "/promote", {"shard": 0,
                                 "endpoint": "http://127.0.0.1:1"})
