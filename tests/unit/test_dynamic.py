"""Unit tests for the dynamic (updatable) engine (repro.ext.dynamic)."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DataValidationError, InvalidParameterError
from repro.ext.dynamic import DynamicRRQEngine


def oracle_for_live(engine):
    """A NaiveRRQ over the engine's live rows, with index translation."""
    P_live = engine._products.view[engine._products.alive]
    W_live = engine._weights.view[engine._weights.alive]
    p_map = np.flatnonzero(engine._products.alive)
    w_map = np.flatnonzero(engine._weights.alive)
    products = ProductSet(P_live, value_range=engine.value_range)
    weights = WeightSet(W_live)
    return NaiveRRQ(products, weights), p_map, w_map


def assert_agrees(engine, q, k):
    naive, _, w_map = oracle_for_live(engine)
    expected_rtk = frozenset(int(w_map[j]) for j in naive.reverse_topk(q, k).weights)
    got_rtk = engine.reverse_topk(q, k).weights
    assert got_rtk == expected_rtk
    expected_rkr = tuple(
        sorted((rank, int(w_map[j]))
               for rank, j in naive.reverse_kranks(q, k).entries)
    )
    got_rkr = engine.reverse_kranks(q, k).entries
    assert got_rkr == expected_rkr


@pytest.fixture
def seeded_engine():
    P = uniform_products(120, 4, value_range=1.0, seed=501)
    W = uniform_weights(100, 4, seed=502)
    return DynamicRRQEngine.from_datasets(P, W, partitions=16), P, W


class TestConstruction:
    def test_from_datasets_counts(self, seeded_engine):
        engine, P, W = seeded_engine
        assert engine.num_products == 120
        assert engine.num_weights == 100
        assert engine.fragmentation() == 0.0

    def test_empty_engine_rejects_queries(self):
        engine = DynamicRRQEngine(dim=3)
        with pytest.raises(InvalidParameterError):
            engine.reverse_topk(np.zeros(3), 5)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DynamicRRQEngine(dim=0)
        with pytest.raises(InvalidParameterError):
            DynamicRRQEngine(dim=3, value_range=-1)


class TestInsert:
    def test_matches_oracle_after_inserts(self, seeded_engine):
        engine, P, W = seeded_engine
        rng = np.random.default_rng(503)
        for _ in range(30):
            engine.insert_product(rng.random(4) * 0.999)
        for _ in range(20):
            engine.insert_weight(rng.dirichlet(np.ones(4)))
        assert_agrees(engine, P.values[0], 8)

    def test_growth_beyond_initial_capacity(self):
        engine = DynamicRRQEngine(dim=2, value_range=1.0, partitions=8)
        rng = np.random.default_rng(504)
        for _ in range(100):  # > MIN_CAPACITY, forces several doublings
            engine.insert_product(rng.random(2) * 0.99)
        for _ in range(60):
            engine.insert_weight(rng.dirichlet(np.ones(2)))
        assert engine.num_products == 100
        assert_agrees(engine, engine._products.view[0], 5)

    def test_weight_axis_rebuild_on_outlier(self):
        """A new weight above the observed range triggers re-quantization
        without breaking answers."""
        engine = DynamicRRQEngine(dim=3, value_range=1.0, partitions=8)
        rng = np.random.default_rng(505)
        for _ in range(30):
            engine.insert_product(rng.random(3) * 0.99)
        # Balanced weights first: small observed range.
        for _ in range(20):
            engine.insert_weight(np.full(3, 1 / 3))
        old_range = engine._w_range
        engine.insert_weight(np.array([0.9, 0.05, 0.05]))  # outlier
        assert engine._w_range > old_range
        assert_agrees(engine, engine._products.view[3], 4)

    def test_insert_validation(self, seeded_engine):
        engine, _, _ = seeded_engine
        with pytest.raises(DataValidationError):
            engine.insert_product(np.array([2.0, 0.1, 0.1, 0.1]))  # >= range
        with pytest.raises(DataValidationError):
            engine.insert_weight(np.array([0.5, 0.1, 0.1, 0.1]))  # bad sum
        assert engine.insert_weight(np.array([2.0, 1.0, 0.5, 0.5]),
                                    renormalize=True) >= 0


class TestRemove:
    def test_matches_oracle_after_removals(self, seeded_engine):
        engine, P, _ = seeded_engine
        for idx in (0, 5, 7, 119):
            engine.remove_product(idx)
        for idx in (1, 50, 99):
            engine.remove_weight(idx)
        assert engine.num_products == 116
        assert engine.num_weights == 97
        assert_agrees(engine, P.values[3], 6)

    def test_remove_then_query_excludes_row(self, seeded_engine):
        engine, P, _ = seeded_engine
        q = P.values[10]
        before = engine.reverse_kranks(q, 5)
        victim = before.entries[0][1]
        engine.remove_weight(victim)
        after = engine.reverse_kranks(q, 5)
        assert victim not in after.weights

    def test_double_remove_rejected(self, seeded_engine):
        engine, _, _ = seeded_engine
        engine.remove_product(3)
        with pytest.raises(InvalidParameterError):
            engine.remove_product(3)

    def test_interleaved_mutations(self, seeded_engine):
        engine, P, _ = seeded_engine
        rng = np.random.default_rng(506)
        for step in range(25):
            action = step % 4
            if action == 0:
                engine.insert_product(rng.random(4) * 0.99)
            elif action == 1:
                engine.insert_weight(rng.dirichlet(np.ones(4)))
            elif action == 2:
                live = np.flatnonzero(engine._products.alive)
                engine.remove_product(int(rng.choice(live)))
            else:
                live = np.flatnonzero(engine._weights.alive)
                engine.remove_weight(int(rng.choice(live)))
        assert_agrees(engine, P.values[20], 7)


class TestCompact:
    def test_compact_preserves_answers(self, seeded_engine):
        engine, P, _ = seeded_engine
        for idx in range(0, 40, 3):
            engine.remove_product(idx)
        for idx in range(0, 30, 4):
            engine.remove_weight(idx)
        q = P.values[50]
        before_rkr = engine.reverse_kranks(q, 6)
        frag = engine.fragmentation()
        assert frag > 0
        p_map, w_map = engine.compact()
        assert engine.fragmentation() == 0.0
        after_rkr = engine.reverse_kranks(q, 6)
        translated = tuple(
            sorted((rank, int(w_map[j])) for rank, j in before_rkr.entries)
        )
        assert after_rkr.entries == translated
        assert_agrees(engine, q, 6)

    def test_compact_maps(self, seeded_engine):
        engine, _, _ = seeded_engine
        engine.remove_product(0)
        p_map, w_map = engine.compact()
        assert p_map[0] == -1
        assert p_map[1] == 0  # shifted down
        assert np.all(w_map == np.arange(len(w_map)))


class TestModify:
    def test_modify_product_tombstones_and_reinserts(self, seeded_engine):
        engine, P, _ = seeded_engine
        replacement = np.clip(P.values[1] * 0.5, 0, 0.9)
        new_idx = engine.modify_product(3, replacement)
        assert new_idx == engine.products.size - 1
        with pytest.raises(InvalidParameterError):
            engine.products[3]
        np.testing.assert_array_equal(engine.products[new_idx], replacement)
        assert_agrees(engine, P.values[10], 5)

    def test_modify_weight_renormalizes(self, seeded_engine):
        engine, P, _ = seeded_engine
        raw = np.ones(4) * 2.5
        new_idx = engine.modify_weight(2, raw, renormalize=True)
        np.testing.assert_allclose(engine.weights[new_idx], np.full(4, 0.25))
        with pytest.raises(InvalidParameterError):
            engine.weights[2]
        assert_agrees(engine, P.values[11], 5)

    def test_modify_validates_before_mutating(self, seeded_engine):
        engine, _, _ = seeded_engine
        with pytest.raises(DataValidationError):
            engine.modify_product(3, np.full(4, 2.0))  # out of range
        engine.products[3]  # still live: validation ran first
        with pytest.raises(DataValidationError):
            engine.modify_weight(2, np.full(4, 0.5))  # sums to 2.0
        engine.weights[2]


class TestLiveViewConcurrency:
    def test_read_during_append_is_coherent(self):
        """Regression: a reader racing appends (including buffer growth)
        must never pair a new alive mask with an old data buffer, tear a
        half-written row, or crash.  Rows are constant-valued so any torn
        or misaligned read shows up as a non-constant row."""
        import threading

        from repro.ext.dynamic import MIN_CAPACITY, _GrowableMatrix, LiveView

        dim = 4
        total = MIN_CAPACITY * 64  # force several copy-on-grow cycles
        matrix = _GrowableMatrix(dim)
        view = LiveView(matrix, value_range=1.0)
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                try:
                    rows = view.live_values()
                    if rows.size:
                        # Every published row is constant-valued.
                        if not np.all(rows == rows[:, :1]):
                            errors.append("torn row observed")
                            return
                    idx = matrix.total_count - 1
                    if idx >= 0:
                        row = view[idx]
                        if not np.all(row == row[0]):
                            errors.append(f"torn row at {idx}")
                            return
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(f"{type(exc).__name__}: {exc}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for i in range(total):
                matrix.append(np.full(dim, (i % 97) / 97.0))
        finally:
            done.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors, errors
        assert matrix.generation >= 5  # growth actually happened
        assert view.live_count == total

    def test_old_views_frozen_after_growth(self):
        from repro.ext.dynamic import MIN_CAPACITY, _GrowableMatrix

        matrix = _GrowableMatrix(2)
        for i in range(MIN_CAPACITY):
            matrix.append(np.full(2, float(i)))
        rows_before, alive_before, used = matrix.snapshot_state()
        frozen = rows_before.copy()
        for i in range(MIN_CAPACITY * 3):  # grows at least twice
            matrix.append(np.full(2, -1.0))
        np.testing.assert_array_equal(rows_before, frozen)
        assert used == MIN_CAPACITY
