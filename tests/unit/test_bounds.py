"""Unit tests for repro.core.bounds (the three cases of Section 3.1)."""

import numpy as np
import pytest

from repro.core.bounds import Case, classify, classify_batch, sandwich_holds


class TestClassifyScalar:
    def test_case1_precedes(self):
        assert classify(0.1, 0.2, 0.5) is Case.PRECEDES

    def test_case2_preceded(self):
        assert classify(0.6, 0.9, 0.5) is Case.PRECEDED

    def test_case3_straddling(self):
        assert classify(0.3, 0.7, 0.5) is Case.INCOMPARABLE

    def test_boundaries_are_case3(self):
        # Conservative classification: equality never decides the pair.
        assert classify(0.5, 0.8, 0.5) is Case.INCOMPARABLE
        assert classify(0.2, 0.5, 0.5) is Case.INCOMPARABLE

    def test_degenerate_bounds(self):
        assert classify(0.5, 0.5, 0.5) is Case.INCOMPARABLE


class TestClassifyBatch:
    def test_masks_partition(self):
        rng = np.random.default_rng(1)
        lower = rng.random(100)
        upper = lower + rng.random(100)
        c1, c2, c3 = classify_batch(lower, upper, 0.8)
        combined = c1.astype(int) + c2.astype(int) + c3.astype(int)
        assert np.all(combined == 1)

    def test_matches_scalar(self):
        lower = np.array([0.1, 0.6, 0.3, 0.5])
        upper = np.array([0.2, 0.9, 0.7, 0.8])
        c1, c2, c3 = classify_batch(lower, upper, 0.5)
        for i in range(4):
            expected = classify(lower[i], upper[i], 0.5)
            got = (Case.PRECEDES if c1[i]
                   else Case.PRECEDED if c2[i] else Case.INCOMPARABLE)
            assert got == expected


class TestSandwich:
    def test_valid_sandwich(self):
        scores = np.array([0.2, 0.5])
        assert sandwich_holds(scores - 0.1, scores, scores + 0.1)

    def test_tolerates_roundoff(self):
        scores = np.array([0.5])
        assert sandwich_holds(scores + 1e-12, scores, scores - 1e-12)

    def test_detects_violation(self):
        scores = np.array([0.5])
        assert not sandwich_holds(np.array([0.6]), scores, np.array([0.9]))
        assert not sandwich_holds(np.array([0.1]), scores, np.array([0.4]))
