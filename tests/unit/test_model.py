"""Unit tests for repro.core.model (Section 5.3 performance model)."""

import math

import numpy as np
import pytest

from repro.core import model
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import InvalidParameterError


class TestDice:
    def test_two_dice_classic(self):
        # Two six-sided dice: 6 ways to roll 7, 1 way to roll 2 or 12.
        assert model.dice_ways(7, 2, 6) == 6
        assert model.dice_ways(2, 2, 6) == 1
        assert model.dice_ways(12, 2, 6) == 1

    def test_out_of_range_totals(self):
        assert model.dice_ways(1, 2, 6) == 0
        assert model.dice_ways(13, 2, 6) == 0

    def test_ways_match_bruteforce(self):
        import itertools

        faces, dice = 4, 3
        counts = {}
        for roll in itertools.product(range(1, faces + 1), repeat=dice):
            counts[sum(roll)] = counts.get(sum(roll), 0) + 1
        for total, ways in counts.items():
            assert model.dice_ways(total, dice, faces) == ways

    def test_probabilities_sum_to_one(self):
        dice, faces = 4, 9
        total_prob = sum(
            model.dice_probability(s, dice, faces)
            for s in range(dice, dice * faces + 1)
        )
        assert total_prob == pytest.approx(1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            model.dice_ways(3, 0, 6)

    def test_score_cell_probability(self):
        # d=1, n=2 -> 4 equally likely cells.
        assert model.score_cell_probability(1, 1, 2) == pytest.approx(0.25)


class TestNormalApproximation:
    def test_subscore_moments_equation16(self):
        mu, sigma = model.subscore_moments(1.0)
        assert mu == pytest.approx(0.5)
        assert sigma == pytest.approx(1.0 / (2.0 * math.sqrt(3.0)))

    def test_score_params_equation19(self):
        mu_p, sigma_p = model.score_distribution_params(16, 1.0)
        assert mu_p == pytest.approx(8.0)
        assert sigma_p == pytest.approx(math.sqrt(16) / (2 * math.sqrt(3)))

    def test_pdf_integrates_to_one(self):
        xs = np.linspace(-5, 15, 20001)
        pdf = model.score_pdf(xs, 10, 1.0)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        assert trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-3)

    def test_empirical_subscore_distribution(self):
        """The CLT claim of Lemma 1: standardized mean sub-scores are
        roughly N(0,1) for moderate d."""
        rng = np.random.default_rng(6)
        d = 36
        # Note: the model assumes w*p uniform per dimension; emulate that.
        sub = rng.random((5000, d)) * rng.random((5000, d))
        # Each factor uniform makes the product non-uniform; instead draw
        # the sub-scores uniform directly, as the model states.
        sub = rng.random((5000, d))
        mu, sigma = model.subscore_moments(1.0)
        z = math.sqrt(d) / sigma * (sub.mean(axis=1) - mu)
        assert abs(z.mean()) < 0.1
        assert abs(z.std() - 1.0) < 0.1


class TestTheorem1:
    def test_worked_example_d20(self):
        """Section 5.3: d = 20, eps = 1% -> n = 32 (next power of two)."""
        bound = model.required_partitions(20, 0.01)
        assert 20 < bound < 32
        assert model.recommend_partitions(20, 0.01) == 32

    def test_worst_case_filtering_d20_n32(self):
        """n = 32 must guarantee > 99% filtering at d = 20."""
        assert model.worst_case_filtering(20, 32) > 0.99

    def test_filtering_monotone_in_n(self):
        values = [model.worst_case_filtering(20, n) for n in (4, 8, 16, 32, 64)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_filtering_decreases_with_d(self):
        assert (model.worst_case_filtering(50, 16)
                < model.worst_case_filtering(5, 16))

    def test_recommended_n_grows_with_d(self):
        assert (model.recommend_partitions(50, 0.01)
                >= model.recommend_partitions(5, 0.01))

    def test_recommendation_satisfies_target(self):
        for d in (4, 10, 20, 40):
            n = model.recommend_partitions(d, 0.01)
            assert model.worst_case_filtering(d, n) > 0.99

    def test_non_power_of_two_option(self):
        n = model.recommend_partitions(20, 0.01, power_of_two=False)
        assert 24 <= n <= 26

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            model.required_partitions(10, 0.0)
        with pytest.raises(InvalidParameterError):
            model.required_partitions(10, 1.5)

    def test_grid_memory_section53(self):
        """32x32 grid: 'less than 8K (32*32*8) bytes' per the paper."""
        assert model.grid_memory_bytes(32) == 33 * 33 * 8
        assert model.grid_memory_bytes(32) < 10_000

    def test_grid_interval_width(self):
        assert model.grid_interval_width(20, 32, 1.0) == pytest.approx(
            20 / 1024
        )


class TestMeasuredFiltering:
    def test_measured_below_idealized_model(self):
        """Reproduction finding (see EXPERIMENTS.md): the Section 5.3 model
        assumes each per-dimension product is quantized into n^2 equal
        intervals, but the real grid cell for codes (i, j) spans
        (i+j+1)/n^2.  Measured bound-only filtering therefore sits well
        below the model's prediction — around 0.7-0.8 at d=6, n=32 on UN
        data — while still being substantial."""
        P = uniform_products(300, 6, value_range=1.0, seed=8).values
        W = uniform_weights(30, 6, seed=9).values
        queries = P[:3]
        measured = model.measure_filtering(P, W, 32, 1.0, queries)
        assert 0.6 < measured < model.worst_case_filtering(6, 32)

    def test_more_partitions_filter_more(self):
        P = uniform_products(200, 6, value_range=1.0, seed=10).values
        W = uniform_weights(20, 6, seed=11).values
        queries = P[:2]
        coarse = model.measure_filtering(P, W, 4, 1.0, queries)
        fine = model.measure_filtering(P, W, 64, 1.0, queries)
        assert fine > coarse


class TestCeilPartitions:
    """The single normalization point between Theorem 1's real-valued
    bound and an integer grid size (regression: callers used to
    truncate/round the float themselves, inconsistently)."""

    def test_ceil_and_floor_clamp(self):
        assert model.ceil_partitions(4.001) == 5
        assert model.ceil_partitions(4.0) == 4
        assert model.ceil_partitions(0.3) == 1
        assert model.ceil_partitions(-7.0) == 1

    def test_non_finite_bounds_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InvalidParameterError):
                model.ceil_partitions(bad)
        with pytest.raises(InvalidParameterError):
            model.ceil_partitions("many")

    def test_non_finite_epsilon_rejected(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(InvalidParameterError):
                model.required_partitions(8, bad)
            with pytest.raises(InvalidParameterError):
                model.recommend_partitions(8, bad)

    def test_recommendation_goes_through_ceil(self):
        bound = model.required_partitions(20, 0.01)
        n = model.recommend_partitions(20, 0.01, power_of_two=False)
        assert n == model.ceil_partitions(bound)
        assert n >= 1
