"""Unit tests for repro.queries.ta (Fagin's Threshold Algorithm) and the
RTA reverse top-k baseline built on it."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.algorithms.rta import ThresholdRTK
from repro.data.synthetic import (
    clustered_products,
    uniform_products,
    uniform_weights,
)
from repro.errors import InvalidParameterError
from repro.queries.ta import SortedAccessIndex, ta_kth_score, ta_top_k
from repro.queries.topk import top_k
from repro.stats.counters import OpCounter


@pytest.fixture
def index_and_data():
    P = uniform_products(300, 5, value_range=1.0, seed=201).values
    W = uniform_weights(40, 5, seed=202).values
    return SortedAccessIndex(P), P, W


class TestSortedAccessIndex:
    def test_orders_are_ascending(self, index_and_data):
        index, P, _ = index_and_data
        for i in range(P.shape[1]):
            column = P[index.order[i], i]
            assert np.all(np.diff(column) >= 0)

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            SortedAccessIndex(np.empty((0, 2)))

    def test_properties(self, index_and_data):
        index, P, _ = index_and_data
        assert index.size == 300
        assert index.dim == 5


class TestTATopK:
    def test_matches_exhaustive_topk(self, index_and_data):
        index, P, W = index_and_data
        for j in range(10):
            for k in (1, 5, 20):
                got = [idx for _, idx in ta_top_k(index, W[j], k)]
                assert got == top_k(P, W[j], k)

    def test_scores_are_correct(self, index_and_data):
        index, P, W = index_and_data
        for score, idx in ta_top_k(index, W[0], 7):
            assert score == pytest.approx(float(np.dot(W[0], P[idx])))

    def test_early_termination_happens(self, index_and_data):
        """TA must stop long before exhausting P on typical data."""
        index, P, W = index_and_data
        counter = OpCounter()
        ta_top_k(index, W[0], 5, counter)
        assert counter.early_terminations == 1
        assert counter.pairwise < P.shape[0]

    def test_k_larger_than_data(self, index_and_data):
        index, P, W = index_and_data
        assert len(ta_top_k(index, W[0], 10_000)) == P.shape[0]

    def test_k_validation(self, index_and_data):
        index, _, W = index_and_data
        with pytest.raises(InvalidParameterError):
            ta_top_k(index, W[0], 0)

    def test_dimension_validation(self, index_and_data):
        index, _, _ = index_and_data
        with pytest.raises(InvalidParameterError):
            ta_top_k(index, np.ones(3) / 3, 5)

    def test_zero_weight_components(self):
        """Dimensions with zero weight must not break the threshold."""
        P = uniform_products(100, 4, value_range=1.0, seed=203).values
        index = SortedAccessIndex(P)
        w = np.array([0.5, 0.5, 0.0, 0.0])
        got = [idx for _, idx in ta_top_k(index, w, 8)]
        assert got == top_k(P, w, 8)

    def test_kth_score(self, index_and_data):
        index, P, W = index_and_data
        scores = np.sort(P @ W[3])
        assert ta_kth_score(index, W[3], 9) == pytest.approx(scores[8])


class TestRTA:
    def test_matches_naive(self):
        P = uniform_products(200, 4, seed=204)
        W = uniform_weights(150, 4, seed=205)
        rta = ThresholdRTK(P, W)
        naive = NaiveRRQ(P, W)
        for qi in (0, 60, 199):
            for k in (1, 8, 50):
                q = P[qi]
                assert (rta.reverse_topk(q, k).weights
                        == naive.reverse_topk(q, k).weights)

    def test_matches_naive_clustered(self):
        P = clustered_products(180, 4, seed=206)
        W = uniform_weights(120, 4, seed=207)
        rta = ThresholdRTK(P, W)
        naive = NaiveRRQ(P, W)
        q = P[10]
        assert (rta.reverse_topk(q, 12).weights
                == naive.reverse_topk(q, 12).weights)

    def test_rkr_unsupported(self):
        P = uniform_products(20, 3, seed=208)
        W = uniform_weights(20, 3, seed=209)
        with pytest.raises(InvalidParameterError):
            ThresholdRTK(P, W).reverse_kranks(P[0], 3)

    def test_engine_exposes_rta(self):
        from repro.queries.engine import RRQEngine, available_methods

        assert "rta" in available_methods()
        P = uniform_products(50, 3, seed=210)
        W = uniform_weights(40, 3, seed=211)
        engine = RRQEngine(P, W, method="rta")
        assert engine.reverse_topk(P[0], 5).k == 5
