"""Chaos tests for crash-safe index persistence.

The contract under attack (ISSUE acceptance): an interrupted or
corrupted save must **never** yield an index that loads successfully but
answers incorrectly.  Every outcome here is one of:

* the save crashes and the *old* index still loads bit-exact;
* the load raises a structured :class:`IndexCorruptionError` /
  :class:`DataValidationError`;
* recovery rebuilds the damaged derived artifacts and the healed index
  answers byte-identically to the exact naive scan.
"""

import pytest

from repro.core.storage import (
    ARTIFACT_NAMES,
    load_index,
    save_index,
    verify_index,
)
from repro.errors import (
    DataValidationError,
    IndexCorruptionError,
    ReproError,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    inject,
)

from .conftest import assert_exact_answer


class TestCorruptOnWrite:
    @pytest.mark.parametrize("artifact", ARTIFACT_NAMES)
    def test_corruption_of_any_artifact_is_detected(self, built_index,
                                                    naive_oracle, chaos_seed,
                                                    tmp_path, artifact):
        """Flip bytes in one artifact as it is written: the loader must

        either refuse with a structured error or (with recovery) answer
        exactly — silent wrong answers are the one forbidden outcome."""
        plan = FaultPlan(seed=chaos_seed).add(
            f"storage.write.{artifact}", "corrupt", corrupt_bytes=16)
        with inject(plan) as injector:
            save_index(tmp_path / "idx", built_index)
        assert injector.fired() == 1

        with pytest.raises((IndexCorruptionError, DataValidationError)):
            load_index(tmp_path / "idx")

        report = verify_index(tmp_path / "idx")
        assert not report["ok"]
        assert report["damaged"] == [artifact]

    @pytest.mark.parametrize("artifact", ["pa.rrqa", "wa.rrqa"])
    def test_derived_corruption_recovers_and_answers_exactly(
            self, built_index, naive_oracle, chaos_seed, tmp_path, artifact):
        plan = FaultPlan(seed=chaos_seed).add(
            f"storage.write.{artifact}", "corrupt")
        with inject(plan):
            save_index(tmp_path / "idx", built_index)
        assert verify_index(tmp_path / "idx")["recoverable"]

        healed = load_index(tmp_path / "idx", recover=True)
        assert verify_index(tmp_path / "idx")["ok"]
        from repro.service.server import encode_result

        for i in (0, 17, 63):
            q = healed.products[i]
            encoded = encode_result(healed.reverse_topk(q, 8), "rtk")
            assert_exact_answer(encoded, naive_oracle, q, "rtk", 8)

    @pytest.mark.parametrize("artifact",
                             ["products.rrq", "weights.rrq", "grid.meta"])
    def test_recovery_refuses_when_raw_or_meta_damaged(
            self, built_index, chaos_seed, tmp_path, artifact):
        plan = FaultPlan(seed=chaos_seed).add(
            f"storage.write.{artifact}", "corrupt")
        with inject(plan):
            save_index(tmp_path / "idx", built_index)
        with pytest.raises(IndexCorruptionError) as excinfo:
            load_index(tmp_path / "idx", recover=True)
        assert not excinfo.value.recoverable
        assert artifact in excinfo.value.artifacts


class TestPartialWrite:
    @pytest.mark.parametrize("artifact",
                             list(ARTIFACT_NAMES) + ["MANIFEST.json"])
    def test_torn_write_never_yields_loadable_but_wrong(
            self, built_index, naive_oracle, chaos_seed, tmp_path, artifact):
        """kill -9 mid-write of each file in turn.  Either the directory

        refuses to load, or (manifest torn last, artifacts intact via the
        legacy path is impossible — the torn manifest is detected) —
        loading must raise; if it ever succeeded, answers would have to
        be exact, which we also check."""
        plan = FaultPlan(seed=chaos_seed).add(
            f"storage.write.{artifact}", "partial_write", keep_fraction=0.5)
        with inject(plan):
            with pytest.raises(InjectedCrashError):
                save_index(tmp_path / "idx", built_index)

        try:
            loaded = load_index(tmp_path / "idx")
        except ReproError:
            return  # structured refusal: the acceptable outcome
        from repro.service.server import encode_result

        for i in (3, 29):  # pragma: no cover - defensive exactness check
            q = loaded.products[i]
            encoded = encode_result(loaded.reverse_topk(q, 6), "rtk")
            assert_exact_answer(encoded, naive_oracle, q, "rtk", 6)

    def test_crash_during_resave_leaves_old_index_valid(
            self, built_index, chaos_seed, tmp_path):
        """Overwriting a good index dies on the first artifact: the

        atomic-write dance must leave the previous generation intact."""
        save_index(tmp_path / "idx", built_index)
        before = {name: (tmp_path / "idx" / name).read_bytes()
                  for name in ARTIFACT_NAMES}

        plan = FaultPlan(seed=chaos_seed).add(
            "storage.write.products.rrq", "io_error")
        with inject(plan):
            with pytest.raises(OSError):
                save_index(tmp_path / "idx", built_index)

        assert verify_index(tmp_path / "idx")["ok"]
        after = {name: (tmp_path / "idx" / name).read_bytes()
                 for name in ARTIFACT_NAMES}
        assert before == after
        loaded = load_index(tmp_path / "idx")
        assert loaded.partitions == built_index.partitions


class TestLoadFaults:
    def test_io_error_on_load_surfaces_structured(self, built_index,
                                                  chaos_seed, tmp_path):
        save_index(tmp_path / "idx", built_index)
        plan = FaultPlan(seed=chaos_seed).add("storage.load", "io_error")
        with inject(plan):
            with pytest.raises(OSError):
                load_index(tmp_path / "idx")
        # The fault disarmed itself; the index is undamaged.
        assert load_index(tmp_path / "idx") is not None

    def test_latency_on_load_is_survivable(self, built_index, chaos_seed,
                                           tmp_path):
        save_index(tmp_path / "idx", built_index)
        plan = FaultPlan(seed=chaos_seed).add("storage.load", "latency",
                                              latency_s=0.01)
        with inject(plan) as injector:
            load_index(tmp_path / "idx")
        assert injector.log == [("storage.load", "latency")]


class TestDeterminism:
    def test_same_seed_same_log_same_bytes(self, built_index, chaos_seed,
                                           tmp_path):
        """A CI chaos run with a fixed seed reproduces byte-for-byte."""
        logs, payloads = [], []
        for attempt in range(2):
            target = tmp_path / f"idx{attempt}"
            plan = (FaultPlan(seed=chaos_seed)
                    .add("storage.write.pa.rrqa", "corrupt")
                    .add("storage.write.weights.rrq", "corrupt",
                         probability=0.5, times=None))
            with inject(plan) as injector:
                save_index(target, built_index)
            logs.append(list(injector.log))
            payloads.append((target / "pa.rrqa").read_bytes())
        assert logs[0] == logs[1]
        assert payloads[0] == payloads[1]

    def test_injector_reusable_plan_restarts_arm_counts(self, chaos_seed):
        plan = FaultPlan(seed=chaos_seed).add("s", "io_error", times=1)
        for _ in range(2):  # fresh injector -> fresh arm count
            injector = FaultInjector(plan)
            with pytest.raises(OSError):
                injector.fire("s")
            injector.fire("s")
            assert injector.fired() == 1
