"""Shared fixtures for the chaos suite.

Every test here runs under deterministic fault injection: the fault seed
comes from ``RRQ_CHAOS_SEED`` (CI pins it; default 1337), so a failing
run reproduces byte-for-byte with the same environment.

The load-bearing invariant, enforced by :func:`assert_exact_answer`:
**every non-error response — healthy or degraded — is byte-identical to
the exact naive scan.**  Chaos may cost latency or a ``"degraded": true``
flag, never correctness.
"""

import os

import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import clustered_products, uniform_weights
from repro.resilience.faults import active_injector, set_injector
from repro.service.server import canonical_json, encode_result

CHAOS_SEED = int(os.environ.get("RRQ_CHAOS_SEED", "1337"))


@pytest.fixture(scope="session")
def chaos_seed():
    return CHAOS_SEED


@pytest.fixture(scope="session")
def datasets():
    P = clustered_products(160, 4, seed=2201)
    W = uniform_weights(130, 4, seed=2202)
    return P, W


@pytest.fixture(scope="session")
def naive_oracle(datasets):
    P, W = datasets
    return NaiveRRQ(P, W)


@pytest.fixture
def built_index(datasets):
    P, W = datasets
    return GridIndexRRQ(P, W, partitions=16, chunk=128, use_domin=False)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """A test that dies mid-``inject`` must not poison its neighbours."""
    yield
    if active_injector() is not None:  # pragma: no cover - defensive
        set_injector(None)
        pytest.fail("test leaked an active fault injector")


def assert_exact_answer(response, oracle, q, kind, k):
    """``response`` must match the naive oracle byte-for-byte.

    ``degraded`` is the one key chaos may add; everything else —
    including element order — must be identical canonical JSON.
    """
    body = dict(response)
    body.pop("degraded", None)
    if kind == "rtk":
        expected = encode_result(oracle.reverse_topk(q, k), "rtk")
    else:
        expected = encode_result(oracle.reverse_kranks(q, k), "rkr")
    assert canonical_json(body) == canonical_json(expected)
