"""Chaos tests for the MVCC segment store under a durable engine.

The contract under attack (ISSUE acceptance): SIGKILL at **every**
seal/compaction fault site recovers to a valid manifest with zero
acked-write loss.  Seals and compactions commit disk-first behind an
atomic ``CURRENT`` flip, so a crash at any point leaves either the old
or the new manifest — never a torn one — and the WAL tail replays the
delta the dead process never sealed.  Torn *artifacts* (segment files,
manifest bodies) must be swept as orphans on recovery; the one place a
torn write can land on a committed path (a non-atomic ``CURRENT``
overwrite, which the real temp+rename writer cannot produce) must
refuse with a structured error — silent wrong answers are the only
forbidden outcome.
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.durability import DurableDynamicRRQ, durability_report
from repro.errors import IndexCorruptionError
from repro.ext.dynamic import DynamicRRQEngine
from repro.resilience.faults import FaultPlan, InjectedCrashError, inject

DIM = 3

#: Artifact payloads a dying seal/compaction can tear on disk.
SEGMENT_ARTIFACT_SITES = (
    "storage.segment.products.mat",
    "storage.segment.weights.mat",
    "storage.segment.segment.json",
    "storage.segment.MANIFEST.json",
)
#: Control-flow crash points around the store-manifest commit.
MANIFEST_SITES = ("storage.manifest.write", "storage.manifest.current")


def _stream(rng, count):
    """Deterministic mixed mutations; ids align between both engines."""
    ops = []
    for i in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("insert_product", list(rng.random(DIM) * 0.9)))
        elif roll < 0.7:
            w = rng.random(DIM) + 1e-3
            ops.append(("insert_weight", list(w / w.sum())))
        elif roll < 0.85:
            ops.append(("delete_product", None))
        else:
            ops.append(("modify_product", list(rng.random(DIM) * 0.9)))
    return ops


def _apply(engine, ops):
    """Apply ops to a durable engine or a bare dynamic engine."""
    for op, payload in ops:
        if op == "insert_product":
            engine.insert_product(payload)
        elif op == "insert_weight":
            engine.insert_weight(payload)
        elif op == "delete_product":
            live = engine.products.live_indices()
            if len(live):
                getattr(engine, "delete_product",
                        getattr(engine, "remove_product", None))(int(live[0]))
            else:
                engine.insert_product([0.5] * DIM)
        else:
            live = engine.products.live_indices()
            if len(live):
                engine.modify_product(int(live[-1]), payload)
            else:
                engine.insert_product(payload)


def _reference(ops):
    reference = DynamicRRQEngine(dim=DIM, value_range=1.0)
    _apply(reference, ops)
    return reference


def assert_zero_acked_loss(recovered, reference, rng, k=5):
    """Recovered segmented answers == reference == exact scan (gids align:
    neither engine ever renumbered, so stable ids coincide)."""
    assert recovered.num_products == reference.num_products
    assert recovered.num_weights == reference.num_weights
    pv, wv = reference.products, reference.weights
    if pv.live_count == 0 or wv.live_count == 0:
        return
    naive = NaiveRRQ(ProductSet(pv.live_values(), value_range=1.0),
                     WeightSet(wv.live_values()))
    w_map = list(wv.live_indices())
    for _ in range(4):
        q = rng.random(DIM) * 0.9
        expected = frozenset(int(w_map[j])
                             for j in naive.reverse_topk(q, k).weights)
        assert recovered.reverse_topk(q, k).weights == expected


def _segmented(path, **kwargs):
    return DurableDynamicRRQ(path, dim=DIM, fsync="always",
                             backend="segmented", seal_every=0,
                             auto_compact=False, **kwargs)


@pytest.fixture
def ops(chaos_seed):
    return _stream(np.random.default_rng(chaos_seed), 40)


@pytest.mark.timeout(120)
class TestCrashMidSeal:
    @pytest.mark.parametrize("site", SEGMENT_ARTIFACT_SITES)
    def test_torn_segment_artifact_is_swept_and_nothing_acked_is_lost(
            self, tmp_path, chaos_seed, ops, site):
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops[:20])
        assert engine.engine.seal(force=True) is not None  # clean segment
        _apply(engine, ops[20:])
        acked = engine.last_lsn

        plan = FaultPlan(seed=chaos_seed).add(site, "partial_write")
        with inject(plan) as injector:
            with pytest.raises((InjectedCrashError, OSError)):
                engine.engine.seal(force=True)
        assert injector.fired() == 1
        engine.close()  # the dying process never sealed

        recovered = _segmented(tmp_path / "db")
        assert recovered.last_lsn == acked
        assert recovered.replayed_records > 0  # the unsealed delta came back
        stats = recovered.storage_stats()
        assert stats["segments"] == 1  # the torn second segment was swept
        report = durability_report(tmp_path / "db")
        assert report["ok"] and report["storage"]["status"] == "ok"
        assert_zero_acked_loss(recovered, _reference(ops),
                               np.random.default_rng(chaos_seed + 1))
        recovered.close()

    @pytest.mark.parametrize("site", MANIFEST_SITES)
    def test_crash_before_manifest_commit_keeps_the_old_lineage(
            self, tmp_path, chaos_seed, ops, site):
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops)
        acked = engine.last_lsn
        barrier_before = engine.engine.applied_lsn
        assert engine.storage_stats()["manifest_lsn"] < barrier_before

        plan = FaultPlan(seed=chaos_seed).add(site, "io_error")
        with inject(plan) as injector:
            with pytest.raises(OSError):
                engine.engine.seal(force=True)
        assert injector.fired() == 1
        engine.close()

        recovered = _segmented(tmp_path / "db")
        assert recovered.last_lsn == acked
        # The old manifest barrier survived; the WAL replayed everything.
        assert recovered.storage_stats()["manifest_lsn"] < barrier_before + 1
        report = durability_report(tmp_path / "db")
        assert report["ok"] and report["storage"]["status"] == "ok"
        assert_zero_acked_loss(recovered, _reference(ops),
                               np.random.default_rng(chaos_seed + 2))
        recovered.close()


@pytest.mark.timeout(120)
class TestCrashMidCompaction:
    @pytest.mark.parametrize(
        "site", SEGMENT_ARTIFACT_SITES[:2] + MANIFEST_SITES)
    def test_every_compaction_fault_site_recovers_valid(
            self, tmp_path, chaos_seed, ops, site):
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops[:20])
        engine.engine.seal(force=True)
        _apply(engine, ops[20:])
        engine.snapshot()  # checkpoint: seals + truncates the WAL
        acked = engine.last_lsn
        segments_before = engine.storage_stats()["segments"]
        assert segments_before >= 2

        kind = ("partial_write" if site.startswith("storage.segment")
                else "io_error")
        plan = FaultPlan(seed=chaos_seed).add(site, kind)
        with inject(plan) as injector:
            with pytest.raises(OSError):
                engine.compact()
        assert injector.fired() >= 1
        engine.close()

        recovered = _segmented(tmp_path / "db")
        assert recovered.last_lsn == acked
        stats = recovered.storage_stats()
        # Old segment lineage intact, the half-merged orphan swept.
        assert stats["segments"] == segments_before
        seg_dirs = [d for d in (tmp_path / "db" / "segments").iterdir()
                    if d.is_dir()]
        assert len(seg_dirs) == segments_before
        report = durability_report(tmp_path / "db")
        assert report["ok"] and report["storage"]["status"] == "ok"
        assert_zero_acked_loss(recovered, _reference(ops),
                               np.random.default_rng(chaos_seed + 3))
        recovered.close()

    def test_clean_compaction_after_recovery_still_converges(
            self, tmp_path, chaos_seed, ops):
        """After a crashed compaction, the next clean one finishes the
        job — the store is not wedged."""
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops)
        engine.engine.seal(force=True)
        _apply(engine, ops[:10])
        engine.snapshot()
        plan = FaultPlan(seed=chaos_seed).add(
            "storage.manifest.current", "io_error")
        with inject(plan):
            with pytest.raises(OSError):
                engine.compact()
        engine.close()

        recovered = _segmented(tmp_path / "db")
        recovered.compact()
        assert recovered.storage_stats()["segments"] == 1
        assert_zero_acked_loss(recovered, _reference(ops + ops[:10]),
                               np.random.default_rng(chaos_seed + 4))
        recovered.close()


@pytest.mark.timeout(120)
class TestTornCommitPointer:
    def test_torn_current_refuses_with_a_structured_error(
            self, tmp_path, chaos_seed, ops):
        """A torn ``CURRENT`` (only producible by a non-atomic writer)
        must refuse recovery — never serve from a garbage manifest."""
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops[:15])
        plan = FaultPlan(seed=chaos_seed).add(
            "storage.manifest.current", "partial_write", keep_fraction=0.3)
        with inject(plan):
            with pytest.raises(InjectedCrashError):
                engine.engine.seal(force=True)
        engine.close()

        report = durability_report(tmp_path / "db")
        assert not report["ok"]
        assert report["storage"]["status"].startswith("corrupt")
        with pytest.raises(IndexCorruptionError):
            _segmented(tmp_path / "db")


@pytest.mark.timeout(120)
class TestPinnedReaderUnderChaos:
    def test_pin_survives_a_crashed_seal_and_a_real_compaction(
            self, tmp_path, chaos_seed, ops):
        engine = _segmented(tmp_path / "db")
        _apply(engine, ops)
        engine.engine.seal(force=True)
        snap = engine.pin_snapshot()
        assert snap is not None
        rng = np.random.default_rng(chaos_seed + 5)
        queries = [rng.random(DIM) * 0.9 for _ in range(3)]
        before = [snap.reverse_kranks(q, 5).entries for q in queries]

        plan = FaultPlan(seed=chaos_seed).add(
            "storage.manifest.write", "io_error")
        _apply(engine, ops[:20])
        with inject(plan):
            with pytest.raises(OSError):
                engine.engine.seal(force=True)
        engine.engine.seal(force=True)  # clean retry
        engine.compact()

        after = [snap.reverse_kranks(q, 5).entries for q in queries]
        assert after == before  # the pin saw none of it
        snap.release()
        engine.close()


@pytest.mark.chaos_serial
@pytest.mark.timeout(120)
class TestKill9SegmentedServe:
    def test_sigkill_mid_traffic_recovers_the_segmented_store(
            self, tmp_path, chaos_seed):
        """End to end, no in-process shortcuts: a fresh ``serve
        --durable`` directory comes up on the segmented backend, eats
        acked traffic (including /modify and a /snapshot checkpoint),
        dies by real SIGKILL, and recovers every acknowledged write."""
        from .test_kill9_recovery import (
            ServeProcess,
            _get,
            _post,
            wait_healthy,
        )

        rng = np.random.default_rng(chaos_seed + 11)
        db = tmp_path / "db"
        server = ServeProcess(db, "--dim", str(DIM), "--fsync", "always",
                              "--storage", "segmented")
        try:
            wait_healthy(server.url)
            info = _get(server.url + "/info")
            assert info["backend"] == "segmented"
            acked = 0
            first_product = None
            for i in range(30):
                if i % 5 == 4:
                    w = rng.random(DIM) + 1e-3
                    reply = _post(server.url + "/insert",
                                  {"type": "weight",
                                   "vector": list(w / w.sum())})
                else:
                    reply = _post(server.url + "/insert",
                                  {"type": "product",
                                   "vector": list(rng.random(DIM) * 0.9)})
                    if first_product is None:
                        first_product = reply["index"]
                acked = reply["lsn"]
            reply = _post(server.url + "/modify",
                          {"type": "product", "index": first_product,
                           "vector": list(rng.random(DIM) * 0.9)})
            acked = reply["lsn"]
            _post(server.url + "/snapshot", {})  # checkpoint mid-history
            for _ in range(5):
                reply = _post(server.url + "/insert",
                              {"type": "product",
                               "vector": list(rng.random(DIM) * 0.9)})
                acked = reply["lsn"]
            server.kill9()
        finally:
            server.terminate()

        recovered = DurableDynamicRRQ(db, fsync="always")
        assert recovered.backend == "segmented"
        assert recovered.last_lsn == acked
        report = durability_report(db)
        assert report["ok"] and report["storage"]["status"] == "ok"
        pv, wv = recovered.products, recovered.weights
        naive = NaiveRRQ(ProductSet(pv.live_values(), value_range=1.0),
                         WeightSet(wv.live_values()))
        w_map = list(wv.live_indices())
        for _ in range(3):
            q = rng.random(DIM) * 0.9
            expected = frozenset(int(w_map[j])
                                 for j in naive.reverse_topk(q, 5).weights)
            assert recovered.reverse_topk(q, 5).weights == expected
        recovered.close()

        reborn = ServeProcess(db, "--fsync", "always")
        try:
            health = wait_healthy(reborn.url)
            assert health["last_lsn"] == acked
            assert _get(reborn.url + "/info")["backend"] == "segmented"
        finally:
            reborn.terminate()
