"""Chaos tests for the durability layer.

The contract under attack (ISSUE acceptance): after **any** injected
crash — mid-append, torn WAL tail, snapshot interrupted between its
temp-write and the commit — recovery must yield answers byte-identical
to a fresh exact scan over exactly the acknowledged mutation prefix.
Acknowledged writes are never lost; unacknowledged writes are atomically
absent.  Mid-log damage to acknowledged history must refuse with a
structured :class:`WalCorruptionError`, never serve silently wrong
answers.
"""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.durability import DurableDynamicRRQ, durability_report
from repro.durability.wal import read_wal, wal_path
from repro.errors import WalCorruptionError
from repro.resilience.faults import FaultPlan, InjectedCrashError, inject


def _mutation_stream(rng, dim, count):
    """A deterministic mixed stream of (op, payload) mutations."""
    stream, live_p, live_w = [], [], []
    for i in range(count):
        roll = rng.random()
        if roll < 0.45 or len(live_p) < 3:
            stream.append(("insert_product", list(rng.random(dim) * 0.95)))
            live_p.append(len(live_p) + len([s for s in stream
                                             if s[0] == "delete_product"]))
        elif roll < 0.7:
            w = rng.random(dim) + 1e-3
            stream.append(("insert_weight", list(w / w.sum())))
        elif roll < 0.85 and live_p:
            stream.append(("delete_product", None))
        else:
            stream.append(("compact", None))
    return stream


def _apply_stream(engine, stream):
    """Apply mutations until one crashes; returns the acked count.

    Deletions pick the lowest live product index at apply time so the
    same prefix of the stream always produces the same state.
    """
    acked = 0
    for op, payload in stream:
        try:
            if op == "insert_product":
                engine.insert_product(payload)
            elif op == "insert_weight":
                engine.insert_weight(payload)
            elif op == "delete_product":
                live = engine.products.live_indices()
                if len(live) == 0:
                    continue
                engine.delete_product(int(live[0]))
            else:
                engine.compact()
        except (InjectedCrashError, OSError):
            return acked, (op, payload)
        acked += 1
    return acked, None


def _replay_reference(dim, value_range, stream, acked):
    """The acked prefix applied to a fresh in-memory dynamic engine."""
    from repro.ext.dynamic import DynamicRRQEngine

    reference = DynamicRRQEngine(dim=dim, value_range=value_range)
    count = 0
    for op, payload in stream:
        if count >= acked:
            break
        if op == "insert_product":
            reference.insert_product(np.asarray(payload))
        elif op == "insert_weight":
            reference.insert_weight(np.asarray(payload))
        elif op == "delete_product":
            live = reference.products.live_indices()
            if len(live) == 0:
                continue
            reference.remove_product(int(live[0]))
        else:
            reference.compact()
        count += 1
    return reference


def assert_equals_naive_over_acked(recovered, reference, rng, k=5):
    """Recovered answers == reference answers == exact scan, everywhere."""
    assert recovered.num_products == reference.num_products
    assert recovered.num_weights == reference.num_weights
    pv, wv = recovered.products, recovered.weights
    if pv.live_count == 0 or wv.live_count == 0:
        return
    naive = NaiveRRQ(
        ProductSet(pv.live_values(), value_range=pv.value_range),
        WeightSet(wv.live_values()),
    )
    w_map = list(wv.live_indices())
    for _ in range(3):
        q = rng.random(pv.dim) * 0.95
        expected = frozenset(int(w_map[j])
                             for j in naive.reverse_topk(q, k).weights)
        assert recovered.reverse_topk(q, k).weights == expected
        assert reference.reverse_topk(q, k).weights == expected


@pytest.fixture
def stream(chaos_seed):
    rng = np.random.default_rng(chaos_seed)
    return _mutation_stream(rng, 3, 40)


class TestCrashMidAppend:
    @pytest.mark.parametrize("crash_after", [0, 7, 23])
    @pytest.mark.parametrize("keep_fraction", [0.1, 0.5, 0.9])
    def test_torn_append_loses_only_the_unacked_record(
            self, tmp_path, chaos_seed, stream, crash_after, keep_fraction):
        """``kill -9`` mid-append: the torn frame vanishes, every
        acknowledged record survives byte-exact."""
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="always")
        plan = FaultPlan(seed=chaos_seed).add(
            "wal.append", "partial_write", keep_fraction=keep_fraction)
        head, tail = stream[:crash_after], stream[crash_after:]
        acked_head, crashed = _apply_stream(engine, head)
        assert crashed is None
        with inject(plan) as injector:
            acked_tail, crashed = _apply_stream(engine, tail)
        assert injector.fired() == 1
        assert crashed is not None
        acked = acked_head + acked_tail
        assert engine.last_lsn == acked
        # The dying process never closes cleanly; just drop the handle.

        records, _, torn = read_wal(wal_path(tmp_path / "db"))
        assert torn > 0  # the torn frame really is on disk
        assert len(records) == acked

        recovered = DurableDynamicRRQ(tmp_path / "db", fsync="always")
        assert recovered.last_lsn == acked
        reference = _replay_reference(3, 1.0, stream, acked)
        assert_equals_naive_over_acked(
            recovered, reference, np.random.default_rng(chaos_seed + 1))
        recovered.close()

    def test_fsync_failure_rolls_the_append_back(self, tmp_path, chaos_seed,
                                                 stream):
        """A *non-crash* fsync error must leave no half-acknowledged
        frame behind: the failed append is rolled back entirely and the
        next append lands on a clean boundary."""
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="always")
        acked_head, _ = _apply_stream(engine, stream[:10])
        plan = FaultPlan(seed=chaos_seed).add("wal.fsync", "io_error")
        with inject(plan) as injector:
            with pytest.raises(OSError):
                engine.insert_product([0.5, 0.5, 0.5])
        assert injector.fired() == 1
        assert engine.last_lsn == acked_head
        engine.insert_product([0.25, 0.25, 0.25])  # boundary still clean
        engine.close()

        records, _, torn = read_wal(wal_path(tmp_path / "db"))
        assert torn == 0
        assert len(records) == acked_head + 1


class TestCrashMidSnapshot:
    def _engine_with_history(self, tmp_path, stream):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="always")
        acked, crashed = _apply_stream(engine, stream)
        assert crashed is None
        return engine, acked

    @pytest.mark.parametrize("site", ["snapshot.rename", "snapshot.current"])
    def test_crash_before_commit_keeps_the_old_lineage(
            self, tmp_path, chaos_seed, stream, site):
        """Killed between the temp-write and the CURRENT flip: the WAL is
        untruncated, recovery replays it, answers are exact."""
        engine, acked = self._engine_with_history(tmp_path, stream)
        plan = FaultPlan(seed=chaos_seed).add(site, "io_error")
        with inject(plan) as injector:
            with pytest.raises(OSError):
                engine.snapshot()
        assert injector.fired() == 1

        report = durability_report(tmp_path / "db")
        assert report["snapshot"]["status"] == "none"  # commit never ran
        assert report["wal"]["records"] == acked  # nothing truncated

        recovered = DurableDynamicRRQ(tmp_path / "db", fsync="always")
        assert recovered.last_lsn == acked
        assert recovered.snapshot_lsn == 0
        reference = _replay_reference(3, 1.0, stream, acked)
        assert_equals_naive_over_acked(
            recovered, reference, np.random.default_rng(chaos_seed + 2))
        # The interrupted snapshot's debris was swept on recovery.
        leftovers = list((tmp_path / "db").glob("snapshot-*"))
        assert leftovers == []
        recovered.close()

    def test_crash_overwrites_nothing_when_a_snapshot_exists(
            self, tmp_path, chaos_seed, stream):
        """A failed *second* snapshot must leave the committed first one
        (and the WAL tail after it) fully usable."""
        engine, _ = self._engine_with_history(tmp_path, stream[:20])
        barrier = engine.snapshot()
        acked_tail, crashed = _apply_stream(engine, stream[20:])
        assert crashed is None
        acked = barrier + acked_tail
        plan = FaultPlan(seed=chaos_seed).add("snapshot.rename", "io_error")
        with inject(plan) as injector:
            with pytest.raises(OSError):
                engine.snapshot()
        assert injector.fired() == 1

        recovered = DurableDynamicRRQ(tmp_path / "db", fsync="always")
        assert recovered.snapshot_lsn == barrier
        assert recovered.last_lsn == acked
        assert recovered.replayed_records == acked_tail
        reference = _replay_reference(3, 1.0, stream, acked)
        assert_equals_naive_over_acked(
            recovered, reference, np.random.default_rng(chaos_seed + 3))
        recovered.close()

    def test_corrupt_snapshot_artifact_refuses_startup(
            self, tmp_path, chaos_seed, stream):
        """Damage inside a *committed* snapshot is acknowledged state
        gone — recovery must refuse, not improvise."""
        from repro.errors import IndexCorruptionError

        engine, _ = self._engine_with_history(tmp_path, stream[:15])
        plan = FaultPlan(seed=chaos_seed).add(
            "snapshot.write.products.mat", "corrupt", corrupt_bytes=12)
        with inject(plan) as injector:
            engine.snapshot()  # corruption is silent at write time
        assert injector.fired() == 1
        with pytest.raises(IndexCorruptionError, match="snapshot"):
            DurableDynamicRRQ(tmp_path / "db", fsync="always")


class TestMidLogCorruption:
    def test_recovery_refuses_damaged_acknowledged_history(
            self, tmp_path, stream):
        engine = DurableDynamicRRQ(tmp_path / "db", dim=3, fsync="always")
        acked, _ = _apply_stream(engine, stream[:12])
        engine.close()
        wal_file = wal_path(tmp_path / "db")
        data = bytearray(wal_file.read_bytes())
        data[10] ^= 0xFF  # inside the first acknowledged record
        wal_file.write_bytes(bytes(data))

        with pytest.raises(WalCorruptionError) as excinfo:
            DurableDynamicRRQ(tmp_path / "db", fsync="always")
        assert excinfo.value.offset == 0
        report = durability_report(tmp_path / "db")
        assert not report["ok"]
        assert report["wal"]["status"] == "corrupt"
