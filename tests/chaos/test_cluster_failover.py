"""Self-healing cluster chaos: SIGKILL a primary, watch it heal itself.

The acceptance proof for the supervision layer, end to end and against
real worker subprocesses:

* 3 shards x (primary + standby); SIGKILL the *write-owning* primary
  mid-write-stream;
* no acknowledged write is lost (the kill happens at replication lag 0,
  so every ack the dead primary issued is on its standby);
* the supervisor promotes the standby and flips the routing table
  **automatically** — no manual ``POST /promote`` anywhere below;
* the killed node is restarted as a standby of the new primary and
  catches up;
* every answer along the way is byte-identical to :class:`NaiveRRQ`
  over exactly the acknowledged prefix;
* ``/cluster/healthz`` converges back to ``degraded_shards: []``;
* convergence takes a bounded, deterministic number of supervisor ticks
  (the supervisor is driven manually — no background thread, no races).

Plus the tail-latency half of the tentpole: a worker made a permanent
straggler by deterministic fault injection (``--chaos-latency-ms``) is
masked by hedged reads without changing a byte of any answer.

All tests spawn real ``repro-rrq serve --durable`` subprocesses through
:class:`LocalCluster`; ``@pytest.mark.chaos_serial`` keeps them off any
parallel test runner — they own real ports and process trees.
"""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.cluster.launcher import LocalCluster
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import ReproError
from repro.service.server import canonical_json, encode_result

from .conftest import CHAOS_SEED

pytestmark = [
    pytest.mark.chaos_serial,
    pytest.mark.timeout(300),
]

DIM = 3
N_PRODUCTS = 60
N_WEIGHTS = 90
NUM_SHARDS = 3

#: Supervisor ticks allowed for one failover to land (dead_after=3
#: misses to confirm death + a couple of ticks of slack for a slow
#: standby probe).  Deterministic in the sense that a healthy run
#: converges well inside it; blowing the bound is the failure.
MAX_FAILOVER_TICKS = 20

DETECTOR = {"suspect_after": 2, "dead_after": 3, "probe_timeout_s": 1.0}


@pytest.fixture(scope="module")
def datasets():
    P = uniform_products(N_PRODUCTS, DIM, seed=CHAOS_SEED)
    W = uniform_weights(N_WEIGHTS, DIM, seed=CHAOS_SEED + 1)
    return P, W


def _healthz(url: str, timeout_s: float = 2.0) -> dict:
    with urllib.request.urlopen(url.rstrip("/") + "/healthz",
                                timeout=timeout_s) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _wait_standby_caught_up(standby_url: str, target_lsn: int,
                            timeout_s: float = 30.0) -> dict:
    """Poll the standby until its WAL holds everything acked (lag 0)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        health = _healthz(standby_url)
        if (health.get("replication_lag") == 0
                and int(health.get("last_lsn", -1)) >= target_lsn):
            return health
        time.sleep(0.05)
    raise AssertionError(
        f"standby {standby_url} never caught up to lsn {target_lsn}"
    )


def _assert_exact(cluster, oracle, q, k: int, *, allow_degraded: bool):
    """One RTK + one RKR probe, byte-compared against the naive oracle."""
    client = cluster.client()
    for kind in ("rtk", "rkr"):
        answer = client.query(vector=list(q), kind=kind, k=k)
        if not allow_degraded:
            assert "degraded" not in answer, answer
        answer.pop("degraded", None)
        answer.pop("degraded_shards", None)
        if kind == "rtk":
            expected = encode_result(oracle.reverse_topk(q, k), "rtk")
        else:
            expected = encode_result(oracle.reverse_kranks(q, k), "rkr")
        assert canonical_json(answer) == canonical_json(expected)


def test_sigkill_primary_self_heals_without_losing_acked_writes(
        datasets, tmp_path):
    """The tentpole proof: kill the write owner, the cluster heals itself."""
    P, W = datasets
    rng = np.random.default_rng(CHAOS_SEED)
    with LocalCluster(P, W, num_workers=NUM_SHARDS, replicas=1,
                      supervise=True, supervisor_autostart=False,
                      detector_kwargs=dict(DETECTOR),
                      base_dir=tmp_path) as cluster:
        client = cluster.client()
        supervisor = cluster.supervisor
        write_shard = cluster.coordinator.topology.insert_owner(W.size)
        acked = []  # vectors in ack order; global ids are W.size, +1, ...

        def insert_one(retry_deadline_s=0.0):
            vec = rng.dirichlet(np.ones(DIM)).tolist()
            deadline = time.monotonic() + retry_deadline_s
            while True:
                try:
                    receipt = client.insert_weight(vec)
                    break
                except (ReproError, OSError):
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.2)
            assert receipt["index"] == W.size + len(acked)
            acked.append(vec)
            return receipt

        # --- phase 1: a healthy write stream -------------------------
        for _ in range(5):
            receipt = insert_one()
        assert receipt["shard"] == write_shard

        # Let the standby reach lag 0: from here, every ack the primary
        # issued is durable on its standby, so the SIGKILL below cannot
        # lose an acknowledged write by construction.
        standby_url = cluster.standbys[write_shard][0].url
        _wait_standby_caught_up(standby_url, int(receipt["lsn"]))

        # --- phase 2: SIGKILL the write-owning primary mid-stream ----
        cluster.kill_worker(write_shard)
        with pytest.raises((ReproError, OSError)):
            client.insert_weight(rng.dirichlet(np.ones(DIM)).tolist())

        # --- phase 3: the supervisor heals it (bounded ticks) --------
        for _ in range(MAX_FAILOVER_TICKS):
            supervisor.tick()
            if supervisor.promotions >= 1:
                break
        status = supervisor.status()
        assert status["promotions"] == 1, status
        assert supervisor.ticks <= MAX_FAILOVER_TICKS
        # The routing table flipped to the promoted standby on its own.
        spec = cluster.coordinator.topology.shard(write_shard)
        assert spec.primary == standby_url
        assert cluster.coordinator.failovers >= 1

        # --- phase 4: the write stream resumes against the new primary
        for _ in range(5):
            insert_one(retry_deadline_s=30.0)

        # --- no acked write lost, byte-identical to the naive oracle -
        oracle = NaiveRRQ(
            ProductSet(P.values, value_range=P.value_range),
            WeightSet(np.vstack([W.values, np.array(acked)])),
        )
        for qi in (3, 17, 42):
            _assert_exact(cluster, oracle, P.values[qi], 10,
                          allow_degraded=False)

        # --- the corpse came back as a standby and caught up ---------
        assert status["restarts"] == 1, status
        assert len(spec.endpoints) == 2  # new primary + restarted standby
        restarted_url = spec.replicas[0]
        final = _wait_standby_caught_up(
            restarted_url, int(_healthz(spec.primary)["last_lsn"]))
        assert final["role"] == "standby"

        # --- /cluster/healthz converges back to no degraded shards ---
        deadline = time.monotonic() + 30.0
        while True:
            health = cluster.service.cluster_healthz()
            if health["degraded_shards"] == []:
                break
            assert time.monotonic() < deadline, health
            time.sleep(0.2)
        assert health["status"] == "ok"
        assert health["supervision"]["promotions"] == 1


def test_failover_preserves_reads_of_nonwrite_shards(datasets, tmp_path):
    """Killing a non-owning primary never blocks the write stream, and
    reads stay exact throughout (standby rotation covers the gap even
    before the supervisor confirms death)."""
    P, W = datasets
    oracle = NaiveRRQ(P, W)
    with LocalCluster(P, W, num_workers=NUM_SHARDS, replicas=1,
                      supervise=True, supervisor_autostart=False,
                      detector_kwargs=dict(DETECTOR),
                      base_dir=tmp_path) as cluster:
        victim = 0  # range partitioner routes inserts to the last shard
        assert cluster.coordinator.topology.insert_owner(W.size) != victim
        cluster.kill_worker(victim)

        # Reads before failover: the per-shard client rotates to the
        # standby on connection-reset (the S3 retry path), so answers
        # stay exact and undegraded even with the primary dead.
        _assert_exact(cluster, oracle, P.values[7], 10, allow_degraded=True)

        supervisor = cluster.supervisor
        for _ in range(MAX_FAILOVER_TICKS):
            supervisor.tick()
            if supervisor.promotions >= 1:
                break
        assert supervisor.status()["promotions"] == 1
        _assert_exact(cluster, oracle, P.values[7], 10,
                      allow_degraded=False)


def test_hedged_reads_mask_permanent_straggler(datasets, tmp_path):
    """A 200ms-straggler primary (deterministic fault injection in the
    worker process) is hedged against its standby: tail latency drops by
    an order of magnitude and not a single answer byte changes."""
    P, W = datasets
    oracle = NaiveRRQ(P, W)
    straggle_s = 0.2
    with LocalCluster(P, W, num_workers=NUM_SHARDS, replicas=1,
                      hedge=True, base_dir=tmp_path,
                      worker_extra_args={0: ("--chaos-latency-ms",
                                             str(int(straggle_s * 1000)))},
                      ) as cluster:
        client = cluster.client()
        latencies = []
        for qi in range(12):
            q = P.values[qi]
            t0 = time.monotonic()
            answer = client.query(vector=list(q), kind="rtk", k=10)
            latencies.append(time.monotonic() - t0)
            assert "degraded" not in answer, answer
            expected = encode_result(oracle.reverse_topk(q, 10), "rtk")
            assert canonical_json(answer) == canonical_json(expected)
        stats = cluster.coordinator.stats()
        assert stats["hedge"]["probes"] > 0
        assert stats["hedge"]["wins"] > 0
        # Unhedged, every query would pay the full straggler latency;
        # hedged, the median must land well under it.
        assert sorted(latencies)[len(latencies) // 2] < straggle_s * 0.75


def test_fallback_survives_routed_mutations_and_stays_exact(
        datasets, tmp_path):
    """S1: the coordinator fallback replays routed mutations, so a shard
    killed *after* writes is still answered degraded-but-exact."""
    P, W = datasets
    rng = np.random.default_rng(CHAOS_SEED + 7)
    with LocalCluster(P, W, num_workers=NUM_SHARDS,
                      base_dir=tmp_path) as cluster:
        client = cluster.client()
        new_product = (rng.random(DIM) * P.value_range * 0.9).tolist()
        new_weights = [rng.dirichlet(np.ones(DIM)).tolist()
                       for _ in range(3)]
        p_receipt = client.insert_product(new_product)
        for vec in new_weights:
            w_receipt = client.insert_weight(vec)
        assert w_receipt["index"] == W.size + len(new_weights) - 1

        # Kill a primary AFTER the mutations routed; pre-PR the fallback
        # was withdrawn on the first mutation and this slice went dark.
        cluster.kill_worker(1)
        oracle = NaiveRRQ(
            ProductSet(np.vstack([P.values, [new_product]]),
                       value_range=P.value_range),
            WeightSet(np.vstack([W.values, np.array(new_weights)])),
        )
        client = cluster.client()
        q = np.asarray(new_product, dtype=float)
        answer = client.query(vector=list(q), kind="rtk", k=10)
        assert answer.get("degraded") is True
        assert answer.get("degraded_shards") == [1]
        answer.pop("degraded"), answer.pop("degraded_shards")
        expected = encode_result(oracle.reverse_topk(q, 10), "rtk")
        assert canonical_json(answer) == canonical_json(expected)
        assert p_receipt["index"] == P.size


def test_coordinator_load_shedding_returns_structured_503(
        datasets, tmp_path):
    """The in-flight bound rejects excess fan-outs with a 503 that
    carries ``Retry-After`` — checked over real HTTP."""
    P, W = datasets
    with LocalCluster(P, W, num_workers=NUM_SHARDS, max_inflight=1,
                      base_dir=tmp_path,
                      worker_extra_args={s: ("--chaos-latency-ms", "400")
                                         for s in range(NUM_SHARDS)},
                      ) as cluster:
        import threading

        # retries=0: a shed 503 must surface, not be retried into an ok.
        client = cluster.client(retries=0)
        q = list(P.values[0])
        outcomes = []

        def fire_query():
            try:
                outcomes.append(("ok", client.query(vector=q, k=5)))
            except ReproError as exc:
                outcomes.append(("rejected", exc))

        threads = [threading.Thread(target=fire_query) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        kinds = [kind for kind, _ in outcomes]
        assert "ok" in kinds, outcomes
        assert "rejected" in kinds, outcomes
        rejected = next(exc for kind, exc in outcomes if kind == "rejected")
        assert getattr(rejected, "retry_after_s", None) is not None
        shed = cluster.coordinator.stats()["shedding"]["shed_queries"]
        assert shed >= 1
