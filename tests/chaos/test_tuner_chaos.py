"""Chaos: SIGKILL a durable server while a tuner hot-swap is in flight.

The acceptance invariant: no matter where in the tune → seal → manifest
flip → pointer write sequence the process dies, the on-disk index (WAL
+ segments + kernel cache) reopens cleanly and serves answers identical
to an exact scan over the acknowledged prefix.  The swap path must be
crash-atomic the same way mutations are — a half-written tuned kernel
store or torn ``tuned.json`` may cost a rebuild, never a wrong answer.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.durability import DurableDynamicRRQ
from repro.service import canonical_json

from .test_kill9_recovery import (
    ServeProcess,
    _get,
    _post,
    exact_answers,
    wait_healthy,
)


@pytest.mark.timeout(120)
class TestTunerSwapKill9:
    def _seed_workload(self, url, rng, products=40, weights=25):
        last_lsn = 0
        for _ in range(products):
            reply = _post(url + "/insert", {
                "type": "product",
                "vector": list(rng.random(3) * 0.95)})
            last_lsn = reply["lsn"]
        for _ in range(weights):
            w = rng.random(3) + 1e-3
            reply = _post(url + "/insert", {
                "type": "weight", "vector": list(w / w.sum())})
            last_lsn = reply["lsn"]
        return last_lsn

    def test_sigkill_during_tuner_swap_leaves_loadable_index(
            self, tmp_path, chaos_seed):
        rng = np.random.default_rng(chaos_seed + 31)
        wal_dir = tmp_path / "db"
        cache_dir = tmp_path / "kc"
        server = ServeProcess(wal_dir, "--dim", "3", "--fsync", "always",
                              "--kernel-cache", str(cache_dir))
        tuner_error = []
        try:
            wait_healthy(server.url)
            last_acked_lsn = self._seed_workload(server.url, rng)

            # Fire the tune in the background: it seals a snapshot,
            # flips CURRENT, and rewrites the kernel cache — then kill
            # the process while that machinery is running.
            def fire_tuner():
                request = urllib.request.Request(
                    server.url + "/tuner",
                    data=json.dumps({"force": True}).encode(),
                    method="POST",
                    headers={"Content-Type": "application/json"})
                try:
                    urllib.request.urlopen(request, timeout=30.0).read()
                except (urllib.error.URLError, OSError):
                    pass  # the kill races the response; both fates are fine
                except Exception as exc:  # pragma: no cover
                    tuner_error.append(exc)

            tuner_thread = threading.Thread(target=fire_tuner)
            tuner_thread.start()
            server.proc.stdout.close()  # nobody drains the pipe past here
            # No sleep calibration: the probe+rebuild takes long enough
            # that an immediate SIGKILL lands mid-swap on any machine.
            server.kill9()
            tuner_thread.join(timeout=35)
        finally:
            server.terminate()
        assert tuner_error == []

        # The index must reopen and answer exactly, tuned or not.
        recovered = DurableDynamicRRQ(wal_dir, fsync="always")
        assert recovered.last_lsn == last_acked_lsn
        queries = [rng.random(3) * 0.9 for _ in range(4)]
        expected = exact_answers(recovered, queries)
        got = [
            canonical_json(sorted(recovered.reverse_topk(q, 5).weights))
            for q in queries
        ]
        assert got == expected
        recovered.close()

        # ...and a reborn server (same dir, same kernel cache — possibly
        # holding a half-written cfg store) serves that same truth.
        reborn = ServeProcess(wal_dir, "--fsync", "always",
                              "--kernel-cache", str(cache_dir))
        try:
            health = wait_healthy(reborn.url)
            assert health["last_lsn"] == last_acked_lsn
            for q, expect in zip(queries, expected):
                answer = _post(reborn.url + "/query",
                               {"vector": list(q), "kind": "rtk", "k": 5})
                assert canonical_json(sorted(answer["weights"])) == expect
        finally:
            reborn.terminate()

    def test_completed_swap_survives_sigkill_and_restart(self, tmp_path,
                                                         chaos_seed):
        """The other side of the race: the swap *finished* (HTTP 200),
        then the process dies.  The restarted server must keep serving
        exact answers from whatever the cache now holds."""
        rng = np.random.default_rng(chaos_seed + 67)
        wal_dir = tmp_path / "db"
        cache_dir = tmp_path / "kc"
        server = ServeProcess(wal_dir, "--dim", "3", "--fsync", "always",
                              "--kernel-cache", str(cache_dir))
        try:
            wait_healthy(server.url)
            last_acked_lsn = self._seed_workload(server.url, rng)
            outcome = _post(server.url + "/tuner", {"force": True},
                            timeout=60.0)
            assert outcome["status"] in ("swapped", "rejected")
            assert outcome["verified"] is True
            status = _get(server.url + "/tuner")
            assert status["enabled"] and status["runs"] == 1
            server.kill9()
        finally:
            server.terminate()

        recovered = DurableDynamicRRQ(wal_dir, fsync="always")
        assert recovered.last_lsn == last_acked_lsn
        queries = [rng.random(3) * 0.9 for _ in range(3)]
        expected = exact_answers(recovered, queries)
        recovered.close()

        reborn = ServeProcess(wal_dir, "--fsync", "always",
                              "--kernel-cache", str(cache_dir))
        try:
            wait_healthy(reborn.url)
            for q, expect in zip(queries, expected):
                answer = _post(reborn.url + "/query",
                               {"vector": list(q), "kind": "rtk", "k": 5})
                assert canonical_json(sorted(answer["weights"])) == expect
        finally:
            reborn.terminate()
