"""Chaos, for real this time: ``kill -9`` against live server processes.

Two end-to-end invariants from the ISSUE acceptance:

* a durable server killed with SIGKILL mid-traffic recovers with every
  **acknowledged** mutation intact and answers identical to an exact
  scan over that prefix (fsync=always: an HTTP 200 is the ack barrier);
* a hot standby whose primary is SIGKILLed at lag 0 can be promoted and
  serves byte-identical answers to what the primary last acknowledged.

Each server runs ``repro-rrq serve --durable`` as a real subprocess —
no in-process shortcuts, the kill is a genuine ``SIGKILL``.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.durability import DurableDynamicRRQ
from repro.service import canonical_json

SERVE_TIMEOUT_S = 30.0


def _post(url, payload, timeout=10.0):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


class ServeProcess:
    """A ``repro-rrq serve --durable`` subprocess with a parsed URL."""

    def __init__(self, directory, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.setdefault("PYTHONUNBUFFERED", "1")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(directory),
             "--durable", "--port", "0", "--batch-window-ms", "0",
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.url = self._parse_banner()

    def _parse_banner(self):
        deadline = time.monotonic() + SERVE_TIMEOUT_S
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited early (rc={self.proc.poll()})")
            if line.startswith("serving durable") and " at http" in line:
                return line.rsplit(" at ", 1)[1].strip()
        raise AssertionError("no serve banner before timeout")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


def wait_healthy(url, timeout_s=SERVE_TIMEOUT_S):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            health = _get(url + "/healthz", timeout=2.0)
        except (urllib.error.URLError, OSError):
            time.sleep(0.05)
            continue
        if health.get("status") == "ok":
            return health
        time.sleep(0.05)
    raise AssertionError(f"{url} never became healthy")


def acked_mutations(url, rng, count):
    """Fire mutations; return those acknowledged with HTTP 200."""
    acked = []
    for i in range(count):
        if i % 5 == 4:
            w = rng.random(3) + 1e-3
            payload, path = ({"type": "weight",
                              "vector": list(w / w.sum())}, "/insert")
        else:
            payload, path = ({"type": "product",
                              "vector": list(rng.random(3) * 0.95)},
                             "/insert")
        reply = _post(url + path, payload)
        acked.append((path, payload, reply["lsn"]))
    return acked


def exact_answers(engine, queries, k=5):
    """Canonical rtk answers from a fresh NaiveRRQ over live rows."""
    pv, wv = engine.products, engine.weights
    naive = NaiveRRQ(
        ProductSet(pv.live_values(), value_range=pv.value_range),
        WeightSet(wv.live_values()),
    )
    w_map = list(wv.live_indices())
    return [
        canonical_json(sorted(int(w_map[j])
                              for j in naive.reverse_topk(q, k).weights))
        for q in queries
    ]


@pytest.mark.timeout(120)
class TestKill9Recovery:
    def test_sigkill_then_recover_serves_the_acked_prefix(self, tmp_path,
                                                          chaos_seed):
        rng = np.random.default_rng(chaos_seed)
        wal_dir = tmp_path / "db"
        server = ServeProcess(wal_dir, "--dim", "3", "--fsync", "always")
        try:
            wait_healthy(server.url)
            acked = acked_mutations(server.url, rng, 30)
            last_acked_lsn = acked[-1][2]
            server.kill9()  # no goodbye, no close(), no flush
        finally:
            server.terminate()

        # Recovery happens in-process so we can also inspect the engine.
        recovered = DurableDynamicRRQ(wal_dir, fsync="always")
        assert recovered.last_lsn == last_acked_lsn
        assert recovered.num_products == sum(
            1 for _, p, _ in acked if p.get("type") == "product")
        queries = [rng.random(3) * 0.9 for _ in range(3)]
        expected = exact_answers(recovered, queries)
        got = [
            canonical_json(sorted(recovered.reverse_topk(q, 5).weights))
            for q in queries
        ]
        assert got == expected
        recovered.close()

        # ...and a recovered *server* over the same directory serves it.
        reborn = ServeProcess(wal_dir, "--fsync", "always")
        try:
            health = wait_healthy(reborn.url)
            assert health["last_lsn"] == last_acked_lsn
        finally:
            reborn.terminate()

    def test_primary_sigkill_standby_promotes_identically(self, tmp_path,
                                                          chaos_seed):
        rng = np.random.default_rng(chaos_seed + 7)
        primary = ServeProcess(tmp_path / "primary", "--dim", "3",
                               "--fsync", "always")
        standby = None
        try:
            wait_healthy(primary.url)
            standby = ServeProcess(tmp_path / "standby", "--dim", "3",
                                   "--fsync", "always",
                                   "--standby-of", primary.url)
            wait_healthy(standby.url)
            acked = acked_mutations(primary.url, rng, 25)
            last_acked_lsn = acked[-1][2]
            queries = [list(rng.random(3) * 0.9) for _ in range(3)]
            primary_answers = [
                canonical_json(_post(primary.url + "/query",
                                     {"vector": q, "kind": "rtk", "k": 5}))
                for q in queries
            ]

            # Lag 0 before the kill — required by the acceptance bar.
            deadline = time.monotonic() + SERVE_TIMEOUT_S
            while time.monotonic() < deadline:
                health = _get(standby.url + "/healthz")
                if (health.get("last_lsn") == last_acked_lsn
                        and health.get("replication_lag") == 0):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError(f"standby lagging: {health}")

            primary.kill9()
            promoted = _post(standby.url + "/promote", {})
            assert promoted["role"] == "primary"
            assert promoted["last_lsn"] == last_acked_lsn

            standby_answers = [
                canonical_json(_post(standby.url + "/query",
                                     {"vector": q, "kind": "rtk", "k": 5}))
                for q in queries
            ]
            assert standby_answers == primary_answers

            # The promoted node owns the write role end to end.
            reply = _post(standby.url + "/insert",
                          {"type": "product", "vector": [0.3, 0.3, 0.3]})
            assert reply["lsn"] == last_acked_lsn + 1
        finally:
            primary.terminate()
            if standby is not None:
                standby.terminate()
