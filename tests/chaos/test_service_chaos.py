"""Chaos tests for the self-healing service layer.

Under injected engine failures, index corruption, and mid-flight
shutdown, the service must degrade — never lie.  Each test drives the
stack through a deterministic :class:`FaultPlan` and checks two things:
the *signalling* (``degraded`` flags, breaker state, structured 503s)
and the *answers* (byte-identical to the exact naive scan, per
:func:`tests.chaos.conftest.assert_exact_answer`).
"""

import time

import pytest

from repro.core.storage import save_index
from repro.errors import (
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.resilience.faults import FaultPlan, inject
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    serve_in_background,
)

from .conftest import assert_exact_answer


def make_service(datasets, **config_kwargs):
    P, W = datasets
    config_kwargs.setdefault("batch_window_s", 0.0)
    return QueryService.from_datasets(P, W, method="gir",
                                      config=ServiceConfig(**config_kwargs))


class TestBreakerDegradation:
    def test_engine_faults_degrade_then_self_heal(self, datasets,
                                                  naive_oracle, chaos_seed):
        """Dispatch failures flip to exact fallback answers, open the

        breaker after the threshold, and the probe closes it again once
        the faults stop — the full self-healing loop."""
        P, _ = datasets
        service = make_service(datasets, breaker_threshold=3,
                               breaker_reset_s=0.2)
        plan = FaultPlan(seed=chaos_seed).add(
            "scheduler.dispatch", "raise", times=3,
            exception=lambda: RuntimeError("injected engine failure"))
        with service, inject(plan) as injector:
            # Three failing engine trips: every answer degraded but exact.
            for i in range(3):
                q = P[i]
                response = service.query(list(q), kind="rtk", k=7)
                assert response["degraded"] is True
                assert_exact_answer(response, naive_oracle, q, "rtk", 7)
            assert injector.fired("scheduler.dispatch") == 3

            health = service.healthz()
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["breaker"] == "open"

            # Circuit open: the engine is bypassed (no new faults consumed)
            # yet answers keep flowing, exact and flagged.
            q = P[10]
            response = service.query(list(q), kind="rkr", k=4)
            assert response["degraded"] is True
            assert_exact_answer(response, naive_oracle, q, "rkr", 4)
            assert injector.fired("scheduler.dispatch") == 3

            # Cool-down passes; the next request is the half-open probe,
            # the faults are exhausted, and the circuit closes.
            time.sleep(0.25)
            assert service.healthz()["breaker"] == "half-open"
            q = P[20]
            response = service.query(list(q), kind="rtk", k=7)
            assert "degraded" not in response
            assert_exact_answer(response, naive_oracle, q, "rtk", 7)
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["breaker"] == "closed"

        snap = service.metrics_snapshot()
        assert snap["requests"]["degraded"] == 4
        assert snap["requests"]["errors"] == 3

    def test_fallback_disabled_surfaces_503(self, datasets, chaos_seed):
        P, _ = datasets
        service = make_service(datasets, fallback=False, breaker_threshold=1,
                               breaker_reset_s=60.0)
        plan = FaultPlan(seed=chaos_seed).add(
            "scheduler.dispatch", "raise",
            exception=lambda: RuntimeError("injected engine failure"))
        with service, inject(plan):
            with pytest.raises(RuntimeError, match="injected engine failure"):
                service.query(list(P[0]), kind="rtk", k=5)
            # Breaker now open and there is nothing to fall back to.
            with pytest.raises(ServiceUnavailableError, match="circuit open"):
                service.query(list(P[1]), kind="rtk", k=5)

    def test_degraded_answers_are_not_cached(self, datasets, naive_oracle,
                                             chaos_seed):
        """A healed engine must not keep serving flagged cache entries."""
        P, _ = datasets
        service = make_service(datasets, breaker_threshold=5,
                               breaker_reset_s=60.0)
        plan = FaultPlan(seed=chaos_seed).add(
            "scheduler.dispatch", "raise",
            exception=lambda: RuntimeError("one bad dispatch"))
        q = P[33]
        with service, inject(plan):
            degraded = service.query(list(q), kind="rtk", k=6)
            assert degraded["degraded"] is True
            healthy = service.query(list(q), kind="rtk", k=6)
            assert "degraded" not in healthy
            assert_exact_answer(healthy, naive_oracle, q, "rtk", 6)
        assert service.cache.stats()["hits"] == 0


class TestCorruptIndexOverHTTP:
    def test_corrupt_index_serves_degraded_but_exact(self, built_index,
                                                     naive_oracle, tmp_path):
        """An unrecoverable index comes up on the naive scan: /healthz

        says degraded, every answer is flagged and byte-exact."""
        save_index(tmp_path / "idx", built_index)
        meta = tmp_path / "idx" / "grid.meta"
        meta.write_bytes(b"\x00" * meta.stat().st_size)

        service = QueryService.from_index_dir(
            tmp_path / "idx", config=ServiceConfig(batch_window_s=0.0))
        assert service.degraded_reason is not None
        with serve_in_background(service) as server:
            client = ServiceClient(server.url)
            health = client.wait_until_healthy()
            assert health["status"] == "degraded"
            assert "index corrupt" in health["degraded_reason"]

            for i, kind, k in [(0, "rtk", 9), (41, "rkr", 3)]:
                q = built_index.products[i]
                response = client.query(list(q), kind=kind, k=k)
                assert response["degraded"] is True
                assert_exact_answer(response, naive_oracle, q, kind, k)


class TestClientRetries:
    def test_client_rides_out_transient_429s(self, datasets, naive_oracle,
                                             chaos_seed):
        """Two injected admission rejections, then success — invisible to

        the caller thanks to jittered retries."""
        P, _ = datasets
        service = make_service(datasets)
        plan = FaultPlan(seed=chaos_seed).add(
            "service.query", "raise", times=2,
            exception=lambda: ServiceOverloadError("injected overload"))
        with service, serve_in_background(service) as server:
            client = ServiceClient(server.url, retries=3,
                                   backoff_base_s=0.005)
            client.wait_until_healthy()
            with inject(plan) as injector:
                q = P[5]
                response = client.query(list(q), kind="rtk", k=8)
                assert injector.fired("service.query") == 2
            assert "degraded" not in response
            assert_exact_answer(response, naive_oracle, q, "rtk", 8)

    def test_retries_exhausted_surface_the_overload(self, datasets,
                                                    chaos_seed):
        P, _ = datasets
        service = make_service(datasets)
        plan = FaultPlan(seed=chaos_seed).add(
            "service.query", "raise", times=None,
            exception=lambda: ServiceOverloadError("injected overload"))
        with service, serve_in_background(service) as server:
            client = ServiceClient(server.url, retries=1,
                                   backoff_base_s=0.001)
            client.wait_until_healthy()
            with inject(plan) as injector:
                with pytest.raises(ServiceOverloadError,
                                   match="injected overload"):
                    client.query(list(P[0]), kind="rtk", k=5)
                assert injector.fired("service.query") == 2  # 1 + 1 retry


class TestShutdownOverHTTP:
    def test_drained_shutdown_rejects_with_structured_503(self, datasets):
        P, _ = datasets
        service = make_service(datasets)
        with serve_in_background(service) as server:
            client = ServiceClient(server.url, retries=0)
            client.wait_until_healthy()
            assert client.query(list(P[0]), kind="rtk", k=5)["weights"] \
                is not None
            service.close(drain=True)
            with pytest.raises(ServiceUnavailableError,
                               match="shutting down"):
                client.query(list(P[1]), kind="rtk", k=5)
            snap = client.metrics()
            assert snap["requests"]["rejected_unavailable"] >= 1


class TestExactnessUnderSustainedChaos:
    def test_every_successful_answer_is_exact(self, datasets, naive_oracle,
                                              chaos_seed):
        """The headline invariant: a sustained, probabilistic mix of

        latency and engine faults may slow or flag responses — every
        response that comes back is still byte-identical to naive."""
        P, _ = datasets
        service = make_service(datasets, breaker_threshold=3,
                               breaker_reset_s=0.05, cache_capacity=8)
        plan = (FaultPlan(seed=chaos_seed)
                .add("scheduler.dispatch", "raise", times=None,
                     probability=0.3,
                     exception=lambda: RuntimeError("flaky engine"))
                .add("service.query", "latency", times=None,
                     probability=0.2, latency_s=0.001))
        answered = degraded_count = 0
        with service, inject(plan):
            for i in range(40):
                q = P[i % P.size]
                kind = "rtk" if i % 2 == 0 else "rkr"
                k = 3 + (i % 5)
                response = service.query(list(q), kind=kind, k=k)
                answered += 1
                degraded_count += 1 if response.get("degraded") else 0
                assert_exact_answer(response, naive_oracle, q, kind, k)
        assert answered == 40
        assert degraded_count > 0  # the plan really did bite
