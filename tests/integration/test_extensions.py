"""Integration tests for the beyond-paper extensions working together."""

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.core.approximate import reverse_kranks_bounds, reverse_topk_bounds
from repro.core.gir import GridIndexRRQ
from repro.core.storage import load_index, save_index
from repro.data.synthetic import (
    anticorrelated_products,
    clustered_products,
    exponential_products,
    uniform_weights,
)
from repro.ext.aggregate import (
    AggregateGridIndexRKR,
    aggregate_reverse_kranks_naive,
)
from repro.ext.dynamic import DynamicRRQEngine
from repro.ext.sparse import sparsify_weights


class TestAggregateAcrossDistributions:
    @pytest.mark.parametrize("gen", [clustered_products,
                                     anticorrelated_products,
                                     exponential_products])
    def test_bundle_matches_oracle(self, gen):
        P = gen(130, 4, seed=701)
        W = uniform_weights(110, 4, seed=702)
        bundle = [P[0], P[50], P[129]]
        for aggregation in ("sum", "max"):
            fast = AggregateGridIndexRKR(P, W).query(bundle, 7, aggregation)
            slow = aggregate_reverse_kranks_naive(P, W, bundle, 7, aggregation)
            assert fast.entries == slow.entries

    def test_sparse_weights_bundle(self):
        """Aggregate queries over sparsified preferences stay exact."""
        P = clustered_products(100, 8, seed=703)
        W = sparsify_weights(uniform_weights(90, 8, seed=704), nnz=3)
        bundle = [P[4], P[44]]
        fast = AggregateGridIndexRKR(P, W).query(bundle, 6)
        slow = aggregate_reverse_kranks_naive(P, W, bundle, 6)
        assert fast.entries == slow.entries


class TestPersistedIndexFeatureParity:
    def test_loaded_index_supports_everything(self, tmp_path):
        P = clustered_products(140, 5, seed=705)
        W = uniform_weights(120, 5, seed=706)
        original = GridIndexRRQ(P, W, partitions=16)
        save_index(tmp_path / "idx", original)
        loaded = load_index(tmp_path / "idx")
        q = P[11]
        # Exact queries...
        assert (loaded.reverse_topk(q, 9).weights
                == original.reverse_topk(q, 9).weights)
        # ...anytime envelopes...
        a1 = reverse_topk_bounds(loaded, q, 9)
        a2 = reverse_topk_bounds(original, q, 9)
        assert a1.certain == a2.certain
        assert a1.undecided == a2.undecided
        # ...and aggregate bundles on top of the loaded index.
        solver = AggregateGridIndexRKR(loaded.products, loaded.weights,
                                       gir=loaded)
        expected = aggregate_reverse_kranks_naive(P, W, [q, P[0]], 5)
        assert solver.query([q, P[0]], 5).entries == expected.entries


class TestDynamicToStaticParity:
    def test_dynamic_engine_reaches_static_state(self):
        """Building incrementally from empty equals a one-shot build."""
        P = clustered_products(90, 4, seed=707)
        W = uniform_weights(80, 4, seed=708)
        dynamic = DynamicRRQEngine(dim=4, value_range=P.value_range,
                                   partitions=16)
        for row in P.values:
            dynamic.insert_product(row)
        for row in W.values:
            dynamic.insert_weight(row)
        static = GridIndexRRQ(P, W, partitions=16)
        for qi in (0, 40, 89):
            q = P.values[qi]
            assert (dynamic.reverse_topk(q, 8).weights
                    == static.reverse_topk(q, 8).weights)
            assert (dynamic.reverse_kranks(q, 8).entries
                    == static.reverse_kranks(q, 8).entries)

    def test_anytime_envelope_respects_mutations(self):
        """Bounds from a rebuilt static GIR sandwich the dynamic truth."""
        P = clustered_products(100, 4, seed=709)
        W = uniform_weights(90, 4, seed=710)
        dynamic = DynamicRRQEngine.from_datasets(P, W, partitions=16)
        rng = np.random.default_rng(711)
        for _ in range(15):
            dynamic.insert_product(rng.random(4) * 0.999)
        dynamic.remove_product(2)
        q = P.values[5]
        exact = dynamic.reverse_topk(q, 10).weights
        # Rebuild a static view of the live data for the envelope.
        from repro.data.datasets import ProductSet, WeightSet

        live_P = ProductSet(
            dynamic._products.view[dynamic._products.alive],
            value_range=P.value_range,
        )
        gir = GridIndexRRQ(live_P, W, partitions=16)
        approx = reverse_topk_bounds(gir, q, 10)
        assert approx.certain <= exact <= approx.possible


class TestEnvelopeConsistencyWithOracle:
    @pytest.mark.parametrize("partitions", [4, 32, 128])
    def test_rtk_and_rkr_envelopes(self, partitions):
        P = exponential_products(160, 5, seed=712)
        W = uniform_weights(140, 5, seed=713)
        gir = GridIndexRRQ(P, W, partitions=partitions)
        naive = NaiveRRQ(P, W)
        for qi in (3, 80):
            q = P[qi]
            for k in (4, 25):
                exact_rtk = naive.reverse_topk(q, k).weights
                env = reverse_topk_bounds(gir, q, k)
                assert env.certain <= exact_rtk <= env.possible
                exact_rkr = naive.reverse_kranks(q, k).weights
                env2 = reverse_kranks_bounds(gir, q, k)
                assert env2.certain <= exact_rkr <= env2.candidates
