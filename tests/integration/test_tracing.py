"""Integration: one trace id, end to end.

The acceptance bar for the observability subsystem: a trace id supplied
at HTTP ingress (``X-Trace-Id``) must be visible, for the *same
request*, in all three places it is promised —

* the span tree at ``GET /traces?id=...`` (ingress → service → kernel);
* the slow-query log entry at ``GET /slowlog``;
* the Prometheus latency-histogram exemplar at
  ``GET /metrics?format=prometheus``;

while the JSON answer body stays byte-identical to the untraced answer
(the id travels only in the response header).
"""

import json
import threading
import urllib.request

import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.obs.prom import lint_exposition
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceLimits,
    canonical_json,
    encode_result,
    serve_in_background,
)


@pytest.fixture(scope="module")
def data():
    P = uniform_products(160, 4, seed=2301)
    W = uniform_weights(130, 4, seed=2302)
    return P, W


def _make_service(data, **config_kwargs):
    P, W = data
    config_kwargs.setdefault("batch_window_s", 0.15)
    config_kwargs.setdefault("limits", ServiceLimits(max_batch=32))
    return QueryService.from_datasets(
        P, W, method="gir", config=ServiceConfig(**config_kwargs)
    )


@pytest.fixture()
def served(data):
    """Threshold 0.0: every request lands in the slow-query log."""
    service = _make_service(data, slow_query_threshold_s=0.0)
    with serve_in_background(service) as server:
        client = ServiceClient(server.url)
        client.wait_until_healthy()
        yield service, client


def _post_query(base_url, payload, trace_id=None, timeout=30):
    headers = {"Content-Type": "application/json"}
    if trace_id is not None:
        headers["X-Trace-Id"] = trace_id
    request = urllib.request.Request(
        base_url + "/query", data=json.dumps(payload).encode(),
        method="POST", headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get_json(base_url, path, timeout=30):
    with urllib.request.urlopen(base_url + path, timeout=timeout) as resp:
        return json.loads(resp.read())


def _span_names(node):
    yield node["name"]
    for child in node["children"]:
        yield from _span_names(child)


class TestTraceIdEndToEnd:
    def test_one_id_in_traces_slowlog_and_exemplar(self, served, data):
        service, client = served
        P, W = data
        trace_id = "e2e-trace-7"
        status, headers, body = _post_query(
            client.base_url, {"product": 3, "kind": "rtk", "k": 10},
            trace_id=trace_id,
        )
        assert status == 200
        # (1) echoed on the response, never inside the body: the bytes
        # must equal the canonical untraced answer exactly.
        assert headers["X-Trace-Id"] == trace_id
        expected = NaiveRRQ(P, W).reverse_topk(P[3], 10)
        assert body == canonical_json(encode_result(expected, "rtk"))
        assert b"trace_id" not in body

        # (2) the span tree is readable under that id.
        found = _get_json(client.base_url, f"/traces?id={trace_id}")
        assert found["found"] is True
        trace = found["trace"]
        assert trace["trace_id"] == trace_id
        (root,) = trace["spans"]
        names = list(_span_names(root))
        assert names[0] == "http.query"
        assert "service.query" in names
        # batch of one dispatches through the engine span.
        assert "engine.query" in names or "kernel.query" in names

        # (3) the slow-query log (threshold 0.0) captured the request,
        # with the same id and the span tree attached.
        slowlog = _get_json(client.base_url, "/slowlog")
        entries = [e for e in slowlog["entries"]
                   if e.get("trace_id") == trace_id]
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "rtk" and entry["k"] == 10
        assert entry["latency_s"] >= 0.0
        # The log captures the spans closed so far: the service span and
        # everything under it (the http root is still open when the
        # entry is cut).
        assert any("service.query" in _span_names(s)
                   for s in entry["spans"])

        # (4) a live Prometheus scrape lints clean and carries the id
        # as a latency-bucket exemplar.
        with urllib.request.urlopen(
            client.base_url + "/metrics?format=prometheus", timeout=30
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert lint_exposition(text) == []
        assert f'trace_id="{trace_id}"' in text

    def test_generated_id_when_header_absent(self, served):
        _, client = served
        status, headers, _ = _post_query(
            client.base_url, {"product": 1, "kind": "rkr", "k": 4}
        )
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32  # freshly minted uuid hex
        found = _get_json(client.base_url, f"/traces?id={trace_id}")
        assert found["found"] is True

    def test_malformed_header_replaced_not_echoed(self, served):
        _, client = served
        status, headers, _ = _post_query(
            client.base_url, {"product": 2, "kind": "rtk", "k": 5},
            trace_id="bad id with spaces",
        )
        assert status == 200
        assert headers["X-Trace-Id"] != "bad id with spaces"
        assert len(headers["X-Trace-Id"]) == 32

    def test_error_response_still_carries_trace_id(self, served):
        _, client = served
        trace_id = "err-trace-1"
        status, headers, body = _post_query(
            client.base_url, {"product": 0, "kind": "sideways", "k": 5},
            trace_id=trace_id,
        )
        assert status == 400
        assert headers["X-Trace-Id"] == trace_id
        assert json.loads(body)["error"]
        found = _get_json(client.base_url, f"/traces?id={trace_id}")
        assert found["found"] is True
        (root,) = found["trace"]["spans"]
        assert root["status"] == "error"

    def test_coalesced_batch_traces_kernel_span(self, served):
        """Concurrent traced requests: at least one trace shows the
        batched kernel path (``kernel.query``) under its root."""
        service, client = served
        kernel_traced = []

        def round_trip(round_no):
            barrier = threading.Barrier(16)
            ids = [f"batch-{round_no}-{i}" for i in range(16)]

            def hit(i):
                barrier.wait()
                _post_query(client.base_url,
                            {"product": (round_no * 16 + i) % 100,
                             "kind": "rtk", "k": 6},
                            trace_id=ids[i])

            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return ids

        for round_no in range(5):
            ids = round_trip(round_no)
            for tid in ids:
                found = _get_json(client.base_url, f"/traces?id={tid}")
                if not found["found"]:
                    continue
                (root,) = found["trace"]["spans"]
                names = list(_span_names(root))
                if "kernel.query" in names or "kernel.fused" in names \
                        or "batch.derive" in names:
                    kernel_traced.append((tid, names))
            if kernel_traced:
                break

        assert kernel_traced, "no trace ever showed the batched path"
        _, names = kernel_traced[0]
        assert names[0] == "http.query"
        assert "service.query" in names


class TestSlowlogThreshold:
    def test_high_threshold_logs_nothing(self, data):
        service = _make_service(data, slow_query_threshold_s=30.0)
        with serve_in_background(service) as server:
            client = ServiceClient(server.url)
            client.wait_until_healthy()
            status, _, _ = _post_query(
                client.base_url, {"product": 5, "kind": "rtk", "k": 5}
            )
            assert status == 200
            slowlog = _get_json(client.base_url, "/slowlog")
            assert slowlog["recorded_total"] == 0
            assert slowlog["entries"] == []
            assert slowlog["threshold_s"] == 30.0

    def test_disabled_threshold_logs_nothing(self, data):
        service = _make_service(data, slow_query_threshold_s=None)
        with serve_in_background(service) as server:
            client = ServiceClient(server.url)
            client.wait_until_healthy()
            status, _, _ = _post_query(
                client.base_url, {"product": 5, "kind": "rtk", "k": 5}
            )
            assert status == 200
            slowlog = _get_json(client.base_url, "/slowlog")
            assert slowlog["recorded_total"] == 0


class TestTracesEndpoint:
    def test_limit_and_miss(self, served):
        _, client = served
        for i in range(4):
            _post_query(client.base_url,
                        {"product": i, "kind": "rtk", "k": 3},
                        trace_id=f"ring-{i}")
        snap = _get_json(client.base_url, "/traces?limit=2")
        assert len(snap["traces"]) == 2
        assert snap["finished_total"] >= 4
        miss = _get_json(client.base_url, "/traces?id=never-was")
        assert miss == {"found": False, "trace": None}
