"""Integration tests pinning the paper's query semantics end to end."""

import numpy as np
import pytest

from repro.data.datasets import ProductSet, WeightSet
from repro.data.real import dianping
from repro.data.synthetic import uniform_products, uniform_weights
from repro.queries.engine import RRQEngine
from repro.queries.topk import in_top_k, top_k


@pytest.fixture
def engine_pair():
    P = uniform_products(150, 5, seed=91)
    W = uniform_weights(130, 5, seed=92)
    return P, W, RRQEngine(P, W, method="gir")


class TestDefinitionConsistency:
    def test_rtk_membership_iff_topk_membership(self, engine_pair):
        """Definition 2: w in RTK(q) iff q would be in w's top-k."""
        P, W, engine = engine_pair
        q = P[10]
        k = 12
        result = engine.reverse_topk(q, k)
        for j in range(W.size):
            expected = in_top_k(P.values, W[j], q, k)
            assert (j in result.weights) == expected

    def test_rkr_returns_globally_best_ranks(self, engine_pair):
        """Definition 3: no excluded weight ranks q better than an included one."""
        P, W, engine = engine_pair
        q = P[42]
        k = 9
        result = engine.reverse_kranks(q, k)
        included = result.weights
        all_ranks = {
            j: int(np.sum(
                P.values[~np.all(P.values == q, axis=1)] @ W[j]
                < np.dot(W[j], q)
            ))
            for j in range(W.size)
        }
        worst_included = max(all_ranks[j] for j in included)
        for j in range(W.size):
            if j not in included:
                assert all_ranks[j] >= worst_included

    def test_rtk_monotone_in_k(self, engine_pair):
        """Growing k can only grow the RTK answer set."""
        P, W, engine = engine_pair
        q = P[3]
        previous = frozenset()
        for k in (1, 2, 5, 10, 50, 130):
            current = engine.reverse_topk(q, k).weights
            assert previous <= current
            previous = current

    def test_rkr_prefix_property(self, engine_pair):
        """RKR(k) answers are a prefix of RKR(k+5) answers."""
        P, W, engine = engine_pair
        q = P[99]
        small = engine.reverse_kranks(q, 5).entries
        large = engine.reverse_kranks(q, 10).entries
        assert large[:5] == small

    def test_rkr_never_empty_even_for_awful_products(self, engine_pair):
        """The motivation for RKR (paper Section 1): unlike RTK, every
        product finds its k best-matching customers."""
        P, W, engine = engine_pair
        q = P.values.max(axis=0) * 0.999  # unpopular product
        assert engine.reverse_topk(q, 5).size == 0
        assert len(engine.reverse_kranks(q, 5).entries) == 5


class TestFigure1EndToEnd:
    def test_full_story(self, figure1_data):
        """Run the complete Figure 1 narrative through the public engine."""
        Pv, Wv = figure1_data
        P = ProductSet(Pv, value_range=1.0)
        W = WeightSet(Wv)
        engine = RRQEngine(P, W, method="gir", partitions=8)

        # (a) top-2 lists per user.
        assert set(top_k(Pv, Wv[0], 2)) == {2, 1}       # Tom: p3, p2
        assert set(top_k(Pv, Wv[1], 2)) == {1, 4}       # Jerry: p2, p5
        assert set(top_k(Pv, Wv[2], 2)) == {1, 2}       # Spike: p2, p3

        # (b) RT-2 per phone.
        expected_rt2 = {
            0: frozenset(),            # p1: null
            1: frozenset({0, 1, 2}),   # p2: everyone
            2: frozenset({0, 2}),      # p3: Tom, Spike
            3: frozenset(),            # p4: null
            4: frozenset({1}),         # p5: Jerry
        }
        for idx, expected in expected_rt2.items():
            assert engine.reverse_topk(Pv[idx], 2).weights == expected

        # (c) R-1R per phone (Tom=0, Jerry=1, Spike=2).
        expected_r1r = {0: 0, 1: 1, 2: 0, 3: 0, 4: 1}
        for idx, expected in expected_r1r.items():
            winner = engine.reverse_kranks(Pv[idx], 1).entries[0][1]
            assert winner == expected


class TestRealWorldPipeline:
    def test_dianping_restaurant_targeting(self):
        """The paper's DIANPING use case: find target users for restaurants."""
        data = dianping(num_restaurants=120, num_users=100, seed=17)
        engine = RRQEngine(data.restaurants, data.users, method="gir")
        q = data.restaurants[0]
        rkr = engine.reverse_kranks(q, 10)
        assert len(rkr.entries) == 10
        # The answer must agree with a naive engine on the same data.
        naive = RRQEngine(data.restaurants, data.users, method="naive")
        assert rkr.entries == naive.reverse_kranks(q, 10).entries
