"""Integration: log-shipping replication over the real HTTP stack.

A primary and a hot standby run as live servers.  The bar: the standby
tails the primary's feed to lag 0 and serves canonically **identical**
answers; writes against the standby are refused with 409 until it is
promoted; a multi-endpoint client fails its writes over to whichever
server is primary.
"""

import time

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.durability import DurableDynamicRRQ, ReplicaTailer
from repro.errors import NotPrimaryError
from repro.service import (
    DurableQueryService,
    ServiceClient,
    ServiceConfig,
    canonical_json,
    serve_in_background,
)


def wait_for_lag_zero(client, target_lsn, timeout_s=10.0):
    """Wait until the standby reports the target LSN *and* lag 0.

    The lag figure is sampled at poll time, so it alone can be stale by
    one batch; the LSN comparison is the authoritative check.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        health = client.healthz()
        if (health.get("last_lsn") == target_lsn
                and health.get("replication_lag") == 0
                and health.get("status") == "ok"):
            return health
        time.sleep(0.02)
    raise AssertionError(f"standby never caught up: {client.healthz()}")


def seed_mutations(client, rng, products=25, weights=10):
    for _ in range(products):
        client.insert_product(list(rng.random(3) * 0.95))
    for _ in range(weights):
        w = rng.random(3) + 1e-3
        client.insert_weight(list(w / w.sum()))
    client.delete_product(3)
    client.delete_weight(1)


@pytest.fixture
def pair(tmp_path):
    """A serving primary and a tailing standby, plus their clients."""
    config = ServiceConfig(batch_window_s=0.0)
    primary_engine = DurableDynamicRRQ(tmp_path / "primary", dim=3,
                                       fsync="never")
    primary = DurableQueryService(primary_engine, config=config)
    with serve_in_background(primary) as primary_server:
        standby_engine = DurableDynamicRRQ(tmp_path / "standby", dim=3,
                                           fsync="never")
        standby = DurableQueryService(
            standby_engine, config=config, role="standby",
            primary_url=primary_server.url, poll_interval_s=0.01)
        with serve_in_background(standby) as standby_server:
            yield {
                "primary": primary,
                "standby": standby,
                "primary_client": ServiceClient(primary_server.url),
                "standby_client": ServiceClient(standby_server.url),
                "urls": (primary_server.url, standby_server.url),
            }
            standby.close()
        primary.close()


class TestHotStandby:
    def test_standby_reaches_lag_zero_with_identical_answers(self, pair):
        rng = np.random.default_rng(31)
        primary_client = pair["primary_client"]
        standby_client = pair["standby_client"]
        primary_client.wait_until_healthy()
        seed_mutations(primary_client, rng)

        acked = primary_client.healthz()["last_lsn"]
        health = wait_for_lag_zero(standby_client, acked)
        assert health["role"] == "standby"

        engine = pair["primary"].engine
        naive = NaiveRRQ(
            ProductSet(engine.products.live_values(),
                       value_range=engine.products.value_range),
            WeightSet(engine.weights.live_values()),
        )
        w_map = list(engine.weights.live_indices())
        for _ in range(4):
            q = list(rng.random(3) * 0.9)
            a = primary_client.query(vector=q, kind="rtk", k=5)
            b = standby_client.query(vector=q, kind="rtk", k=5)
            assert canonical_json(a) == canonical_json(b)
            assert frozenset(a["weights"]) == frozenset(
                int(w_map[j])
                for j in naive.reverse_topk(np.asarray(q), 5).weights)

    def test_standby_rejects_writes_with_409(self, pair):
        standby_client = pair["standby_client"]
        standby_client.wait_until_healthy()
        with pytest.raises(NotPrimaryError):
            standby_client.insert_product([0.1, 0.2, 0.3])
        rejected = standby_client.metrics()["mutations"]
        assert rejected["rejected_not_primary"] >= 1
        assert rejected["total"] == 0

    def test_metrics_expose_replication_and_wal_state(self, pair):
        rng = np.random.default_rng(32)
        primary_client = pair["primary_client"]
        standby_client = pair["standby_client"]
        primary_client.wait_until_healthy()
        seed_mutations(primary_client, rng, products=6, weights=3)
        wait_for_lag_zero(standby_client,
                          primary_client.healthz()["last_lsn"])

        primary_metrics = primary_client.metrics()
        assert primary_metrics["mutations"]["total"] == 11
        assert primary_metrics["mutations"]["by_op"]["insert_product"] == 6
        assert primary_metrics["durability"]["wal"]["appends"] == 11
        assert "replication" not in primary_metrics

        standby_metrics = standby_client.metrics()
        assert standby_metrics["replication"]["running"]
        assert standby_metrics["replication"]["applied_records"] == 11
        assert standby_metrics["replication"]["lag"] == 0

    def test_feed_endpoint_with_and_without_limit(self, pair):
        """``GET /replicate`` must not require the ``limit`` parameter."""
        primary_client = pair["primary_client"]
        primary_client.wait_until_healthy()
        primary_client.insert_product([0.2, 0.3, 0.4])
        bare = primary_client.replicate(since=0)
        capped = primary_client.replicate(since=0, limit=1)
        assert [r["lsn"] for r in bare["records"]] == [1]
        assert bare["records"] == capped["records"]
        assert not bare["reset"]


class TestFailoverClient:
    def test_writes_rotate_to_the_primary(self, pair):
        """A client pointed at (standby, primary) lands its writes."""
        standby_url, = [pair["urls"][1]]
        client = ServiceClient([standby_url, pair["urls"][0]])
        client.wait_until_healthy()
        reply = client.insert_product([0.4, 0.4, 0.4])
        assert reply["lsn"] == 1
        assert pair["primary"].engine.last_lsn >= 1

    def test_promote_transfers_the_write_role(self, pair):
        rng = np.random.default_rng(33)
        primary_client = pair["primary_client"]
        standby_client = pair["standby_client"]
        primary_client.wait_until_healthy()
        seed_mutations(primary_client, rng, products=8, weights=4)
        wait_for_lag_zero(standby_client,
                          primary_client.healthz()["last_lsn"])

        promoted = standby_client.promote()
        assert promoted["role"] == "primary"
        assert promoted["last_lsn"] == \
            pair["primary"].engine.last_lsn
        assert standby_client.healthz()["role"] == "primary"
        assert pair["standby"].replication_status() is None  # tailer gone

        # The promoted node now accepts writes...
        reply = standby_client.insert_product([0.2, 0.2, 0.2])
        assert reply["lsn"] == promoted["last_lsn"] + 1
        # ...and they are durable on *its* log, not the old primary's.
        assert pair["standby"].engine.last_lsn == reply["lsn"]
        assert pair["primary"].engine.last_lsn == promoted["last_lsn"]


class TestFeedReset:
    def test_standby_behind_the_retain_window_gets_a_reset(self, tmp_path):
        """A feed older than the retain window ships a full-state reset
        record; the standby adopts the new lineage and still converges."""
        rng = np.random.default_rng(34)
        primary = DurableDynamicRRQ(tmp_path / "primary", dim=3,
                                    fsync="never", feed_retain=4)
        for _ in range(20):
            primary.insert_product(rng.random(3) * 0.9)
        w = rng.random(3) + 1e-3
        primary.insert_weight(w / w.sum())

        feed = primary.replication_feed(0)
        assert feed["reset"]  # LSN 1 left the window long ago

        standby = DurableDynamicRRQ(tmp_path / "standby", dim=3,
                                    fsync="never")
        tailer = ReplicaTailer(standby,
                               lambda since: primary.replication_feed(since))
        while tailer.poll_once():
            pass
        status = tailer.status()
        assert status["feed_resets"] == 1
        assert status["lag"] == 0
        assert standby.last_lsn == primary.last_lsn
        assert standby.num_products == primary.num_products

        # The adopted lineage is durable: reopen and compare answers.
        standby.close()
        recovered = DurableDynamicRRQ(tmp_path / "standby", fsync="never")
        q = rng.random(3) * 0.9
        assert recovered.reverse_topk(q, 5).weights == \
            primary.reverse_topk(q, 5).weights
        recovered.close()
        primary.close()
