"""Cross-algorithm agreement: every implementation must produce the exact
answer of the naive oracle, on every distribution combination the paper
evaluates and across dimensionalities, k values and query choices.

This is the load-bearing correctness test of the reproduction: BBR, MPA,
SIM and GIR use wildly different pruning machinery, so agreement on
randomized instances is strong evidence each one is right.
"""

import numpy as np
import pytest

from repro.algorithms.bbr import BranchBoundRTK
from repro.algorithms.mpa import MarkedPruningRKR
from repro.algorithms.naive import NaiveRRQ
from repro.algorithms.rta import ThresholdRTK
from repro.algorithms.sim import SimpleScan
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import generate_products, generate_weights
from repro.ext.adaptive_grid import AdaptiveGridIndexRRQ
from repro.ext.sparse import SparseGridIndexRRQ
from repro.vectorized.batch import BatchOracle

SIZE_P = 140
SIZE_W = 120

RTK_ALGORITHMS = [SimpleScan, GridIndexRRQ, AdaptiveGridIndexRRQ,
                  SparseGridIndexRRQ, BranchBoundRTK, ThresholdRTK]
RKR_ALGORITHMS = [SimpleScan, GridIndexRRQ, AdaptiveGridIndexRRQ,
                  SparseGridIndexRRQ, MarkedPruningRKR]


def make_instance(p_dist, w_dist, d, seed):
    P = generate_products(p_dist, SIZE_P, d, seed=seed)
    W = generate_weights(w_dist, SIZE_W, d, seed=seed + 1000)
    return P, W


@pytest.mark.parametrize("p_dist,w_dist", [
    ("UN", "UN"), ("CL", "UN"), ("AC", "UN"),
    ("UN", "CL"), ("CL", "CL"), ("AC", "CL"),
    ("NORMAL", "UN"), ("EXP", "EXP"),
])
def test_distribution_matrix(p_dist, w_dist):
    """Paper Figure 10's data-set grid, plus the Table 4 distributions."""
    d, k = 4, 9
    P, W = make_instance(p_dist, w_dist, d, seed=hash((p_dist, w_dist)) % 1000)
    naive = NaiveRRQ(P, W)
    q = P[7]
    expected_rtk = naive.reverse_topk(q, k).weights
    expected_rkr = naive.reverse_kranks(q, k).entries
    for cls in RTK_ALGORITHMS:
        assert cls(P, W).reverse_topk(q, k).weights == expected_rtk, cls.__name__
    for cls in RKR_ALGORITHMS:
        assert cls(P, W).reverse_kranks(q, k).entries == expected_rkr, cls.__name__


@pytest.mark.parametrize("d", [1, 2, 3, 5, 8, 12])
def test_dimensionality_sweep(d):
    """d = 1 (degenerate) through high-d; weights collapse to w=(1,) at d=1."""
    P, W = make_instance("UN", "UN", d, seed=d)
    naive = NaiveRRQ(P, W)
    q = P[0]
    k = 6
    expected_rtk = naive.reverse_topk(q, k).weights
    expected_rkr = naive.reverse_kranks(q, k).entries
    for cls in RTK_ALGORITHMS:
        assert cls(P, W).reverse_topk(q, k).weights == expected_rtk, cls.__name__
    for cls in RKR_ALGORITHMS:
        assert cls(P, W).reverse_kranks(q, k).entries == expected_rkr, cls.__name__


@pytest.mark.parametrize("k", [1, 2, 10, SIZE_W, SIZE_W + 5])
def test_k_sweep(k):
    P, W = make_instance("UN", "UN", 5, seed=77)
    naive = NaiveRRQ(P, W)
    q = P[33]
    expected_rtk = naive.reverse_topk(q, k).weights
    expected_rkr = naive.reverse_kranks(q, k).entries
    for cls in RTK_ALGORITHMS:
        assert cls(P, W).reverse_topk(q, k).weights == expected_rtk, cls.__name__
    for cls in RKR_ALGORITHMS:
        assert cls(P, W).reverse_kranks(q, k).entries == expected_rkr, cls.__name__


def test_queries_not_in_p():
    """External query points (not drawn from P) work identically."""
    P, W = make_instance("UN", "UN", 4, seed=5)
    naive = NaiveRRQ(P, W)
    rng = np.random.default_rng(9)
    for _ in range(3):
        q = rng.random(4) * 9_000
        expected_rtk = naive.reverse_topk(q, 8).weights
        expected_rkr = naive.reverse_kranks(q, 8).entries
        for cls in RTK_ALGORITHMS:
            assert cls(P, W).reverse_topk(q, 8).weights == expected_rtk
        for cls in RKR_ALGORITHMS:
            assert cls(P, W).reverse_kranks(q, 8).entries == expected_rkr


def test_duplicated_points_and_query():
    """Heavy duplication: many copies of the query inside P, plus ties."""
    rng = np.random.default_rng(13)
    base = rng.random((40, 3)) * 100
    P_values = np.vstack([base, np.tile(base[0], (10, 1)), base[:5]])
    from repro.data.datasets import ProductSet, WeightSet

    P = ProductSet(P_values, value_range=1000.0)
    W = WeightSet(rng.dirichlet(np.ones(3), size=60))
    naive = NaiveRRQ(P, W)
    q = base[0]  # 11 exact duplicates in P
    expected_rtk = naive.reverse_topk(q, 5).weights
    expected_rkr = naive.reverse_kranks(q, 5).entries
    for cls in RTK_ALGORITHMS:
        assert cls(P, W).reverse_topk(q, 5).weights == expected_rtk, cls.__name__
    for cls in RKR_ALGORITHMS:
        assert cls(P, W).reverse_kranks(q, 5).entries == expected_rkr, cls.__name__


def test_batch_oracle_agrees_on_everything():
    P, W = make_instance("CL", "UN", 6, seed=21)
    naive = NaiveRRQ(P, W)
    oracle = BatchOracle(P, W)
    rng = np.random.default_rng(3)
    for _ in range(5):
        q = P[int(rng.integers(0, SIZE_P))]
        k = int(rng.integers(1, 40))
        assert oracle.reverse_topk(q, k).weights == naive.reverse_topk(q, k).weights
        assert (oracle.reverse_kranks(q, k).entries
                == naive.reverse_kranks(q, k).entries)


def test_many_random_trials_smallscale():
    """Dense randomized sweep at small scale — the shotgun test."""
    rng = np.random.default_rng(1234)
    for trial in range(8):
        d = int(rng.integers(2, 7))
        P, W = make_instance("UN", "UN", d, seed=trial + 500)
        q = P[int(rng.integers(0, SIZE_P))]
        k = int(rng.integers(1, 25))
        naive = NaiveRRQ(P, W)
        expected_rtk = naive.reverse_topk(q, k).weights
        expected_rkr = naive.reverse_kranks(q, k).entries
        gir = GridIndexRRQ(P, W, partitions=int(rng.choice([4, 16, 32])))
        sim = SimpleScan(P, W, chunk=int(rng.choice([1, 16, 256])))
        assert gir.reverse_topk(q, k).weights == expected_rtk
        assert gir.reverse_kranks(q, k).entries == expected_rkr
        assert sim.reverse_topk(q, k).weights == expected_rtk
        assert sim.reverse_kranks(q, k).entries == expected_rkr
