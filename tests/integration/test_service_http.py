"""Integration: the HTTP service answers exactly like the offline library.

The acceptance bar for the serving subsystem: a served ``POST /query``
answer (rtk and rkr) must be **byte-identical** to the canonical encoding
of the corresponding :class:`NaiveRRQ`/:class:`RRQEngine` answer, with the
micro-batched path actually exercised (at least one coalesced batch of
size > 1 visible in ``/metrics``).
"""

import json
import threading
import urllib.request

import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.data.synthetic import uniform_products, uniform_weights
from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceLimits,
    canonical_json,
    encode_result,
    serve_in_background,
)


@pytest.fixture(scope="module")
def data():
    P = uniform_products(160, 4, seed=2101)
    W = uniform_weights(130, 4, seed=2102)
    return P, W


@pytest.fixture(scope="module")
def naive(data):
    return NaiveRRQ(*data)


@pytest.fixture()
def served(data):
    """A live server (GIR engine, generous batch window) plus its client."""
    P, W = data
    service = QueryService.from_datasets(
        P, W, method="gir",
        config=ServiceConfig(
            batch_window_s=0.15,
            limits=ServiceLimits(max_batch=32),
        ),
    )
    with serve_in_background(service) as server:
        yield service, ServiceClient(server.url)


class TestAnswerFidelity:
    def test_rtk_and_rkr_byte_identical_to_naive(self, served, data, naive):
        """Raw response bytes == canonical encoding of the naive answer."""
        service, client = served
        client.wait_until_healthy()
        P, _ = data
        for product, kind, k in ((3, "rtk", 10), (11, "rkr", 5)):
            expected = (naive.reverse_topk(P[product], k) if kind == "rtk"
                        else naive.reverse_kranks(P[product], k))
            expected_bytes = canonical_json(encode_result(expected, kind))
            request = urllib.request.Request(
                client.base_url + "/query",
                data=json.dumps({"product": product, "kind": kind,
                                 "k": k}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = response.read()
            assert body == expected_bytes

    def test_concurrent_threads_hit_the_batched_path(self, served, data,
                                                     naive):
        """Concurrent rtk/rkr requests: all answers exact, >=1 coalesced
        batch of size > 1 reported by /metrics."""
        service, client = served
        client.wait_until_healthy()
        P, _ = data
        answers = {}
        errors = []

        def round_trip(round_no):
            indices = range(round_no * 16, round_no * 16 + 16)
            barrier = threading.Barrier(16)

            def hit(i):
                barrier.wait()
                kind = "rtk" if i % 2 == 0 else "rkr"
                k = 8 if kind == "rtk" else 4
                try:
                    answers[(i, kind, k)] = client.query(
                        product=i, kind=kind, k=k)
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=hit, args=(i,))
                       for i in indices]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        # Bursts of 16 unique queries against a 150 ms window; retry a few
        # rounds so a pathologically slow machine cannot flake the assert.
        for round_no in range(5):
            round_trip(round_no)
            if client.metrics()["batches"]["coalesced"] >= 1:
                break

        assert not errors
        for (i, kind, k), got in answers.items():
            expected = (naive.reverse_topk(P[i], k) if kind == "rtk"
                        else naive.reverse_kranks(P[i], k))
            assert canonical_json(got) == canonical_json(
                encode_result(expected, kind)), (i, kind, k)

        metrics = client.metrics()
        assert metrics["batches"]["coalesced"] >= 1
        assert metrics["batches"]["max_size"] > 1
        assert metrics["requests"]["total"] >= 16

    def test_cache_hit_on_repeat(self, served, data):
        service, client = served
        client.wait_until_healthy()
        first = client.query(product=7, kind="rtk", k=6)
        before = client.metrics()["cache"]["hits"]
        second = client.query(product=7, kind="rtk", k=6)
        assert first == second
        after = client.metrics()
        assert after["cache"]["hits"] == before + 1
        assert after["requests"]["cache_hits"] >= 1


class TestEndpoints:
    def test_healthz_info_metrics(self, served, data):
        service, client = served
        health = client.wait_until_healthy()
        assert health["status"] == "ok"
        info = client.info()
        P, W = data
        assert info["products"] == P.size
        assert info["weights"] == W.size
        assert info["method"] == "gir"
        metrics = client.metrics()
        for section in ("requests", "latency_ms", "batches", "cache", "ops"):
            assert section in metrics

    def test_rejections_are_structured(self, served):
        service, client = served
        client.wait_until_healthy()
        with pytest.raises(InvalidParameterError):
            client.query(product=10_000)          # out of range -> 400
        with pytest.raises(InvalidParameterError):
            client.query(vector=[1.0, 2.0])       # wrong dim -> 400
        with pytest.raises(InvalidParameterError):
            client._request("GET", "/nope")       # 404
        with pytest.raises(DeadlineExceededError):
            client.query(product=1, kind="rtk", k=3, timeout_ms=0)  # 504

    def test_sugar_helpers_match_dicts(self, served, data, naive):
        service, client = served
        client.wait_until_healthy()
        P, _ = data
        assert client.reverse_topk(P[5], k=9) == \
            naive.reverse_topk(P[5], 9).weights
        assert client.reverse_kranks(P[5], k=3) == \
            naive.reverse_kranks(P[5], 3).entries
