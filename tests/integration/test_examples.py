"""Smoke tests: every example script must run to completion.

Examples are the public face of the library; a refactor that breaks one
should fail CI, not a reader.  Each script is executed in-process with
``runpy`` (sharing the interpreter keeps this fast) and its stdout is
checked for the landmark line that proves the scenario actually ran.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> substring its output must contain.
LANDMARKS = {
    "quickstart.py": "Cross-checked against the brute-force oracle",
    "weight_space_analysis.py": "consistent",
    "tuning_the_grid.py": "Theorem 1 recommends",
    "serving_quickstart.py": "verified against the brute-force oracle",
}


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    # Examples must not depend on argv.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert LANDMARKS[script] in out


def test_all_examples_have_docstring_and_main():
    """Every example is documented and exposes the main() convention."""
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        assert source.lstrip().startswith(('#!', '"""')), script.name
        assert "def main()" in source, script.name
        assert '__name__ == "__main__"' in source, script.name
