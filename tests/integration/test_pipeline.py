"""End-to-end pipeline tests: generate -> persist -> reload -> quantize ->
compress -> query.  Exercises the full Table 2 / Section 3.2 data path."""

import numpy as np

from repro.core.approx import Quantizer, bits_needed, quantize_dataset
from repro.core.gir import GridIndexRRQ
from repro.data.io import (
    load_approx,
    load_products,
    load_weights,
    save_approx,
    save_products,
    save_weights,
)
from repro.data.synthetic import clustered_products, uniform_weights
from repro.queries.engine import RRQEngine


def test_full_pipeline_roundtrip(tmp_path):
    # 1. Generate and persist raw data sets.
    P = clustered_products(200, 6, seed=101)
    W = uniform_weights(150, 6, seed=102)
    p_path, w_path = tmp_path / "p.rrq", tmp_path / "w.rrq"
    save_products(p_path, P)
    save_weights(w_path, W)

    # 2. Reload and verify nothing was lost.
    P2 = load_products(p_path)
    W2 = load_weights(w_path)
    assert np.array_equal(P2.values, P.values)
    assert np.array_equal(W2.values, W.values)

    # 3. Quantize to approximate vectors and persist bit-packed.
    n = 32
    bits = bits_needed(n)
    pq = Quantizer.equal_width(n, value_range=P.value_range)
    # GIR spans the weight axis with the observed component range.
    wq = Quantizer.equal_width(n, value_range=float(W.values.max()))
    PA = quantize_dataset(P2.values, pq)
    WA = quantize_dataset(W2.values, wq)
    pa_path, wa_path = tmp_path / "p.rrqa", tmp_path / "w.rrqa"
    save_approx(pa_path, PA, bits)
    save_approx(wa_path, WA, bits)

    # 4. Reload the compressed approximations bit-exactly.
    PA2, pa_bits = load_approx(pa_path)
    WA2, wa_bits = load_approx(wa_path)
    assert pa_bits == wa_bits == bits
    assert np.array_equal(PA2, PA)
    assert np.array_equal(WA2, WA)

    # 5. Query with GIR built on the reloaded data and cross-check.
    gir = GridIndexRRQ(P2, W2, partitions=n)
    assert np.array_equal(gir.PA, PA)
    assert np.array_equal(gir.WA, WA)
    naive = RRQEngine(P2, W2, method="naive")
    q = P2[13]
    assert gir.reverse_topk(q, 10).weights == naive.reverse_topk(q, 10).weights
    assert (gir.reverse_kranks(q, 6).entries
            == naive.reverse_kranks(q, 6).entries)


def test_compression_overhead_claim(tmp_path):
    """Section 3.2: approximate files are < 1/10 of the originals."""
    P = clustered_products(500, 6, seed=103)
    raw = tmp_path / "raw.rrq"
    approx = tmp_path / "ap.rrqa"
    save_products(raw, P)
    pq = Quantizer.equal_width(64, value_range=P.value_range)
    save_approx(approx, quantize_dataset(P.values, pq), bits=6)
    assert approx.stat().st_size < raw.stat().st_size / 9
