"""Acceptance tests for the cluster: real worker processes, real kills.

The ISSUE bar, verbatim: a coordinator over 3 worker processes returns
byte-identical RTK/RKR answers to ``NaiveRRQ``, **including with one
worker SIGKILLed mid-run** (responses flagged ``"degraded_shards"``),
and a single ``X-Trace-Id`` appears in both the coordinator's and a
worker's ``/traces``.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.algorithms.naive import NaiveRRQ
from repro.cluster import LocalCluster
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import uniform_products, uniform_weights
from repro.service.server import canonical_json, encode_result

NUM_WORKERS = 3


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _post(url, payload, headers=None, timeout=30.0):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return (json.loads(response.read().decode()),
                response.headers.get("X-Trace-Id"))


@pytest.fixture(scope="module")
def datasets():
    products = uniform_products(size=110, dim=3, seed=611)
    weights = uniform_weights(size=84, dim=3, seed=612)
    return products, weights


@pytest.fixture(scope="module")
def cluster(datasets, tmp_path_factory):
    products, weights = datasets
    with LocalCluster(products, weights, num_workers=NUM_WORKERS,
                      base_dir=tmp_path_factory.mktemp("cluster")) as c:
        yield c


def expected(oracle, q, kind, k):
    if kind == "rtk":
        return encode_result(oracle.reverse_topk(q, k), "rtk")
    return encode_result(oracle.reverse_kranks(q, k), "rkr")


@pytest.mark.timeout(240)
class TestClusterAcceptance:
    def test_byte_identical_to_naive_over_full_data(self, cluster,
                                                    datasets):
        products, weights = datasets
        oracle = NaiveRRQ(products, weights)
        client = cluster.client()
        rng = np.random.default_rng(613)
        for _ in range(4):
            q = products[int(rng.integers(0, products.size))]
            for kind in ("rtk", "rkr"):
                got = client.query(list(q), kind=kind, k=9)
                assert canonical_json(got) == canonical_json(
                    expected(oracle, q, kind, 9))

    def test_one_trace_id_spans_coordinator_and_workers(self, cluster,
                                                        datasets):
        products, _ = datasets
        trace_id = "acceptancetrace7"
        _, echoed = _post(
            cluster.url + "/query",
            {"vector": list(products[4]), "kind": "rtk", "k": 5},
            headers={"X-Trace-Id": trace_id})
        assert echoed == trace_id
        # The same id indexes the request's spans at the coordinator...
        coord = _get(cluster.url + f"/traces?id={trace_id}")
        assert coord["found"] is True

        def names(nodes):
            for node in nodes:
                yield node["name"]
                yield from names(node["children"])

        span_names = set(names(coord["trace"]["spans"]))
        assert "cluster.scatter_gather" in span_names
        assert "cluster.shard_query" in span_names
        # ...and at every worker the fan-out touched.
        worker_hits = []
        for worker in cluster.workers:
            snapshot = _get(worker.url + f"/traces?id={trace_id}")
            worker_hits.append(snapshot["found"])
        assert all(worker_hits)

    def test_cluster_introspection_routes(self, cluster):
        topology = _get(cluster.url + "/cluster/topology")
        assert topology["num_shards"] == NUM_WORKERS
        assert [s["shard_id"] for s in topology["shards"]] == \
            list(range(NUM_WORKERS))
        health = _get(cluster.url + "/cluster/healthz")
        assert health["status"] == "ok"
        assert [s["status"] for s in health["shards"]] == \
            ["ok"] * NUM_WORKERS
        info = _get(cluster.url + "/info")
        assert info["role"] == "coordinator"
        assert info["shards"] == NUM_WORKERS

    def test_sigkill_mid_run_stays_byte_identical_and_flagged(
            self, cluster, datasets):
        products, weights = datasets
        oracle = NaiveRRQ(products, weights)
        client = cluster.client()
        rng = np.random.default_rng(617)

        # Mid-run: answers flowing before the kill...
        q0 = products[int(rng.integers(0, products.size))]
        before = client.query(list(q0), kind="rkr", k=7)
        assert "degraded_shards" not in before

        cluster.kill_worker(1)  # SIGKILL — no goodbye, no flush
        assert not cluster.workers[1].alive

        # ...and byte-identical answers after it, flagged degraded.
        for _ in range(3):
            q = products[int(rng.integers(0, products.size))]
            for kind in ("rtk", "rkr"):
                got = client.query(list(q), kind=kind, k=7)
                assert got.pop("degraded") is True
                assert got.pop("degraded_shards") == [1]
                assert canonical_json(got) == canonical_json(
                    expected(oracle, q, kind, 7))

        health = _get(cluster.url + "/cluster/healthz")
        assert health["status"] == "unreachable"
        assert health["shards"][1]["status"] == "unreachable"


@pytest.mark.timeout(240)
class TestClusterMutations:
    """Ownership-aware write routing over a separate (mutable) cluster."""

    @pytest.fixture()
    def fresh_cluster(self, datasets, tmp_path):
        products, weights = datasets
        with LocalCluster(products, weights, num_workers=NUM_WORKERS,
                          base_dir=tmp_path) as c:
            yield c

    def test_weight_insert_routes_to_owner_and_serves(self, fresh_cluster,
                                                      datasets):
        products, weights = datasets
        client = fresh_cluster.client()
        new_w = [0.5, 0.3, 0.2]
        receipt, _ = _post(fresh_cluster.url + "/insert",
                           {"type": "weight", "vector": new_w})
        assert receipt["op"] == "insert_weight"
        # Range partitioner appends to the last shard; the new weight's
        # global id continues the global sequence.
        assert receipt["shard"] == NUM_WORKERS - 1
        assert receipt["index"] == weights.size

        oracle = NaiveRRQ(products, WeightSet(
            np.vstack([weights.values, new_w])))
        q = products[9]
        got = client.query(list(q), kind="rkr", k=int(weights.size) + 1)
        assert canonical_json(got) == canonical_json(
            expected(oracle, q, "rkr", int(weights.size) + 1))

    def test_product_insert_broadcasts_consistently(self, fresh_cluster,
                                                    datasets):
        products, weights = datasets
        client = fresh_cluster.client()
        new_p = [0.41, 0.52, 0.63]
        receipt, _ = _post(fresh_cluster.url + "/insert",
                           {"type": "product", "vector": new_p})
        assert receipt["op"] == "insert_product"
        assert receipt["index"] == products.size
        assert len(receipt["shards"]) == NUM_WORKERS

        oracle = NaiveRRQ(
            ProductSet(np.vstack([products.values, new_p]),
                       value_range=products.value_range),
            weights)
        got = client.query(product=receipt["index"], kind="rtk", k=6)
        assert canonical_json(got) == canonical_json(
            expected(oracle, np.array(new_p), "rtk", 6))

    def test_compact_is_refused_cluster_wide(self, fresh_cluster):
        request = urllib.request.Request(
            fresh_cluster.url + "/compact", data=b"{}", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "rebalance" in body["message"]
