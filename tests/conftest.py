"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import uniform_products, uniform_weights


@pytest.fixture
def small_products():
    """A small uniform product set (fast for exhaustive checks)."""
    return uniform_products(size=120, dim=4, seed=11)


@pytest.fixture
def small_weights():
    """A small uniform weight set matching ``small_products``."""
    return uniform_weights(size=100, dim=4, seed=12)


@pytest.fixture
def rng():
    """Deterministic RNG for ad-hoc randomness inside tests."""
    return np.random.default_rng(2024)


@pytest.fixture
def figure1_data():
    """The paper's Figure 1 cell-phone example, verbatim.

    Returns ``(P, W)`` value arrays: five phones scored on (smart, rating)
    and three users (Tom, Jerry, Spike).
    """
    P = np.array([
        [0.6, 0.7],   # p1
        [0.2, 0.3],   # p2
        [0.1, 0.6],   # p3
        [0.7, 0.5],   # p4
        [0.8, 0.2],   # p5
    ])
    W = np.array([
        [0.8, 0.2],   # Tom
        [0.3, 0.7],   # Jerry
        [0.9, 0.1],   # Spike
    ])
    return P, W
