"""Figure 12 — performance on the real data sets with varying k.

Panels: (a) COLOR with RTK, (b) HOUSE with RKR, (c) DIANPING with RTK,
(d) DIANPING with RKR.  Real data is replaced by the synthetic stand-ins
of :mod:`repro.data.real` (see DESIGN.md Section 6).  Expected shape: GIR
leads on every set; all algorithms are largely insensitive to k because
k << |W|.
"""

import pytest

from repro.data.real import color, dianping, house
from repro.data.synthetic import uniform_weights

from bench_common import (
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    ms,
    record_table,
    sample_queries,
    scaled_size,
)

K_VALUES = (5, 10, 20, 30, 50)  # scaled from the paper's 100-500


@pytest.fixture(scope="module")
def datasets():
    size = max(400, scaled_size(400))
    color_p = color(size=size, seed=1)
    color_w = uniform_weights(size, color_p.dim, seed=2)
    house_p = house(size=size, seed=3)
    house_w = uniform_weights(size, house_p.dim, seed=4)
    dp = dianping(num_restaurants=size, num_users=size, seed=5)
    return {
        "COLOR": (color_p, color_w),
        "HOUSE": (house_p, house_w),
        "DIANPING": (dp.restaurants, dp.users),
    }


def sweep(builder, P, W, kind):
    queries = sample_queries(P, count=2, seed=9)
    rows = []
    for k in K_VALUES:
        res = compare(builder(P, W), queries, k, kind)
        names = sorted(res)
        rows.append([k] + [ms(res[name][0]) for name in names])
    return sorted(res), rows


@pytest.fixture(scope="module")
def figure12_tables(datasets):
    tables = {}
    # (a) COLOR with RTK.
    names, rows = sweep(build_rtk_algorithms, *datasets["COLOR"], "rtk")
    tables["color_rtk"] = (names, rows)
    # (b) HOUSE with RKR.
    names, rows = sweep(build_rkr_algorithms, *datasets["HOUSE"], "rkr")
    tables["house_rkr"] = (names, rows)
    # (c, d) DIANPING with both.
    names, rows = sweep(build_rtk_algorithms, *datasets["DIANPING"], "rtk")
    tables["dianping_rtk"] = (names, rows)
    names, rows = sweep(build_rkr_algorithms, *datasets["DIANPING"], "rkr")
    tables["dianping_rkr"] = (names, rows)
    return tables


def test_figure12(benchmark, figure12_tables, datasets):
    titles = {
        "color_rtk": "Figure 12a: COLOR, RTK",
        "house_rkr": "Figure 12b: HOUSE, RKR",
        "dianping_rtk": "Figure 12c: DIANPING, RTK",
        "dianping_rkr": "Figure 12d: DIANPING, RKR",
    }
    for key, (names, rows) in figure12_tables.items():
        banner(titles[key])
        record_table(
            f"fig12_{key}",
            ["k"] + [f"{n} ms" for n in names],
            rows,
            titles[key] + " (real-data stand-ins, varying k)",
        )
        # Shape: all algorithms are insensitive to k (within noise, 10x).
        for col in range(1, len(names) + 1):
            series = [row[col] for row in rows]
            assert max(series) <= max(min(series) * 10.0, 1.0)

    # Headline benchmark: DIANPING RKR with GIR.
    P, W = datasets["DIANPING"]
    gir = build_rkr_algorithms(P, W)["GIR"]
    q = sample_queries(P, count=1, seed=10)[0]
    benchmark(lambda: gir.reverse_kranks(q, 10))
