"""Extra baseline: RTA (threshold-algorithm reverse top-k) vs BBR vs GIR.

Not a table in the paper — RTA [13] is BBR's predecessor and appears in
the related work — but comparing the whole lineage on one workload makes
the evaluation self-contained: RTA (per-weight TA), BBR (dual R-trees),
SIM (scan) and GIR (grid-filtered scan).
"""

import pytest

from repro.algorithms.rta import ThresholdRTK

from bench_common import (
    DEFAULT_K,
    banner,
    build_rtk_algorithms,
    make_workload,
    ms,
    per_query_pairwise,
    record_table,
    sample_queries,
    time_rtk,
)

DIMS = (2, 4, 6, 10)


@pytest.fixture(scope="module")
def rta_rows():
    rows = []
    for d in DIMS:
        P, W = make_workload("UN", "UN", d, seed=d * 7)
        queries = sample_queries(P, count=2, seed=d)
        nq = len(queries)
        algs = build_rtk_algorithms(P, W)
        algs["RTA"] = ThresholdRTK(P, W)
        row = [d]
        for name in ("GIR", "BBR", "RTA", "SIM"):
            mean_s, counter = time_rtk(algs[name], queries, DEFAULT_K)
            row.extend([ms(mean_s), per_query_pairwise(counter, nq)])
        rows.append(row)
    return rows


def test_rta_lineage(benchmark, rta_rows):
    banner("Extra: the reverse top-k lineage — RTA vs BBR vs GIR vs SIM")
    record_table(
        "baseline_rta",
        ["d",
         "GIR ms", "GIR pw", "BBR ms", "BBR pw",
         "RTA ms", "RTA pw", "SIM ms", "SIM pw"],
        rta_rows,
        "RTK baselines across the literature lineage (UN data)",
    )
    # Shape: GIR needs the fewest score evaluations at d >= 4.
    for row in rta_rows[1:]:
        gir_pw = row[2]
        assert gir_pw <= min(row[4], row[6], row[8])

    P, W = make_workload("UN", "UN", 4, seed=3)
    rta = ThresholdRTK(P, W)
    q = sample_queries(P, count=1, seed=3)[0]
    benchmark(lambda: rta.reverse_topk(q, DEFAULT_K))
