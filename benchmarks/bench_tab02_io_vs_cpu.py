"""Table 2 — I/O time versus RRQ processing time versus pairwise computations.

The paper's point: reading the data files is negligible next to the CPU
cost of the query, and most of that CPU cost is the pairwise inner
products.  Expected shape: reading << processing, and the pairwise share
of processing grows with data size.
"""

import numpy as np
import pytest

from repro.algorithms.sim import SimpleScan
from repro.data.io import load_products, load_weights, save_products, save_weights
from repro.data.synthetic import uniform_products, uniform_weights
from repro.stats.timing import LapClock

from bench_common import banner, ms, record_table, scaled_size

SIZES = (250, 1000, 4000)  # scaled stand-ins for the paper's 1K/10K/100K
DIM = 6


def measure_one(size, tmp_path):
    P = uniform_products(size, DIM, seed=size)
    W = uniform_weights(size, DIM, seed=size + 1)
    p_path = tmp_path / f"p{size}.rrq"
    w_path = tmp_path / f"w{size}.rrq"
    save_products(p_path, P)
    save_weights(w_path, W)

    clock = LapClock()
    with clock.lap("read"):
        P2 = load_products(p_path)
        W2 = load_weights(w_path)

    sim = SimpleScan(P2, W2)
    q = P2[0]
    with clock.lap("process"):
        result = sim.reverse_kranks(q, 10)

    # Pairwise-computation share: re-run just the inner products the scan
    # actually performed (same count, same kernels).
    evaluated = result.counter.pairwise
    block = P2.values
    w = W2[0]
    reps = max(1, evaluated // block.shape[0])
    with clock.lap("pairwise"):
        for _ in range(reps):
            block @ w
    return clock


@pytest.fixture(scope="module")
def table2_rows(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("tab02")
    rows = []
    for size in SIZES:
        clock = measure_one(size, tmp_path)
        rows.append([
            size,
            ms(clock.get("read")),
            ms(clock.get("process")),
            ms(clock.get("pairwise")),
        ])
    return rows


def test_table2(benchmark, table2_rows, tmp_path):
    banner("Table 2: time for reading data vs processing RRQ (d = 6)")
    record_table(
        "tab02_io_vs_cpu",
        ["|P|=|W|", "Reading data (ms)", "Processing RRQ (ms)",
         "Pairwise computations (ms)"],
        table2_rows,
        "Table 2 reproduction",
    )
    # Shape: at the largest size, reading is a small fraction of processing.
    largest = table2_rows[-1]
    assert largest[1] < largest[2], "I/O should be cheaper than processing"

    # Headline benchmark: reading the largest file pair.
    P = uniform_products(scaled_size(), DIM, seed=1)
    path = tmp_path / "bench.rrq"
    save_products(path, P)
    benchmark(lambda: load_products(path))
