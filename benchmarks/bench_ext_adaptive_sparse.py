"""Benches for the Section 7 future-work extensions.

* **Adaptive (quantile) grid** on skewed data: the paper predicts a
  distribution-adapted non-equal-width grid should filter better when P is
  clustered or exponential.  Compares equal-width vs quantile boundaries
  at the same n.
* **Sparse preferences**: "a user is normally interested in a few
  attributes" — compares dense GIR against the sparse engine as the number
  of non-zero weight components shrinks.
"""

import pytest

from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import (
    exponential_products,
    uniform_products,
    uniform_weights,
)
from repro.ext.adaptive_grid import AdaptiveGridIndexRRQ
from repro.ext.sparse import SparseGridIndexRRQ, sparsify_weights
from repro.stats.counters import OpCounter
from repro.stats.timing import Timer

from bench_common import banner, ms, record_table, sample_queries, scaled_size

DIM = 6
K = 10


def run(alg, queries, k=K):
    timer = Timer()
    counter = OpCounter()
    answers = []
    for q in queries:
        with timer.measure():
            answers.append(alg.reverse_kranks(q, k, counter=counter))
    return timer.mean, counter, [r.entries for r in answers]


@pytest.fixture(scope="module")
def skewed_workload():
    size = max(400, scaled_size(400))
    P = exponential_products(size, DIM, seed=61)
    W = uniform_weights(size, DIM, seed=62)
    return P, W, sample_queries(P, count=2, seed=63)


def test_adaptive_grid_on_skewed_data(benchmark, skewed_workload):
    P, W, queries = skewed_workload
    rows = []
    reference = None
    for name, alg in (
        ("equal-width", GridIndexRRQ(P, W, partitions=16)),
        ("quantile", AdaptiveGridIndexRRQ(P, W, partitions=16)),
    ):
        t, c, entries = run(alg, queries)
        if reference is None:
            reference = entries
        assert entries == reference  # both are exact
        rows.append([name, ms(t), c.pairwise,
                     f"{c.filtering_ratio()*100:.1f}%"])
    banner("Extension: adaptive (quantile) grid on exponential data")
    record_table(
        "ext_adaptive_grid",
        ["grid", "mean ms", "pairwise", "bound filtering"],
        rows,
        "Equal-width vs quantile boundaries (EXP products, n=16)",
    )
    # The adapted grid should not filter worse on skewed data.
    eq_f = float(rows[0][3].rstrip("%"))
    ad_f = float(rows[1][3].rstrip("%"))
    assert ad_f >= eq_f - 5.0

    alg = AdaptiveGridIndexRRQ(P, W, partitions=16)
    benchmark(lambda: alg.reverse_kranks(queries[0], K))


def test_sparse_preferences(benchmark):
    size = max(400, scaled_size(400))
    d = 12
    P = uniform_products(size, d, seed=64)
    dense_W = uniform_weights(size, d, seed=65)
    queries = sample_queries(P, count=2, seed=66)
    rows = []
    for nnz in (12, 6, 3, 2):
        W = sparsify_weights(dense_W, nnz=nnz) if nnz < d else dense_W
        dense = GridIndexRRQ(P, W, partitions=32)
        sparse = SparseGridIndexRRQ(P, W, partitions=32)
        t_dense, c_dense, e_dense = run(dense, queries)
        t_sparse, c_sparse, e_sparse = run(sparse, queries)
        assert e_dense == e_sparse  # identical answers
        rows.append([nnz, ms(t_dense), ms(t_sparse),
                     c_dense.additions, c_sparse.additions])
    banner("Extension: sparse preference vectors (d=12)")
    record_table(
        "ext_sparse",
        ["nnz", "dense GIR ms", "sparse GIR ms",
         "dense additions", "sparse additions"],
        rows,
        "Dense vs sparse GIR as weight support shrinks",
    )
    # Bound-assembly additions must shrink with support size.
    assert rows[-1][4] < rows[0][4]

    W2 = sparsify_weights(dense_W, nnz=2)
    sparse = SparseGridIndexRRQ(P, W2, partitions=32)
    benchmark(lambda: sparse.reverse_kranks(queries[0], K))
