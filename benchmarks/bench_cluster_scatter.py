#!/usr/bin/env python
"""Scatter-gather cluster vs a single serving node, end to end over HTTP.

Stands up the two deployments the repo can actually run —

* **single**: one ``repro-rrq serve --durable`` worker process holding
  all of ``W``;
* **cluster**: a :class:`~repro.cluster.LocalCluster` (coordinator front
  door + N worker processes, ``W`` range-partitioned, products
  replicated)

— and drives the same pinned product queries through both, RTK and RKR,
measuring wall-clock per request at the client.  Every cluster answer is
checked byte-identical (canonical JSON) to the single-node answer, and
no response may carry a ``degraded`` flag: the speedup only counts if
the answers are exact.

The dynamic engine behind ``serve --durable`` walks ``W`` one weight at
a time, so each worker does ``1/N`` of the work — but the shards only
run *concurrently* when the machine has cores to run them on.  The
expected speedup is roughly ``min(workers, cpu_count)`` minus the
coordinator's overhead (one HTTP hop + the k-smallest merge, both
sub-millisecond at these sizes); on a single-core box the bench
therefore measures pure coordination overhead (~0.8x), which is why
``machine.cpu_count`` is part of the committed report.

Default sizes follow the kernel trajectory configs (|P| = 1500,
|W| = 100k, d = 4); results land in ``BENCH_cluster.json``.

Examples::

    PYTHONPATH=src python benchmarks/bench_cluster_scatter.py
    PYTHONPATH=src python benchmarks/bench_cluster_scatter.py --smoke
    PYTHONPATH=src python benchmarks/bench_cluster_scatter.py --workers 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

DEFAULT_PRODUCTS = 1500
DEFAULT_WEIGHTS = 100_000
DEFAULT_DIM = 4
DEFAULT_WORKERS = 3
DEFAULT_QUERIES = 4
DEFAULT_K = 10
DEFAULT_SEED = 7

#: Generous per-shard budget: a 100k-weight RKR walk takes ~10 s on the
#: single node, so shard answers must never be cut off by the default 5 s.
SHARD_TIMEOUT_S = 120.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Coordinator + N workers vs one serving node "
                    "(writes BENCH_cluster.json)")
    parser.add_argument("--products", type=int, default=DEFAULT_PRODUCTS)
    parser.add_argument("--weights", type=int, default=DEFAULT_WEIGHTS)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="cluster worker-process count (default 3)")
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES,
                        help="pinned product query points per kind")
    parser.add_argument("-k", type=int, default=DEFAULT_K)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config (seconds) for a quick check")
    parser.add_argument("--hedge", action="store_true",
                        help="also bench hedged vs unhedged reads against "
                             "a cluster whose shard-0 primary straggles "
                             "(each shard gets one standby)")
    parser.add_argument("--straggle-ms", type=float, default=150.0,
                        help="injected per-query latency on the shard-0 "
                             "primary in --hedge mode (default 150)")
    parser.add_argument("--out", default="BENCH_cluster.json")
    return parser


def timed_queries(client, queries, k: int, kind: str, progress):
    """Serial closed-loop requests; returns (latencies, answers)."""
    latencies: List[float] = []
    answers = []
    for i, q in enumerate(queries):
        start = time.perf_counter()
        # timeout_ms lifts the server's 10s dispatch deadline too: a
        # full-W RKR walk on the single node takes longer than that.
        answer = client.query(list(q), kind=kind, k=k, timeout_s=600.0,
                              timeout_ms=300_000.0)
        latencies.append(time.perf_counter() - start)
        answers.append(answer)
        progress(f"    {kind} query {i}: {latencies[-1]:.2f}s")
    return latencies, answers


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench.harness import machine_info
    from repro.cluster import LocalCluster
    from repro.cluster.launcher import WorkerProcess
    from repro.data.synthetic import uniform_products, uniform_weights
    from repro.durability import DurableDynamicRRQ
    from repro.service.client import ServiceClient
    from repro.service.server import canonical_json
    from repro.stats.timing import percentile

    import numpy as np
    import tempfile
    from pathlib import Path

    args = build_parser().parse_args(argv)
    if args.smoke:
        args.products = min(args.products, 200)
        args.weights = min(args.weights, 2000)
        args.queries = min(args.queries, 2)

    def progress(message: str) -> None:
        print(message, flush=True)

    products = uniform_products(size=args.products, dim=args.dim,
                                seed=args.seed)
    weights = uniform_weights(size=args.weights, dim=args.dim,
                              seed=args.seed + 1)
    rng = np.random.default_rng(args.seed + 2)
    query_indices = [int(i) for i in
                     rng.integers(0, products.size, args.queries)]
    queries = [products[i] for i in query_indices]
    base = Path(tempfile.mkdtemp(prefix="rrq-bench-cluster-"))

    progress(f"data: |P|={products.size} |W|={weights.size} d={args.dim}; "
             f"{args.queries} pinned product queries x rtk/rkr, "
             f"k={args.k}")

    report = {
        "benchmark": "cluster_scatter",
        "schema": 1,
        "created_utc": time.strftime(  # wall-clock: report timestamp
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine_info(),
        "params": {
            "n_products": args.products, "n_weights": args.weights,
            "dim": args.dim, "workers": args.workers, "k": args.k,
            "queries": args.queries, "seed": args.seed,
            "partitioner": "range", "smoke": bool(args.smoke),
        },
        "query_indices": query_indices,
        "ok": True,
    }

    # --- single node: one durable worker over the full data -----------
    progress("single node: bootstrapping + starting 1 worker...")
    single_dir = base / "single"
    start = time.perf_counter()
    DurableDynamicRRQ.bootstrap(single_dir, products, weights,
                                fsync="never").close()
    worker = WorkerProcess(single_dir, "--fsync", "never",
                           start_timeout_s=120.0)
    single = {}
    try:
        client = ServiceClient(worker.url, retries=0)
        client.wait_until_healthy(timeout_s=120.0)
        single["startup_s"] = time.perf_counter() - start
        progress(f"  up in {single['startup_s']:.1f}s at {worker.url}")
        single_answers = {}
        for kind in ("rtk", "rkr"):
            latencies, answers = timed_queries(client, queries, args.k,
                                               kind, progress)
            single_answers[kind] = answers
            single[kind] = {
                "p50_s": percentile(latencies, 0.50),
                "max_s": max(latencies),
                "total_s": sum(latencies),
            }
    finally:
        worker.terminate()

    # --- cluster: coordinator + N workers over partitioned W ----------
    progress(f"cluster: bootstrapping + starting {args.workers} workers...")
    start = time.perf_counter()
    cluster_report = {}
    with LocalCluster(products, weights, num_workers=args.workers,
                      base_dir=base / "cluster", fsync="never",
                      shard_timeout_s=SHARD_TIMEOUT_S,
                      start_timeout_s=120.0) as cluster:
        client = cluster.client(retries=0)
        cluster_report["startup_s"] = time.perf_counter() - start
        progress(f"  up in {cluster_report['startup_s']:.1f}s "
                 f"at {cluster.url}")
        mismatches = 0
        for kind in ("rtk", "rkr"):
            latencies, answers = timed_queries(client, queries, args.k,
                                               kind, progress)
            for got, want in zip(answers, single_answers[kind]):
                if "degraded" in got or \
                        canonical_json(got) != canonical_json(want):
                    mismatches += 1
            cluster_report[kind] = {
                "p50_s": percentile(latencies, 0.50),
                "max_s": max(latencies),
                "total_s": sum(latencies),
                "speedup_vs_single":
                    (single[kind]["p50_s"] / percentile(latencies, 0.50)
                     if latencies and percentile(latencies, 0.50) > 0
                     else 0.0),
            }
        report["mismatches"] = mismatches
        report["ok"] = mismatches == 0

    report["single"] = single
    report["cluster"] = cluster_report

    # --- hedged reads vs an injected straggler ------------------------
    # Same data, same queries, but the shard-0 primary answers every
    # query args.straggle_ms late and every shard carries one standby.
    # Unhedged, the scatter-gather can never beat the straggler; hedged,
    # the coordinator's backup probe to the standby should mask it —
    # without changing a single answer byte.
    if args.hedge:
        report["params"]["straggle_ms"] = args.straggle_ms
        straggler = {0: ("--chaos-latency-ms",
                         str(int(args.straggle_ms)))}
        hedge_report = {}
        for label, hedged in (("unhedged", False), ("hedged", True)):
            progress(f"{label} straggler cluster: starting "
                     f"{args.workers} primaries + standbys...")
            start = time.perf_counter()
            with LocalCluster(products, weights,
                              num_workers=args.workers,
                              base_dir=base / f"hedge-{label}",
                              fsync="never",
                              shard_timeout_s=SHARD_TIMEOUT_S,
                              start_timeout_s=120.0,
                              replicas=1, hedge=hedged,
                              worker_extra_args=straggler) as cluster:
                client = cluster.client(retries=0)
                entry = {"startup_s": time.perf_counter() - start}
                progress(f"  up in {entry['startup_s']:.1f}s")
                mismatches = 0
                for kind in ("rtk", "rkr"):
                    latencies, answers = timed_queries(
                        client, queries, args.k, kind, progress)
                    for got, want in zip(answers, single_answers[kind]):
                        if "degraded" in got or \
                                canonical_json(got) != \
                                canonical_json(want):
                            mismatches += 1
                    entry[kind] = {
                        "p50_s": percentile(latencies, 0.50),
                        "p95_s": percentile(latencies, 0.95),
                        "max_s": max(latencies),
                    }
                entry["mismatches"] = mismatches
                if hedged:
                    stats = cluster.coordinator.stats()["hedge"]
                    entry["hedged_probes"] = stats["probes"]
                    entry["hedge_wins"] = stats["wins"]
                hedge_report[label] = entry
                report["mismatches"] += mismatches
                report["ok"] = report["mismatches"] == 0
        for kind in ("rtk", "rkr"):
            slow = hedge_report["unhedged"][kind]["p95_s"]
            fast = hedge_report["hedged"][kind]["p95_s"]
            hedge_report[f"{kind}_tail_cut"] = \
                (slow / fast) if fast > 0 else 0.0
            progress(f"hedge {kind}: unhedged p95 {slow:.3f}s -> "
                     f"hedged p95 {fast:.3f}s "
                     f"(x{hedge_report[f'{kind}_tail_cut']:.2f} tail cut, "
                     f"{hedge_report['hedged']['hedge_wins']} wins / "
                     f"{hedge_report['hedged']['hedged_probes']} probes)")
        report["hedge"] = hedge_report

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    cores = report["machine"].get("cpu_count") or 1
    for kind in ("rtk", "rkr"):
        progress(f"{kind}: single p50 {single[kind]['p50_s']:.2f}s, "
                 f"cluster p50 {cluster_report[kind]['p50_s']:.2f}s "
                 f"(x{cluster_report[kind]['speedup_vs_single']:.2f} "
                 f"over {args.workers} workers on {cores} core(s); "
                 f"ideal ~x{min(args.workers, cores)})")
    progress(f"wrote {args.out} (ok={report['ok']})")
    if not report["ok"]:
        print(f"error: {report['mismatches']} cluster answers diverged "
              f"from the single node or arrived degraded",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
