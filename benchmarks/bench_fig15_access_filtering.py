"""Figure 15 — (a) data visited per algorithm vs d; (b) Grid-index
filtering vs partition count n.

Expected shapes: (a) the R-tree based methods converge to visiting ~all
points as d grows while GIR visits few original vectors; (b) filtering
grows monotonically with n (the paper's n = 32 sweet spot).
"""

import pytest

from repro.core import model
from repro.data.synthetic import uniform_products, uniform_weights
from repro.stats.counters import OpCounter

from bench_common import (
    DEFAULT_K,
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    make_workload,
    record_table,
    sample_queries,
    scaled_size,
)

DIMS_A = (3, 6, 9, 12, 20)
PARTITION_SWEEP = (4, 8, 16, 32, 64, 128)
DIM_B = 20


@pytest.fixture(scope="module")
def figure15a_rows():
    rows = []
    for d in DIMS_A:
        P, W = make_workload("UN", "UN", d, seed=d)
        queries = sample_queries(P, count=2, seed=d)
        visited = {}
        algs = dict(build_rtk_algorithms(P, W))
        algs["MPA"] = build_rkr_algorithms(P, W)["MPA"]
        for name, alg in algs.items():
            counter = OpCounter()
            for q in queries:
                if name == "MPA":
                    alg.reverse_kranks(q, DEFAULT_K, counter=counter)
                else:
                    alg.reverse_topk(q, DEFAULT_K, counter=counter)
            total = len(queries) * P.size * W.size
            visited[name] = counter.points_accessed / total * 100.0
        rows.append([d] + [round(visited[n], 2)
                           for n in ("GIR", "SIM", "BBR", "MPA")])
    return rows


@pytest.fixture(scope="module")
def figure15b_rows():
    size = max(300, scaled_size(300))
    P = uniform_products(size, DIM_B, value_range=1.0, seed=51).values
    W = uniform_weights(60, DIM_B, seed=52).values
    rows = []
    for n in PARTITION_SWEEP:
        measured = model.measure_filtering(P, W, n, 1.0, P[:2])
        predicted = model.worst_case_filtering(DIM_B, n)
        rows.append([n, f"{measured*100:.1f}%", f"{predicted*100:.1f}%"])
    return rows


def test_figure15a(benchmark, figure15a_rows):
    banner("Figure 15a: % of original data points visited, varying d")
    record_table(
        "fig15a_visited_data",
        ["d", "GIR %", "SIM %", "BBR %", "MPA %"],
        figure15a_rows,
        "Figure 15a reproduction — visited original vectors per query",
    )
    # Shape: GIR touches fewer original vectors than SIM at every d.
    for row in figure15a_rows:
        assert row[1] <= row[2] + 1e-9

    benchmark(lambda: sum(r[1] for r in figure15a_rows))


def test_figure15b(benchmark, figure15b_rows):
    banner(f"Figure 15b: filtering vs n at d={DIM_B} "
           "(measured vs paper model)")
    record_table(
        "fig15b_filtering_vs_n",
        ["n", "measured filtering", "paper-model prediction"],
        figure15b_rows,
        "Figure 15b reproduction — bound-only filtering vs grid resolution",
    )
    measured = [float(r[1].rstrip("%")) for r in figure15b_rows]
    # Shape: monotone growth in n (the paper's headline trend).
    assert all(a <= b + 1.0 for a, b in zip(measured, measured[1:]))
    assert measured[-1] > measured[0]

    size = max(200, scaled_size(200))
    P = uniform_products(size, DIM_B, value_range=1.0, seed=3).values
    W = uniform_weights(20, DIM_B, seed=4).values
    benchmark(lambda: model.measure_filtering(P, W, 32, 1.0, P[:1]))
