"""Figure 13 — scalability with growing |P| (a, b) and growing |W| (c, d).

Expected shape: every algorithm grows roughly linearly in the scaled set;
GIR's advantage over the tree methods widens with size (its filtering
ratio is size-independent, the trees' overlap is not).
"""

import pytest

from bench_common import (
    DEFAULT_K,
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    make_workload,
    ms,
    record_table,
    sample_queries,
    scaled_size,
)

DIM = 6
SIZES = (200, 400, 800, 1600)


def sweep(vary: str):
    rows_rtk, rows_rkr = [], []
    base = max(300, scaled_size(300))
    for size in SIZES:
        if vary == "P":
            size_p, size_w = size, base
        else:
            size_p, size_w = base, size
        P, W = make_workload("UN", "UN", DIM, size_p=size_p, size_w=size_w,
                             seed=size)
        queries = sample_queries(P, count=2, seed=size)
        rtk = compare(build_rtk_algorithms(P, W), queries, DEFAULT_K, "rtk")
        rkr = compare(build_rkr_algorithms(P, W), queries, DEFAULT_K, "rkr")
        rows_rtk.append([size, ms(rtk["GIR"][0]), ms(rtk["BBR"][0]),
                         ms(rtk["SIM"][0]), rtk["SIM"][1].pairwise])
        rows_rkr.append([size, ms(rkr["GIR"][0]), ms(rkr["MPA"][0]),
                         ms(rkr["SIM"][0]), rkr["SIM"][1].pairwise])
    return rows_rtk, rows_rkr


@pytest.fixture(scope="module")
def figure13_tables():
    return {"P": sweep("P"), "W": sweep("W")}


def test_figure13(benchmark, figure13_tables):
    for vary, (rows_rtk, rows_rkr) in figure13_tables.items():
        banner(f"Figure 13: scalability, varying |{vary}| (d={DIM})")
        record_table(
            f"fig13_rtk_vary{vary}",
            [f"|{vary}|", "GIR ms", "BBR ms", "SIM ms", "SIM pairwise"],
            rows_rtk,
            f"Figure 13 RTK reproduction — varying |{vary}|",
        )
        record_table(
            f"fig13_rkr_vary{vary}",
            [f"|{vary}|", "GIR ms", "MPA ms", "SIM ms", "SIM pairwise"],
            rows_rkr,
            f"Figure 13 RKR reproduction — varying |{vary}|",
        )
        # Shape: work grows with cardinality for the scan methods.  Op
        # counts are deterministic; wall clock is too noisy to assert on.
        assert rows_rtk[-1][4] > rows_rtk[0][4]
        assert rows_rkr[-1][4] > rows_rkr[0][4]

    # Headline benchmark: GIR RTK at the largest |P|.
    P, W = make_workload("UN", "UN", DIM, size_p=SIZES[-1],
                         size_w=max(300, scaled_size(300)), seed=2)
    gir = build_rtk_algorithms(P, W)["GIR"]
    q = sample_queries(P, count=1, seed=2)[0]
    benchmark(lambda: gir.reverse_topk(q, DEFAULT_K))
