"""Figure 10 — GIR vs BBR (RTK) and GIR vs MPA (RKR) on synthetic data,
low dimensions (2-8), across the paper's distribution panels.

Expected shape: the tree methods are competitive (or ahead) at d = 2-3 and
fall behind as d grows; GIR tracks or beats SIM throughout in pairwise
computations.
"""

import pytest

from bench_common import (
    DEFAULT_K,
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    make_workload,
    ms,
    per_query_pairwise,
    record_table,
    sample_queries,
)

DIMS = (2, 4, 6, 8)
PANELS = (("UN", "UN"), ("AC", "UN"), ("CL", "CL"))


@pytest.fixture(scope="module")
def figure10_results():
    results = {}
    for p_dist, w_dist in PANELS:
        rows_rtk, rows_rkr = [], []
        for d in DIMS:
            P, W = make_workload(p_dist, w_dist, d, seed=d * 3)
            queries = sample_queries(P, seed=d)
            nq = len(queries)
            rtk = compare(build_rtk_algorithms(P, W), queries, DEFAULT_K, "rtk")
            rkr = compare(build_rkr_algorithms(P, W), queries, DEFAULT_K, "rkr")
            rows_rtk.append([
                d,
                ms(rtk["GIR"][0]), ms(rtk["BBR"][0]), ms(rtk["SIM"][0]),
                per_query_pairwise(rtk["GIR"][1], nq),
                per_query_pairwise(rtk["BBR"][1], nq),
                per_query_pairwise(rtk["SIM"][1], nq),
            ])
            rows_rkr.append([
                d,
                ms(rkr["GIR"][0]), ms(rkr["MPA"][0]), ms(rkr["SIM"][0]),
                per_query_pairwise(rkr["GIR"][1], nq),
                per_query_pairwise(rkr["MPA"][1], nq),
                per_query_pairwise(rkr["SIM"][1], nq),
            ])
        results[(p_dist, w_dist)] = (rows_rtk, rows_rkr)
    return results


def test_figure10(benchmark, figure10_results):
    for (p_dist, w_dist), (rows_rtk, rows_rkr) in figure10_results.items():
        tag = f"{p_dist}x{w_dist}"
        banner(f"Figure 10 ({tag}): RTK — GIR vs BBR vs SIM, d=2-8")
        record_table(
            f"fig10_rtk_{tag}",
            ["d", "GIR ms", "BBR ms", "SIM ms",
             "GIR pairwise", "BBR pairwise", "SIM pairwise"],
            rows_rtk,
            f"Figure 10 RTK reproduction — P:{p_dist}, W:{w_dist}",
        )
        banner(f"Figure 10 ({tag}): RKR — GIR vs MPA vs SIM, d=2-8")
        record_table(
            f"fig10_rkr_{tag}",
            ["d", "GIR ms", "MPA ms", "SIM ms",
             "GIR pairwise", "MPA pairwise", "SIM pairwise"],
            rows_rkr,
            f"Figure 10 RKR reproduction — P:{p_dist}, W:{w_dist}",
        )

    # Shape check on the UN x UN panel at d = 8: GIR needs far fewer
    # pairwise computations than SIM (the paper's core filtering claim).
    rows_rtk, rows_rkr = figure10_results[("UN", "UN")]
    d8_rtk = rows_rtk[-1]
    assert d8_rtk[4] < d8_rtk[6], "GIR must do fewer inner products than SIM"
    d8_rkr = rows_rkr[-1]
    assert d8_rkr[4] < d8_rkr[6]

    # Headline benchmark: GIR RTK at d = 6 on UN data.
    P, W = make_workload("UN", "UN", 6, seed=1)
    q = sample_queries(P, count=1, seed=1)[0]
    gir = build_rtk_algorithms(P, W)["GIR"]
    benchmark(lambda: gir.reverse_topk(q, DEFAULT_K))
