"""Benches for the beyond-paper extensions: dynamic updates, bundle
queries (ARRQ) and bounds-only (anytime) answers.

These have no paper counterpart — they measure features a deployed system
needs — and double as regression anchors: the dynamic engine must match a
freshly built static GIR, the aggregate solver its brute-force oracle,
and the anytime envelope must tighten with grid resolution.
"""

import numpy as np
import pytest

from repro.core.approximate import reverse_topk_bounds
from repro.core.gir import GridIndexRRQ
from repro.ext.aggregate import (
    AggregateGridIndexRKR,
    aggregate_reverse_kranks_naive,
)
from repro.ext.dynamic import DynamicRRQEngine
from repro.stats.timing import Timer

from bench_common import (
    DEFAULT_K,
    banner,
    make_workload,
    ms,
    record_table,
    sample_queries,
)

DIM = 6


@pytest.fixture(scope="module")
def workload():
    P, W = make_workload("UN", "UN", DIM, seed=91)
    return P, W, sample_queries(P, count=2, seed=92)


def test_dynamic_engine_overhead(benchmark, workload):
    """Static GIR vs the updatable engine on identical data."""
    P, W, queries = workload
    static = GridIndexRRQ(P, W)
    dynamic = DynamicRRQEngine.from_datasets(P, W)
    rows = []
    for name, engine in (("static GIR", static), ("dynamic engine", dynamic)):
        timer = Timer()
        for q in queries:
            with timer.measure():
                engine.reverse_kranks(q, DEFAULT_K)
        rows.append([name, ms(timer.mean)])
    # Same answers, with or without the growable substrate.
    for q in queries:
        assert (static.reverse_kranks(q, DEFAULT_K).entries
                == dynamic.reverse_kranks(q, DEFAULT_K).entries)
    # Mutation throughput.
    rng = np.random.default_rng(93)
    timer = Timer()
    with timer.measure():
        for _ in range(200):
            dynamic.insert_product(rng.random(DIM) * 9999.0)
    rows.append(["200 product inserts", ms(timer.total)])
    banner("Extension: dynamic engine overhead vs static GIR")
    record_table(
        "ext_dynamic",
        ["configuration", "time (ms)"],
        rows,
        "Dynamic-engine overhead (RKR, UN d=6)",
    )
    benchmark(lambda: dynamic.reverse_kranks(queries[0], DEFAULT_K))


def test_aggregate_bundle_scaling(benchmark, workload):
    """ARRQ cost vs bundle size, GIR-accelerated vs brute force."""
    P, W, _ = workload
    solver = AggregateGridIndexRKR(P, W)
    rng = np.random.default_rng(94)
    rows = []
    for bundle_size in (1, 2, 4, 8):
        bundle = [P.values[i] for i in
                  rng.choice(P.size, bundle_size, replace=False)]
        t_gir, t_naive = Timer(), Timer()
        with t_gir.measure():
            fast = solver.query(bundle, DEFAULT_K)
        with t_naive.measure():
            slow = aggregate_reverse_kranks_naive(P, W, bundle, DEFAULT_K)
        assert fast.entries == slow.entries
        rows.append([bundle_size, ms(t_gir.total), ms(t_naive.total)])
    banner("Extension: aggregate reverse k-ranks (bundles)")
    record_table(
        "ext_aggregate",
        ["bundle size", "GIR-accelerated ms", "brute force ms"],
        rows,
        "ARRQ scaling with bundle size (UN d=6)",
    )
    bundle = [P.values[0], P.values[1]]
    benchmark(lambda: solver.query(bundle, DEFAULT_K))


def test_anytime_envelope(benchmark, workload):
    """Bounds-only answers: uncertainty and speed vs grid resolution."""
    P, W, queries = workload
    q = queries[0]
    rows = []
    for n in (8, 16, 32, 64, 128):
        gir = GridIndexRRQ(P, W, partitions=n)
        timer = Timer()
        with timer.measure():
            approx = reverse_topk_bounds(gir, q, DEFAULT_K)
        rows.append([
            n, ms(timer.total),
            len(approx.certain), len(approx.undecided),
            f"{approx.uncertainty():.2%}",
        ])
    banner("Extension: anytime (bounds-only) reverse top-k")
    record_table(
        "ext_anytime",
        ["n", "time ms", "certain", "undecided", "uncertainty"],
        rows,
        "Bounds-only RTK envelope vs grid resolution (UN d=6)",
    )
    # Uncertainty shrinks as the grid refines.
    uncertainties = [float(r[4].rstrip("%")) for r in rows]
    assert uncertainties[-1] <= uncertainties[0]
    gir = GridIndexRRQ(P, W)
    benchmark(lambda: reverse_topk_bounds(gir, q, DEFAULT_K))
