"""Figure 2 — tree-based algorithms (BBR, MPA) versus simple scan, d = 2-20.

The paper's motivating figure: as dimensionality grows, the R-tree based
methods fall behind a plain scan.  Expected shape: SIM roughly flat-ish in
d, BBR/MPA climbing steeply once MBR overlap saturates (d > ~6).
"""

import pytest

from bench_common import (
    DEFAULT_K,
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    make_workload,
    ms,
    record_table,
    sample_queries,
)

DIMS = (2, 4, 6, 9, 12, 16, 20)


@pytest.fixture(scope="module")
def figure2_rows():
    rows = []
    for d in DIMS:
        P, W = make_workload("UN", "UN", d, seed=d)
        queries = sample_queries(P, seed=d)
        rtk = compare(
            {k: v for k, v in build_rtk_algorithms(P, W).items()
             if k in ("SIM", "BBR")},
            queries, DEFAULT_K, "rtk",
        )
        rkr = compare(
            {k: v for k, v in build_rkr_algorithms(P, W).items()
             if k in ("SIM", "MPA")},
            queries, DEFAULT_K, "rkr",
        )
        rows.append([
            d,
            ms(rtk["SIM"][0]), ms(rtk["BBR"][0]),
            ms(rkr["SIM"][0]), ms(rkr["MPA"][0]),
        ])
    return rows


def test_figure2_table(benchmark, figure2_rows):
    banner("Figure 2: tree-based (BBR, MPA) vs simple scan (SIM), varying d")
    record_table(
        "fig02_motivation",
        ["d", "SIM RTK (ms)", "BBR RTK (ms)", "SIM RKR (ms)", "MPA RKR (ms)"],
        figure2_rows,
        "Figure 2 reproduction — mean query time",
    )
    # Shape check: in high dimensions the trees must not beat the scan.
    # Wall-clock comparisons carry noise; allow generous slack and also
    # accept the shape over the top-two dimensionalities combined.
    top = figure2_rows[-2:]
    assert sum(r[2] for r in top) >= sum(r[1] for r in top) * 0.6, \
        "BBR should not beat SIM decisively at high d"
    assert sum(r[4] for r in top) >= sum(r[3] for r in top) * 0.6, \
        "MPA should not beat SIM decisively at high d"

    # Headline benchmark: SIM RTK at d=20 (the motivating comparison).
    P, W = make_workload("UN", "UN", 20, seed=99)
    queries = sample_queries(P, count=1, seed=99)
    sim = build_rtk_algorithms(P, W)["SIM"]
    benchmark(lambda: sim.reverse_topk(queries[0], DEFAULT_K))
