"""Ablations on GIR's design choices (DESIGN.md ablation index).

Three knobs the paper fixes but never isolates:

* **Domin buffer** on/off — how much of GIR's speed comes from Algorithm
  1's lines 7-8 versus the grid bounds themselves.
* **Partition count n** — time and filtering across the Table 5 sweep,
  confirming n = 32 is a knee rather than a cliff.
* **Scan chunk size** — an implementation parameter of this reproduction;
  confirms results are chunk-invariant while time is not.
"""

import pytest

from repro.core.gir import GridIndexRRQ
from repro.stats.counters import OpCounter
from repro.stats.timing import Timer

from bench_common import (
    DEFAULT_K,
    banner,
    make_workload,
    ms,
    record_table,
    sample_queries,
)

DIM = 6


@pytest.fixture(scope="module")
def workload():
    P, W = make_workload("UN", "UN", DIM, seed=71)
    return P, W, sample_queries(P, seed=71)


def run_rkr(alg, queries, k=DEFAULT_K):
    timer = Timer()
    counter = OpCounter()
    answers = []
    for q in queries:
        with timer.measure():
            answers.append(alg.reverse_kranks(q, k, counter=counter))
    return timer.mean, counter, answers


def test_ablation_domin(benchmark, workload):
    P, W, queries = workload
    with_domin = GridIndexRRQ(P, W, use_domin=True)
    without = GridIndexRRQ(P, W, use_domin=False)
    t_on, c_on, a_on = run_rkr(with_domin, queries)
    t_off, c_off, a_off = run_rkr(without, queries)
    # Results must be identical — Domin is purely an optimization.
    assert [r.entries for r in a_on] == [r.entries for r in a_off]
    banner("Ablation: Domin buffer on/off (RKR, UN d=6)")
    record_table(
        "ablation_domin",
        ["variant", "mean ms", "pairwise", "approx accessed",
         "dominated skips"],
        [
            ["Domin ON", ms(t_on), c_on.pairwise, c_on.approx_accessed,
             c_on.dominated_skips],
            ["Domin OFF", ms(t_off), c_off.pairwise, c_off.approx_accessed,
             c_off.dominated_skips],
        ],
        "Domin-buffer ablation",
    )
    assert c_on.approx_accessed <= c_off.approx_accessed
    benchmark(lambda: with_domin.reverse_kranks(queries[0], DEFAULT_K))


def test_ablation_partitions(benchmark, workload):
    P, W, queries = workload
    rows = []
    reference = None
    for n in (4, 8, 16, 32, 64, 128):
        gir = GridIndexRRQ(P, W, partitions=n)
        t, c, answers = run_rkr(gir, queries)
        entries = [r.entries for r in answers]
        if reference is None:
            reference = entries
        assert entries == reference  # n never changes answers
        rows.append([n, ms(t), c.pairwise,
                     f"{c.filtering_ratio()*100:.1f}%",
                     gir.grid.memory_bytes])
    banner("Ablation: grid partitions n (Table 5 sweep)")
    record_table(
        "ablation_partitions",
        ["n", "mean ms", "pairwise", "bound filtering", "grid bytes"],
        rows,
        "Partition-count ablation (RKR, UN d=6)",
    )
    # Filtering grows with n; refinement (pairwise) shrinks.
    assert rows[-1][2] <= rows[0][2]
    gir32 = GridIndexRRQ(P, W, partitions=32)
    benchmark(lambda: gir32.reverse_kranks(queries[0], DEFAULT_K))


def test_ablation_chunk(benchmark, workload):
    P, W, queries = workload
    rows = []
    reference = None
    for chunk in (16, 64, 256, 1024):
        gir = GridIndexRRQ(P, W, chunk=chunk)
        t, _, answers = run_rkr(gir, queries)
        entries = [r.entries for r in answers]
        if reference is None:
            reference = entries
        assert entries == reference  # chunking never changes answers
        rows.append([chunk, ms(t)])
    banner("Ablation: scan chunk size (implementation parameter)")
    record_table(
        "ablation_chunk",
        ["chunk", "mean ms"],
        rows,
        "Chunk-size ablation (RKR, UN d=6)",
    )
    gir = GridIndexRRQ(P, W, chunk=256)
    benchmark(lambda: gir.reverse_kranks(queries[0], DEFAULT_K))
