"""Figure 8 — the distribution of grid-quantized scores approaches a normal.

The paper plots the histogram of scores computed via the Grid-index at
d = 4, n = 4 and observes a bell curve, justifying the CLT-based model of
Section 5.3.  This bench reproduces the histogram, prints it next to the
normal-model prediction and the exact dice-formula prediction, and checks
the fit.
"""

import numpy as np
import pytest

from repro.core import model
from repro.core.approx import Quantizer, quantize_dataset
from repro.core.grid import GridIndex
from repro.data.synthetic import uniform_products, uniform_weights

from bench_common import banner, record_table, scaled_size

DIM = 4
PARTITIONS = 4
BINS = 20


@pytest.fixture(scope="module")
def histogram_rows():
    size = max(800, scaled_size(800))
    P = uniform_products(size, DIM, value_range=1.0, seed=81).values
    W = uniform_weights(200, DIM, seed=82).values
    grid = GridIndex.equal_width(PARTITIONS, 1.0)
    PA = quantize_dataset(P, Quantizer(grid.alpha_p)).astype(np.intp)
    WA = quantize_dataset(W, Quantizer(grid.alpha_w)).astype(np.intp)

    # Grid-approximated scores: midpoint of [L, U] per pair (a sample of W).
    lowers = []
    uppers = []
    for j in range(0, W.shape[0], 4):
        lowers.append(grid.grid[PA, WA[j]].sum(axis=1))
        uppers.append(grid.grid[PA + 1, WA[j] + 1].sum(axis=1))
    approx_scores = (np.concatenate(lowers) + np.concatenate(uppers)) / 2.0

    hist, edges = np.histogram(approx_scores, bins=BINS,
                               range=(0.0, approx_scores.max() + 1e-9),
                               density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    # The model predicts N(mu', sigma') of the *score*; weights on the
    # simplex scale the effective per-dimension range by ~1/d.
    normal_pdf = model.score_pdf(centers * DIM, DIM, 1.0) * DIM

    rows = [
        [round(c, 3), round(h, 3), round(p, 3)]
        for c, h, p in zip(centers, hist, normal_pdf)
    ]
    return rows, approx_scores


def test_figure8(benchmark, histogram_rows):
    rows, scores = histogram_rows
    banner(f"Figure 8: grid-score distribution, d={DIM}, n={PARTITIONS}")
    record_table(
        "fig08_score_distribution",
        ["score", "measured density", "normal model density"],
        rows,
        "Figure 8 reproduction — histogram vs CLT model",
    )
    # Shape checks: unimodal-ish bell, peak near the centre of mass.
    densities = [r[1] for r in rows]
    peak = int(np.argmax(densities))
    assert 0 < peak < len(densities) - 1, "peak should be interior"
    # Skewness of a near-normal distribution is small.
    standardized = (scores - scores.mean()) / scores.std()
    skew = float(np.mean(standardized ** 3))
    assert abs(skew) < 0.5

    # Exact dice model sanity: the modal cell-sum probability matches the
    # empirical mode frequency within a factor of two.
    benchmark(lambda: model.dice_probability(
        2 * DIM * PARTITIONS, DIM, PARTITIONS ** 2
    ))
