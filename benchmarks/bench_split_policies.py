"""Extra: R-tree construction policies vs dimensionality.

Extends the Table 3 study across the index lineage the paper's related
work discusses: Guttman's quadratic split, the R*-tree split [1], STR
bulk loading, and the X-tree supernode policy [2].  Expected shape: R*
and STR reduce leaf overlap in low d; by d ~ 9 every policy's MBRs
overlap a 1%-volume query almost completely — the paper's core argument
that no construction policy rescues trees in high dimensions.
"""

import pytest

from repro.data.synthetic import uniform_products
from repro.index.rtree import RTree

from bench_common import banner, record_table, scaled_size

DIMS = (2, 4, 6, 9, 12)
CAPACITY = 16


def build(points, policy):
    if policy == "STR bulk":
        return RTree(points, capacity=CAPACITY, bulk=True)
    if policy == "quadratic":
        return RTree(points, capacity=CAPACITY, bulk=False, split="quadratic")
    if policy == "R*":
        return RTree(points, capacity=CAPACITY, bulk=False, split="rstar")
    return RTree(points, capacity=CAPACITY, bulk=False, split="rstar",
                 xtree_max_overlap=0.2)


POLICIES = ("STR bulk", "quadratic", "R*", "X-tree")


@pytest.fixture(scope="module")
def policy_rows():
    size = max(500, scaled_size(500))
    rows = []
    for d in DIMS:
        P = uniform_products(size, d, seed=d).values
        row = [d]
        for policy in POLICIES:
            tree = build(P, policy)
            tree.check_invariants()
            stats = tree.mbr_statistics(query_fraction=0.01,
                                        num_queries=20, seed=d)
            row.append(f"{stats['overlap_fraction'] * 100:.0f}%")
        rows.append(row)
    return rows


def test_split_policies(benchmark, policy_rows):
    banner("Extra: 1%-query MBR overlap across construction policies")
    record_table(
        "split_policies",
        ["d"] + [f"{p} overlap" for p in POLICIES],
        policy_rows,
        "R-tree lineage vs dimensionality (UN data)",
    )
    # Shape: in high d every policy saturates near total overlap.
    final = policy_rows[-1]
    for cell in final[1:]:
        assert float(cell.rstrip("%")) > 80.0
    # In 2-d at least one refined policy beats the naive quadratic build.
    first = policy_rows[0]
    quad = float(first[2].rstrip("%"))
    best_refined = min(float(first[1].rstrip("%")),
                       float(first[3].rstrip("%")))
    assert best_refined <= quad + 5.0

    size = max(300, scaled_size(300))
    P = uniform_products(size, 6, seed=1).values
    benchmark(lambda: RTree(P, capacity=CAPACITY, bulk=False, split="rstar"))
