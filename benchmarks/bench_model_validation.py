"""Section 5.3 model validation — Theorem 1 predictions vs measurement.

Prints, for a grid of (d, n): the worst-case filtering the paper's model
guarantees, the partition count Theorem 1 recommends for 99%, and the
empirically measured bound-only filtering.  Documents the systematic gap
between the idealized model and the literal equal-width grid (see
EXPERIMENTS.md).
"""

import pytest

from repro.core import model
from repro.data.synthetic import uniform_products, uniform_weights

from bench_common import banner, record_table, scaled_size

GRID = [(4, 16), (4, 32), (6, 32), (10, 32), (20, 32), (20, 64), (20, 128)]


@pytest.fixture(scope="module")
def validation_rows():
    rows = []
    size = max(250, scaled_size(250))
    for d, n in GRID:
        P = uniform_products(size, d, value_range=1.0, seed=d * n).values
        W = uniform_weights(40, d, seed=d + n).values
        measured = model.measure_filtering(P, W, n, 1.0, P[:2])
        rows.append([
            d, n,
            f"{model.worst_case_filtering(d, n)*100:.2f}%",
            f"{measured*100:.1f}%",
            model.recommend_partitions(d, 0.01),
        ])
    return rows


def test_model_validation(benchmark, validation_rows):
    banner("Section 5.3 model: predicted vs measured filtering")
    record_table(
        "model_validation",
        ["d", "n", "model F_worst", "measured F", "Theorem-1 n for 99%"],
        validation_rows,
        "Performance-model validation (UN data)",
    )
    # The model is an upper bound on the literal grid's measured filtering,
    # and both respond to n the same way.
    for row in validation_rows:
        predicted = float(row[2].rstrip("%"))
        measured = float(row[3].rstrip("%"))
        assert measured <= predicted + 1.0

    benchmark(lambda: [model.recommend_partitions(d, 0.01)
                       for d in range(2, 51)])


def test_dice_vs_normal_agreement(benchmark):
    """The exact dice pmf and the CLT approximation agree near the mode."""
    d, n = 6, 4
    faces = n ** 2
    mode = (d * (faces + 1)) // 2
    exact = model.dice_probability(mode, d, faces)
    # Check the pmf is bell-shaped and symmetric with the mode at the
    # centre (the property the paper's Figure 8 illustrates).
    pmf = [model.dice_probability(s, d, faces)
           for s in range(d, d * faces + 1)]
    peak = pmf.index(max(pmf))
    assert abs(peak - (len(pmf) - 1) / 2) <= 1
    assert exact == pytest.approx(max(pmf))

    benchmark(lambda: [model.dice_probability(s, d, faces)
                       for s in range(d, d * faces + 1, 5)])
