"""Table 4 — Grid-index filtering performance across data distributions.

The paper reports 96.5-99.3% of pairs decided by bounds alone for every
UN/Normal/Exponential combination of P and W (d = 6, n = 32).

Reproduction note (documented in EXPERIMENTS.md): the literal equal-width
alpha_p x alpha_w grid cannot reach those absolute numbers — the bound gap
for codes (i, j) is (i+j+1)/n^2 per dimension, not the 1/n^2 the paper's
model assumes — so measured bound-only filtering sits around 55-80% at
this (d, n).  The *shape* is preserved: UN data filters best, Normal x
Normal worst, exactly the ordering of the paper's table.  We therefore
report both the bound-only rate and the operational rate (points that
needed no exact score during a real GIR query, where Domin and early
termination also contribute) — the latter approaches the paper's figures.
"""

import pytest

from repro.core import model
from repro.core.gir import GridIndexRRQ
from repro.data.synthetic import generate_products, generate_weights
from repro.stats.counters import OpCounter

from bench_common import banner, record_table, sample_queries, scaled_size

P_DISTS = ("UN", "NORMAL", "EXP")
W_DISTS = ("UN", "NORMAL", "EXP")
DIM = 6
PARTITIONS = 32


def operational_filtering(P, W, queries, k=10) -> float:
    """Fraction of per-(w, p) opportunities resolved without a real score
    during actual GIR query processing (includes early termination)."""
    gir = GridIndexRRQ(P, W, partitions=PARTITIONS)
    counter = OpCounter()
    for q in queries:
        gir.reverse_kranks(q, k, counter=counter)
    opportunities = len(queries) * P.size * W.size
    return 1.0 - counter.refined / opportunities


@pytest.fixture(scope="module")
def table4_rows():
    size = max(300, scaled_size(300))
    rows = []
    for w_dist in W_DISTS:
        row = [w_dist]
        for p_dist in P_DISTS:
            P = generate_products(p_dist, size, DIM, seed=11)
            # Note: normalized exponential weights are exactly the
            # Dirichlet(1) (uniform-simplex) distribution, so the EXP and
            # UN weight rows coincide mathematically; distinct seeds keep
            # the samples independent.
            W = generate_weights(w_dist, size, DIM,
                                 seed=12 + W_DISTS.index(w_dist))
            queries = sample_queries(P, count=2, seed=13)
            bound_only = model.measure_filtering(
                P.values / P.value_range, W.values, PARTITIONS, 1.0,
                queries / P.value_range,
            )
            operational = operational_filtering(P, W, queries)
            row.append(f"{bound_only*100:.1f}% / {operational*100:.1f}%")
        rows.append(row)
    return rows


def test_table4(benchmark, table4_rows):
    banner("Table 4: Grid-index filtering, bound-only / operational "
           f"(d={DIM}, n={PARTITIONS})")
    record_table(
        "tab04_filtering_distributions",
        ["W \\ P"] + list(P_DISTS),
        table4_rows,
        "Table 4 reproduction — % of pairs decided without refinement",
    )
    # Shape: every cell filters, and the paper's column ordering holds —
    # the NORMAL product column is the weakest in every row (paper Table
    # 4's minimum, 96.5%, also sits in the Normal column).
    cells = {
        (row[0], p): float(row[i + 1].split("%")[0])
        for row in table4_rows for i, p in enumerate(P_DISTS)
    }
    for w_dist in W_DISTS:
        assert cells[(w_dist, "NORMAL")] <= cells[(w_dist, "UN")]
        assert cells[(w_dist, "NORMAL")] <= cells[(w_dist, "EXP")]
    for value in cells.values():
        assert value > 10.0

    # Headline benchmark: the UN x UN filtering measurement.
    P = generate_products("UN", 200, DIM, seed=1)
    W = generate_weights("UN", 50, DIM, seed=2)
    benchmark(lambda: model.measure_filtering(
        P.values / P.value_range, W.values, PARTITIONS, 1.0,
        P.values[:1] / P.value_range,
    ))
