"""Blocked GIR kernel vs the per-weight loop (the ISSUE-4 tentpole).

Expected shape: the kernel answers the same queries byte-identically
while classifying pairs in BLAS tiles, so its per-query latency sits
well below the per-weight ``GridIndexRRQ`` loop and the gap widens with
|W| (interpreter overhead is per-weight in the loop, per-block in the
kernel).  The committed trajectory lives in ``BENCH_kernel.json``
(``python benchmarks/perf_harness.py``); this file gives the same
comparison the pytest-benchmark treatment at REPRO_SCALE-able sizes.
"""

import pytest

from bench_common import (
    DEFAULT_K,
    banner,
    make_workload,
    ms,
    record_table,
    sample_queries,
    scaled_size,
)

from repro.core.gir import GridIndexRRQ
from repro.stats.timing import Timer
from repro.vectorized.girkernel import GirKernelRRQ

DIM = 4
W_SIZES = (500, 2000, 8000)


@pytest.fixture(scope="module")
def kernel_rows():
    rows = []
    size_p = max(300, scaled_size(300))
    for size_w in W_SIZES:
        P, W = make_workload("UN", "UN", DIM, size_p=size_p, size_w=size_w,
                             seed=size_w)
        queries = sample_queries(P, count=2, seed=size_w)
        gir = GridIndexRRQ(P, W)
        kernel = GirKernelRRQ.from_gir(gir)
        gir_timer, kernel_timer = Timer(), Timer()
        for q in queries:
            with gir_timer.measure():
                loop_answer = gir.reverse_topk(q, DEFAULT_K)
            with kernel_timer.measure():
                kernel_answer = kernel.reverse_topk(q, DEFAULT_K)
            assert loop_answer == kernel_answer  # byte-identical or bust
        stats = kernel.last_stats
        rows.append([size_w, ms(gir_timer.mean), ms(kernel_timer.mean),
                     round(gir_timer.mean / kernel_timer.mean, 2),
                     round(stats.filter_rate(), 4)])
    return rows


def test_kernel_vs_loop(benchmark, kernel_rows):
    banner(f"Blocked kernel vs per-weight GIR loop (d={DIM}, RTK)")
    record_table(
        "kernel_vs_loop",
        ["|W|", "GIR loop ms", "kernel ms", "speedup", "filter rate"],
        kernel_rows,
        "Weight-blocked kernel — per-query RTK latency",
    )
    # Shape: the speedup grows with |W| (loop overhead is per-weight).
    assert kernel_rows[-1][3] > kernel_rows[0][3]

    # Headline benchmark: the kernel at the largest |W|.
    size_p = max(300, scaled_size(300))
    P, W = make_workload("UN", "UN", DIM, size_p=size_p, size_w=W_SIZES[-1],
                         seed=W_SIZES[-1])
    kernel = GirKernelRRQ(P, W)
    q = sample_queries(P, count=1, seed=3)[0]
    benchmark(lambda: kernel.reverse_topk(q, DEFAULT_K))


FUSED_Q = 8


@pytest.fixture(scope="module")
def fused_rows():
    rows = []
    size_p = max(300, scaled_size(300))
    for size_w in W_SIZES:
        P, W = make_workload("UN", "UN", 6, size_p=size_p, size_w=size_w,
                             seed=size_w)
        queries = sample_queries(P, count=FUSED_Q, seed=size_w)
        kernel = GirKernelRRQ(P, W)
        seq_timer, fused_timer = Timer(), Timer()
        with seq_timer.measure():
            seq = [kernel.reverse_topk(q, DEFAULT_K) for q in queries]
        with fused_timer.measure():
            fused = kernel.reverse_topk_batch(queries, DEFAULT_K)
        assert fused == seq  # byte-identical or bust
        rows.append([size_w, ms(seq_timer.mean), ms(fused_timer.mean),
                     round(seq_timer.mean / fused_timer.mean, 2)])
    return rows


def test_fused_batch_vs_sequential(benchmark, fused_rows):
    banner(f"Fused Q={FUSED_Q} batch vs sequential kernel (d=6, RTK)")
    record_table(
        "fused_batch_vs_sequential",
        ["|W|", f"{FUSED_Q}x sequential ms", "fused batch ms", "speedup"],
        fused_rows,
        "Fused multi-query kernel — shared tile matmuls across the batch",
    )

    # Headline benchmark: the fused batch at the largest |W|.
    size_p = max(300, scaled_size(300))
    P, W = make_workload("UN", "UN", 6, size_p=size_p, size_w=W_SIZES[-1],
                         seed=W_SIZES[-1])
    kernel = GirKernelRRQ(P, W)
    queries = sample_queries(P, count=FUSED_Q, seed=5)
    benchmark(lambda: kernel.reverse_topk_batch(queries, DEFAULT_K))
