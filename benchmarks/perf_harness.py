#!/usr/bin/env python
"""Run the kernel perf-regression harness and write ``BENCH_*.json``.

Thin script wrapper over :mod:`repro.bench.harness` (the CLI equivalent
is ``repro-rrq bench``).  Two modes:

* default — the committed trajectory configs (|W| = 100k), writes
  ``BENCH_kernel.json`` next to the repo root;
* ``--smoke`` — tiny pinned-seed configs for CI (seconds, always
  verified against the naive oracle), writes ``BENCH_smoke.json``;
* ``--fused`` — the fused multi-query batch + mmap cold-start harness
  instead (writes ``BENCH_fused.json``, or ``BENCH_fused_smoke.json``
  with ``--smoke``); ``--baseline`` then gates the fused wall times and
  the mmap cold-start load time.
* ``--tuner`` — the auto-tuner harness: tune the clustered acceptance
  workload, record default-vs-tuned filter effectiveness (writes
  ``BENCH_tuner.json``, or ``BENCH_tuner_smoke.json`` with
  ``--smoke``); ``ok`` additionally requires the tuned config to
  measurably improve the undecided+refined fraction, and ``--baseline``
  gates that fraction plus the tuned filter-stage seconds.

Exit codes: 0 on success, **1 when any kernel answer diverged from the
per-weight GIR loop or the oracle**, 2 on bad paths/config files.

Examples::

    PYTHONPATH=src python benchmarks/perf_harness.py --smoke
    PYTHONPATH=src python benchmarks/perf_harness.py --out BENCH_kernel.json
    PYTHONPATH=src python benchmarks/perf_harness.py --configs my_configs.json
    PYTHONPATH=src python benchmarks/perf_harness.py \
        --out BENCH_kernel_ci.json --baseline BENCH_kernel.json

With ``--baseline`` the run becomes a **regression gate**: each config's
kernel p50 (rtk and rkr) is compared against the committed baseline by
config name, and the script exits 1 when any metric is more than
``--max-regress-pct`` (default 25) percent slower — CI runs exactly
this against ``BENCH_kernel.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Blocked-GIR-kernel perf harness (writes BENCH_*.json)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny pinned-seed configs for CI")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_kernel.json, "
                             "or BENCH_smoke.json with --smoke)")
    parser.add_argument("--configs", default=None, metavar="FILE",
                        help="JSON file with a list of config objects "
                             "(overrides the built-in configs)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base RNG seed (default: pinned harness seed)")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker count for the sharded engine "
                             "(0 disables; default max(2, cpu_count))")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the exact-oracle verification pass")
    parser.add_argument("--fused", action="store_true",
                        help="run the fused multi-query batch + mmap "
                             "cold-start harness instead")
    parser.add_argument("--tuner", action="store_true",
                        help="run the auto-tuner harness instead "
                             "(default-vs-tuned filter effectiveness on "
                             "the clustered workload)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="committed BENCH_*.json to gate against: "
                             "exit 1 when any kernel p50 regresses past "
                             "--max-regress-pct")
    parser.add_argument("--max-regress-pct", type=float, default=None,
                        help="regression budget for --baseline "
                             "(default 25)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench.harness import (
        DEFAULT_SEED,
        FUSED_SMOKE_CONFIGS,
        SMOKE_CONFIGS,
        TUNER_SMOKE_CONFIGS,
        load_configs,
        run_fused_harness,
        run_harness,
        run_tuner_harness,
    )
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    if args.fused and args.tuner:
        print("error: --fused and --tuner are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.fused:
        out = args.out or ("BENCH_fused_smoke.json" if args.smoke
                           else "BENCH_fused.json")
    elif args.tuner:
        out = args.out or ("BENCH_tuner_smoke.json" if args.smoke
                           else "BENCH_tuner.json")
    else:
        out = args.out or ("BENCH_smoke.json" if args.smoke
                           else "BENCH_kernel.json")
    try:
        configs = None
        if args.configs is not None:
            configs = load_configs(args.configs)
        elif args.smoke:
            configs = list(FUSED_SMOKE_CONFIGS if args.fused
                           else TUNER_SMOKE_CONFIGS if args.tuner
                           else SMOKE_CONFIGS)
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        if args.fused:
            report = run_fused_harness(
                configs=configs, seed=seed, verify=not args.no_verify,
                out=out,
                progress=lambda message: print(message, flush=True),
            )
        elif args.tuner:
            report = run_tuner_harness(
                configs=configs, seed=seed, verify=not args.no_verify,
                out=out,
                progress=lambda message: print(message, flush=True),
            )
        else:
            report = run_harness(
                configs=configs, seed=seed, shards=args.shards,
                verify=not args.no_verify, out=out,
                progress=lambda message: print(message, flush=True),
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for record in report["configs"]:
        if args.fused:
            cold = record["cold_start"]
            print(f"{record['name']}: "
                  f"rtk wall x{record['fused_rtk']['wall_speedup']:.2f} "
                  f"rkr wall x{record['fused_rkr']['wall_speedup']:.2f} "
                  f"cold-start x{cold['speedup']:.1f} "
                  f"verified={record['verified']}")
        elif args.tuner:
            default, tuned = record["default"], record["tuned"]
            print(f"{record['name']}: "
                  f"undec+ref {default['undecided_refined_fraction']:.3f}"
                  f" -> {tuned['undecided_refined_fraction']:.3f} "
                  f"({record['improvement']:+.3f}, "
                  f"winner {tuned['label']}) "
                  f"filter {default['filter_s']*1000:.1f}ms -> "
                  f"{tuned['filter_s']*1000:.1f}ms "
                  f"verified={record['verified']}")
        else:
            rtk, rkr = record["rtk"], record["rkr"]
            print(f"{record['name']}: rtk x{rtk['kernel_speedup']:.1f} "
                  f"rkr x{rkr['kernel_speedup']:.1f} "
                  f"filter_rate="
                  f"{record['kernel_stats']['filter_rate']:.3f} "
                  f"verified={record['verified']}")
    print(f"wrote {out} (ok={report['ok']})")
    if not report["ok"]:
        if args.tuner:
            print("error: a tuned config failed verification or did not "
                  "improve the filter fraction", file=sys.stderr)
        else:
            print("error: kernel answers diverged from the oracle",
                  file=sys.stderr)
        return 1
    if args.baseline is not None:
        import json

        from repro.bench.harness import (
            DEFAULT_MAX_REGRESS_PCT,
            FUSED_GATED_METRICS,
            TUNER_GATED_METRICS,
            check_regression,
        )

        try:
            baseline = json.loads(open(args.baseline).read())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        budget = (args.max_regress_pct if args.max_regress_pct is not None
                  else DEFAULT_MAX_REGRESS_PCT)
        if args.fused:
            verdict = check_regression(report, baseline, budget,
                                       metrics=FUSED_GATED_METRICS)
        elif args.tuner:
            verdict = check_regression(report, baseline, budget,
                                       metrics=TUNER_GATED_METRICS)
        else:
            verdict = check_regression(report, baseline, budget)
        for check in verdict["checks"]:
            marker = "ok" if check["ok"] else "REGRESSED"
            if check["metric"].endswith("_s"):
                values = (f"{check['baseline_s']*1000:.2f}ms -> "
                          f"{check['current_s']*1000:.2f}ms")
            else:
                # Dimensionless metrics (filter fractions) gate as-is.
                values = (f"{check['baseline_s']:.4f} -> "
                          f"{check['current_s']:.4f}")
            print(f"gate {check['config']}/{check['kind']} "
                  f"{check['metric']}: {values} "
                  f"({check['regress_pct']:+.1f}%) {marker}")
        if not verdict["ok"]:
            if verdict["compared"] == 0:
                print("error: regression gate compared nothing — config "
                      "names do not overlap the baseline", file=sys.stderr)
            else:
                print(f"error: gated metrics regressed more than "
                      f"{budget:.0f}% vs {args.baseline}", file=sys.stderr)
            return 1
        print(f"gate ok ({verdict['compared']} metrics within "
              f"{budget:.0f}% of {args.baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
