"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation (Section 6) or analysis (Section 5).  The paper runs 100K-5M
vectors and 1000 query repetitions in C++; this pure-Python reproduction
scales the workload down (defaults below) while preserving the *shape* of
every comparison.  Set ``REPRO_SCALE`` to a float to grow workloads, e.g.::

    REPRO_SCALE=4 pytest benchmarks/bench_fig10_lowdim.py --benchmark-only

Timing methodology: the headline numbers come from pytest-benchmark (the
``benchmark`` fixture); the printed paper-style tables come from one-shot
:class:`repro.stats.timing.Timer` sweeps so each file prints the same
rows/series as the paper alongside the benchmark output.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.bbr import BranchBoundRTK
from repro.algorithms.mpa import MarkedPruningRKR
from repro.algorithms.naive import NaiveRRQ
from repro.algorithms.sim import SimpleScan
from repro.core.gir import GridIndexRRQ
from repro.data.datasets import ProductSet, WeightSet
from repro.data.synthetic import generate_products, generate_weights
from repro.stats.counters import OpCounter
from repro.stats.timing import Timer

#: Base workload sizes (paper: 100K).  Multiplied by REPRO_SCALE.
BASE_SIZE = 600

#: Queries per measurement (paper: 1000 repetitions).
BASE_QUERIES = 3

#: Default k (paper: 100 with |W| = 100K; same 0.1% ratio of our base size).
DEFAULT_K = 10

#: Grid partitions (paper default).
PARTITIONS = 32


def scale() -> float:
    """The REPRO_SCALE factor (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def scaled_size(base: int = BASE_SIZE) -> int:
    """Workload cardinality after scaling."""
    return max(50, int(base * scale()))


def num_queries() -> int:
    """Number of query repetitions after scaling (grows slowly)."""
    return max(2, int(BASE_QUERIES * min(scale(), 4.0)))


def make_workload(p_dist: str, w_dist: str, d: int,
                  size_p: Optional[int] = None,
                  size_w: Optional[int] = None,
                  seed: int = 7) -> Tuple[ProductSet, WeightSet]:
    """A (P, W) pair in the paper's distribution taxonomy."""
    size_p = size_p if size_p is not None else scaled_size()
    size_w = size_w if size_w is not None else scaled_size()
    P = generate_products(p_dist, size_p, d, seed=seed)
    W = generate_weights(w_dist, size_w, d, seed=seed + 1)
    return P, W


def sample_queries(P: ProductSet, count: Optional[int] = None,
                   seed: int = 13) -> np.ndarray:
    """Query points drawn from P, as the paper does."""
    count = count if count is not None else num_queries()
    rng = np.random.default_rng(seed)
    idx = rng.choice(P.size, size=min(count, P.size), replace=False)
    return P.values[idx]


# ----------------------------------------------------------------------
# algorithm registry
# ----------------------------------------------------------------------

def build_rtk_algorithms(P: ProductSet, W: WeightSet,
                         partitions: int = PARTITIONS) -> Dict[str, object]:
    """The RTK contenders of Figures 10-14: GIR vs BBR vs SIM."""
    return {
        "GIR": GridIndexRRQ(P, W, partitions=partitions),
        "SIM": SimpleScan(P, W),
        "BBR": BranchBoundRTK(P, W),
    }


def build_rkr_algorithms(P: ProductSet, W: WeightSet,
                         partitions: int = PARTITIONS) -> Dict[str, object]:
    """The RKR contenders: GIR vs MPA vs SIM."""
    return {
        "GIR": GridIndexRRQ(P, W, partitions=partitions),
        "SIM": SimpleScan(P, W),
        "MPA": MarkedPruningRKR(P, W),
    }


# ----------------------------------------------------------------------
# measurement helpers
# ----------------------------------------------------------------------

def time_rtk(algorithm, queries: np.ndarray, k: int) -> Tuple[float, OpCounter]:
    """Mean seconds per RTK query plus accumulated op counts."""
    timer = Timer()
    counter = OpCounter()
    for q in queries:
        with timer.measure():
            algorithm.reverse_topk(q, k, counter=counter)
    return timer.mean, counter


def time_rkr(algorithm, queries: np.ndarray, k: int) -> Tuple[float, OpCounter]:
    """Mean seconds per RKR query plus accumulated op counts."""
    timer = Timer()
    counter = OpCounter()
    for q in queries:
        with timer.measure():
            algorithm.reverse_kranks(q, k, counter=counter)
    return timer.mean, counter


def compare(algorithms: Dict[str, object], queries: np.ndarray, k: int,
            kind: str) -> Dict[str, Tuple[float, OpCounter]]:
    """Run every algorithm over the query batch; returns name -> (mean_s, ops)."""
    runner = time_rtk if kind == "rtk" else time_rkr
    return {name: runner(alg, queries, k) for name, alg in algorithms.items()}


def ms(seconds: float) -> float:
    """Seconds to milliseconds, rounded for table display."""
    return round(seconds * 1000.0, 3)


def per_query_pairwise(counter: OpCounter, queries: int) -> int:
    """Average pairwise computations per query."""
    return counter.pairwise // max(queries, 1)


def banner(title: str) -> None:
    """Print a section banner so bench output reads like the paper."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


# ----------------------------------------------------------------------
# result recording
# ----------------------------------------------------------------------

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_table(name: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], title: str) -> str:
    """Render a paper-style table, print it, and save it under results/.

    pytest captures stdout by default, so each bench also persists its
    table to ``benchmarks/results/<name>.txt`` — that file is the artifact
    EXPERIMENTS.md points at.  Returns the rendered text.
    """
    from repro.stats.report import render_table

    text = render_table(headers, rows, title=title)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return text
