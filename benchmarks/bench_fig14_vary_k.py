"""Figure 14 — effect of k on UN data (d = 6, n = 32).

Expected shape: all algorithms insensitive to k because k << |P|, |W|
(the paper's 'Effect on k' paragraph).
"""

import pytest

from bench_common import (
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    make_workload,
    ms,
    record_table,
    sample_queries,
)

DIM = 6
K_VALUES = (5, 10, 20, 30, 50)


@pytest.fixture(scope="module")
def figure14_rows():
    P, W = make_workload("UN", "UN", DIM, seed=41)
    queries = sample_queries(P, seed=41)
    rows_rtk, rows_rkr = [], []
    rtk_algs = build_rtk_algorithms(P, W)
    rkr_algs = build_rkr_algorithms(P, W)
    for k in K_VALUES:
        rtk = compare(rtk_algs, queries, k, "rtk")
        rkr = compare(rkr_algs, queries, k, "rkr")
        rows_rtk.append([k, ms(rtk["GIR"][0]), ms(rtk["BBR"][0]),
                         ms(rtk["SIM"][0])])
        rows_rkr.append([k, ms(rkr["GIR"][0]), ms(rkr["MPA"][0]),
                         ms(rkr["SIM"][0])])
    return rows_rtk, rows_rkr, P, W, queries


def test_figure14(benchmark, figure14_rows):
    rows_rtk, rows_rkr, P, W, queries = figure14_rows
    banner(f"Figure 14: varying k, UN data, d={DIM}")
    record_table(
        "fig14_rtk_vary_k",
        ["k", "GIR ms", "BBR ms", "SIM ms"],
        rows_rtk,
        "Figure 14 RTK reproduction — varying k",
    )
    record_table(
        "fig14_rkr_vary_k",
        ["k", "GIR ms", "MPA ms", "SIM ms"],
        rows_rkr,
        "Figure 14 RKR reproduction — varying k",
    )
    # Shape: series stay within an order of magnitude across k.
    for rows in (rows_rtk, rows_rkr):
        for col in (1, 2, 3):
            series = [row[col] for row in rows]
            assert max(series) <= max(min(series) * 10.0, 1.0)

    gir = build_rtk_algorithms(P, W)["GIR"]
    benchmark(lambda: gir.reverse_topk(queries[0], K_VALUES[-1]))
