"""Serving throughput: micro-batch window x concurrency sweep.

Not a figure in the paper — the paper measures offline algorithm cost —
but the serving subsystem (`repro.service`) adds two knobs the library
never had: the micro-batch coalescing window and client concurrency.
This bench sweeps batch windows {0, 2, 10} ms against 1/8/32 concurrent
closed-loop clients and reports qps plus latency percentiles, so an
operator can see the throughput/latency trade the window buys.

The clients drive the embeddable :class:`QueryService` directly (no HTTP
sockets): the point is the scheduler's coalescing behaviour, not TCP
accept rates.  Each client issues unique query points, so the LRU cache
stays cold and every request exercises the dispatch path.
"""

import threading

import pytest

from repro.service import QueryService, ServiceConfig, ServiceLimits
from repro.service.metrics import percentile

from bench_common import banner, make_workload, record_table, sample_queries

#: Micro-batch windows swept, in milliseconds.
WINDOWS_MS = (0.0, 2.0, 10.0)

#: Concurrent closed-loop clients.
CLIENTS = (1, 8, 32)

#: Requests each client issues per configuration.
REQUESTS_PER_CLIENT = 6

DIM = 4
K = 10


def run_configuration(P, W, window_ms: float, clients: int):
    """qps and latency percentiles for one (window, concurrency) cell."""
    service = QueryService.from_datasets(
        P, W, method="gir",
        config=ServiceConfig(
            batch_window_s=window_ms / 1000.0,
            cache_capacity=0,  # cold cache: measure dispatch, not lookups
            limits=ServiceLimits(max_queue_depth=1024, max_batch=64),
        ),
    )
    queries = sample_queries(P, count=clients * REQUESTS_PER_CLIENT,
                             seed=int(window_ms * 10 + clients))
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client_loop(worker: int) -> None:
        from time import perf_counter

        mine = queries[worker * REQUESTS_PER_CLIENT:
                       (worker + 1) * REQUESTS_PER_CLIENT]
        barrier.wait()
        for i, q in enumerate(mine):
            kind = "rtk" if i % 2 == 0 else "rkr"
            start = perf_counter()
            service.query(q, kind=kind, k=K)
            sample = perf_counter() - start
            with lock:
                latencies.append(sample)

    from time import perf_counter

    threads = [threading.Thread(target=client_loop, args=(w,))
               for w in range(clients)]
    wall_start = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = perf_counter() - wall_start
    snapshot = service.metrics_snapshot()
    service.close()
    total = clients * REQUESTS_PER_CLIENT
    return {
        "qps": total / wall if wall > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p95_ms": percentile(latencies, 0.95) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
        "coalesced": snapshot["batches"]["coalesced"],
        "max_batch": snapshot["batches"]["max_size"],
    }


@pytest.fixture(scope="module")
def throughput_rows():
    P, W = make_workload("UN", "UN", DIM, seed=77)
    rows = []
    for window_ms in WINDOWS_MS:
        for clients in CLIENTS:
            cell = run_configuration(P, W, window_ms, clients)
            rows.append([
                f"{window_ms:g}", clients,
                f"{cell['qps']:.1f}",
                f"{cell['p50_ms']:.1f}", f"{cell['p95_ms']:.1f}",
                f"{cell['p99_ms']:.1f}",
                cell["coalesced"], cell["max_batch"],
            ])
    return rows


def test_service_throughput(benchmark, throughput_rows):
    banner("Serving: micro-batch window x concurrency (QueryService, GIR)")
    record_table(
        "service_throughput",
        ["window ms", "clients", "qps", "p50 ms", "p95 ms", "p99 ms",
         "coalesced", "max batch"],
        throughput_rows,
        "Service throughput and latency percentiles "
        f"({REQUESTS_PER_CLIENT} requests/client, k={K}, cold cache)",
    )
    # Shape: with 32 concurrent clients a non-zero window must coalesce.
    by_key = {(row[0], row[1]): row for row in throughput_rows}
    assert by_key[("2", 32)][6] > 0
    assert by_key[("10", 32)][6] > 0
    # A window of zero never batches.
    for clients in CLIENTS:
        assert by_key[("0", clients)][7] <= 1

    P, W = make_workload("UN", "UN", DIM, seed=78)
    service = QueryService.from_datasets(
        P, W, method="gir",
        config=ServiceConfig(batch_window_s=0.0, cache_capacity=0),
    )
    q = sample_queries(P, count=1, seed=9)[0]
    try:
        benchmark(lambda: service.query(q, kind="rtk", k=K))
    finally:
        service.close()
