"""Table 3 — geometry of the R-tree's MBRs as dimensionality grows.

Reproduces the observation table: number of leaf MBRs, average diagonal,
shape ratio (longest/shortest edge), the fraction of MBRs a 1%-volume
range query overlaps, and the (log10) MBR volume.  Expected shape:
diagonal and volume explode with d; overlap saturates at 100% past d ~ 6;
the shape ratio falls toward 1 (boxes become cubes of noise).
"""

import pytest

from repro.data.synthetic import uniform_products
from repro.index.rtree import RTree

from bench_common import banner, record_table, scaled_size

DIMS = (3, 6, 9, 12, 15, 18, 21, 24)
CAPACITY = 100  # the paper: "each MBR has 100 entries"


@pytest.fixture(scope="module")
def table3_rows():
    size = max(2000, scaled_size(2000))
    rows = []
    for d in DIMS:
        P = uniform_products(size, d, seed=d)
        tree = RTree(P.values, capacity=CAPACITY)
        stats = tree.mbr_statistics(query_fraction=0.01, num_queries=30,
                                    seed=d)
        rows.append([
            d,
            stats["num_mbrs"],
            round(stats["avg_diagonal"], 1),
            round(stats["avg_shape_ratio"], 2),
            f"{stats['overlap_fraction'] * 100:.1f}%",
            round(stats["avg_log10_volume"], 1),
        ])
    return rows


def test_table3(benchmark, table3_rows):
    banner("Table 3: accessed MBRs of an R-tree vs dimensionality")
    record_table(
        "tab03_rtree_mbrs",
        ["d", "#MBR", "diagonal", "shape", "overlap in 1% query",
         "log10 volume"],
        table3_rows,
        "Table 3 reproduction (100-entry leaves, UN data)",
    )
    overlaps = [float(r[4].rstrip("%")) for r in table3_rows]
    # Shape: overlap saturates in high d (paper: 100% for d >= 9).
    assert overlaps[-1] > 95.0
    assert overlaps[0] < overlaps[-1]
    # Diagonal grows monotonically with d.
    diagonals = [r[2] for r in table3_rows]
    assert all(a < b for a, b in zip(diagonals, diagonals[1:]))

    # Headline benchmark: building the d=12 tree.
    P = uniform_products(scaled_size(), 12, seed=0)
    benchmark(lambda: RTree(P.values, capacity=CAPACITY))
