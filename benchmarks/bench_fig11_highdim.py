"""Figure 11 — high-dimensional behaviour (d = 10-50): query time and
pairwise computations.

Expected shape: the tree methods' time and computation counts climb
steeply (MBR overlap saturates, Section 5.2), while the scan-based
methods stay nearly flat; GIR performs the fewest inner products of all
(Figure 11b/11d's 'GIR saves what SIM must compute').
"""

import pytest

from bench_common import (
    DEFAULT_K,
    banner,
    build_rkr_algorithms,
    build_rtk_algorithms,
    compare,
    make_workload,
    ms,
    per_query_pairwise,
    record_table,
    sample_queries,
)

DIMS = (10, 20, 30, 50)


@pytest.fixture(scope="module")
def figure11_rows():
    rows_rtk, rows_rkr = [], []
    for d in DIMS:
        P, W = make_workload("UN", "UN", d, seed=d)
        queries = sample_queries(P, seed=d)
        nq = len(queries)
        rtk = compare(build_rtk_algorithms(P, W), queries, DEFAULT_K, "rtk")
        rkr = compare(build_rkr_algorithms(P, W), queries, DEFAULT_K, "rkr")
        rows_rtk.append([
            d, ms(rtk["GIR"][0]), ms(rtk["BBR"][0]), ms(rtk["SIM"][0]),
            per_query_pairwise(rtk["GIR"][1], nq),
            per_query_pairwise(rtk["BBR"][1], nq),
            per_query_pairwise(rtk["SIM"][1], nq),
        ])
        rows_rkr.append([
            d, ms(rkr["GIR"][0]), ms(rkr["MPA"][0]), ms(rkr["SIM"][0]),
            per_query_pairwise(rkr["GIR"][1], nq),
            per_query_pairwise(rkr["MPA"][1], nq),
            per_query_pairwise(rkr["SIM"][1], nq),
        ])
    return rows_rtk, rows_rkr


def test_figure11(benchmark, figure11_rows):
    rows_rtk, rows_rkr = figure11_rows
    banner("Figure 11 (a, b): RTK in high dimensions")
    record_table(
        "fig11_rtk_highdim",
        ["d", "GIR ms", "BBR ms", "SIM ms",
         "GIR pairwise", "BBR pairwise", "SIM pairwise"],
        rows_rtk,
        "Figure 11 RTK reproduction — d = 10-50, UN data",
    )
    banner("Figure 11 (c, d): RKR in high dimensions")
    record_table(
        "fig11_rkr_highdim",
        ["d", "GIR ms", "MPA ms", "SIM ms",
         "GIR pairwise", "MPA pairwise", "SIM pairwise"],
        rows_rkr,
        "Figure 11 RKR reproduction — d = 10-50, UN data",
    )

    # Shape checks.
    for rows, tree_col in ((rows_rtk, 5), (rows_rkr, 5)):
        final = rows[-1]
        # GIR performs fewer inner products than SIM at every d.
        for row in rows:
            assert row[4] <= row[6]
        # The tree method performs at least as many pairwise computations
        # as the plain scan once d is large (overlap saturation).
        assert final[tree_col] >= final[6] * 0.5

    # Headline benchmark: GIR RKR at d = 30.
    P, W = make_workload("UN", "UN", 30, seed=5)
    q = sample_queries(P, count=1, seed=5)[0]
    gir = build_rkr_algorithms(P, W)["GIR"]
    benchmark(lambda: gir.reverse_kranks(q, DEFAULT_K))
