#!/usr/bin/env python3
"""Product placement: positioning a new cell phone against the market.

The introduction's manufacturer scenario, end to end: given an existing
market (competitor phones + customer preferences), evaluate candidate
designs for a new phone by the number of customers whose top-k it would
enter (reverse top-k), and find the most receptive niche for the chosen
design (reverse k-ranks).  Compares all algorithms' agreement and speed on
the way.

Run: ``python examples/product_placement.py``
"""

import time

import numpy as np

from repro import (
    BranchBoundRTK,
    GridIndexRRQ,
    NaiveRRQ,
    SimpleScan,
    clustered_products,
    clustered_weights,
)
from repro.stats.report import print_table

ATTRIBUTES = ["price", "weight", "battery_drain", "camera_noise",
              "lag", "fragility"]  # all minimized
MARKET = 2_500
CUSTOMERS = 2_000
K = 20


def main() -> None:
    d = len(ATTRIBUTES)
    market = clustered_products(MARKET, d, value_range=1.0, seed=11)
    customers = clustered_weights(CUSTOMERS, d, seed=12)
    print(f"Market: {market.size} phones, {customers.size} customers, "
          f"attributes: {', '.join(ATTRIBUTES)}\n")

    gir = GridIndexRRQ(market, customers)

    # --- Candidate designs --------------------------------------------------
    # Three prototypes: budget (cheap but weak), flagship (great but
    # pricey), balanced.  Values are normalized "badness" per attribute.
    candidates = {
        "budget": np.array([0.15, 0.60, 0.55, 0.70, 0.60, 0.65]),
        "flagship": np.array([0.85, 0.20, 0.15, 0.10, 0.15, 0.25]),
        "balanced": np.array([0.45, 0.40, 0.35, 0.40, 0.35, 0.40]),
    }

    rows = []
    audiences = {}
    for name, design in candidates.items():
        result = gir.reverse_topk(design, k=K)
        audiences[name] = result
        rows.append([name, result.size,
                     f"{result.size / customers.size:.1%}"])
    print_table(
        ["design", f"customers with it in their top-{K}", "market reach"],
        rows,
        title="Reverse top-k audience per candidate design",
    )

    winner = max(audiences, key=lambda n: audiences[n].size)
    print(f"Winner: the {winner} design.\n")

    # --- Niche analysis ------------------------------------------------------
    rkr = gir.reverse_kranks(candidates[winner], k=5)
    rows = []
    for rank, cust in rkr.entries:
        prefs = customers[cust]
        top_attr = ATTRIBUTES[int(np.argmax(prefs))]
        rows.append([cust, rank + 1, top_attr, f"{prefs.max():.2f}"])
    print_table(
        ["customer", "position in their ranking", "top priority", "weight"],
        rows,
        title=f"Most receptive customers for the {winner} design",
    )

    # --- Algorithm shoot-out --------------------------------------------------
    print("Cross-checking algorithms on the winning design "
          "(all must agree exactly):")
    design = candidates[winner]
    reference = None
    for alg in (NaiveRRQ(market, customers),
                SimpleScan(market, customers),
                BranchBoundRTK(market, customers),
                gir):
        start = time.perf_counter()
        result = alg.reverse_topk(design, k=K)
        elapsed = (time.perf_counter() - start) * 1000
        if reference is None:
            reference = result.weights
        assert result.weights == reference
        print(f"  {alg.name:6s} {elapsed:9.1f} ms   answer size {result.size}")


if __name__ == "__main__":
    main()
