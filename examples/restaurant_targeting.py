#!/usr/bin/env python3
"""Restaurant targeting on a DIANPING-style review workload.

The paper's flagship real-world scenario (Section 6.1): a business-review
site averages each user's review scores into a preference vector and each
restaurant's review scores into an attribute vector over six aspects
(rate, food flavor, cost, service, environment, waiting time).  A reverse
k-ranks query then finds, for any restaurant, the users most likely to be
its audience — including unpopular restaurants, which reverse top-k would
return nothing for.

Run: ``python examples/restaurant_targeting.py``
"""

import numpy as np

from repro import RRQEngine
from repro.data.real import DIANPING_ASPECTS, dianping
from repro.stats.report import print_table

RESTAURANTS = 1_500
USERS = 1_200


def describe(vector, names) -> str:
    """The two aspects a vector emphasises most."""
    order = np.argsort(vector)[::-1]
    return ", ".join(names[i] for i in order[:2])


def main() -> None:
    print("Simulating the review site (latent quality + user taste + noise)...")
    data = dianping(num_restaurants=RESTAURANTS, num_users=USERS,
                    reviews_per_user=8, seed=7)
    print(f"{data.num_reviews:,} reviews -> {data.restaurants.size} restaurants, "
          f"{data.users.size} user preferences\n")

    engine = RRQEngine(data.restaurants, data.users, method="gir")

    # --- Campaign 1: a popular restaurant ---------------------------------
    # Attribute vectors are "smaller is better"; a low row sum = strong.
    strength = data.restaurants.values.sum(axis=1)
    star = int(np.argmin(strength))
    rtk = engine.reverse_topk(data.restaurants[star], k=10)
    print(f"Restaurant #{star} (the strongest performer) appears in the "
          f"top-10 of {rtk.size} users — a reverse top-k audience estimate.")

    # --- Campaign 2: a struggling restaurant ------------------------------
    dog = int(np.argmax(strength))
    rtk_dog = engine.reverse_topk(data.restaurants[dog], k=10)
    print(f"Restaurant #{dog} (the weakest) appears in the top-10 of "
          f"{rtk_dog.size} users — reverse top-k returns "
          f"{'nothing' if rtk_dog.size == 0 else 'almost nothing'}, the "
          "limitation reverse k-ranks was designed to fix.")

    rkr = engine.reverse_kranks(data.restaurants[dog], k=5)
    rows = []
    for rank, user in rkr.entries:
        taste = data.users[user]
        rows.append([user, rank + 1, describe(taste, DIANPING_ASPECTS)])
    print_table(
        ["user", "restaurant's position in their ranking", "user cares most about"],
        rows,
        title=f"\nReverse 5-ranks for struggling restaurant #{dog} "
              "(its 5 most receptive users)",
    )

    # --- Visibility sweep ---------------------------------------------------
    print("Audience size vs k for the struggling restaurant:")
    for k in (10, 50, 100, 200):
        size = engine.reverse_topk(data.restaurants[dog], k=k).size
        print(f"  top-{k:<4d} -> {size:5d} users")


if __name__ == "__main__":
    main()
