#!/usr/bin/env python3
"""Tuning the Grid-index with the Section 5.3 performance model.

Shows the workflow a practitioner would follow:

1. ask the model for the partition count ``n`` that guarantees a target
   filtering performance for the data's dimensionality (Theorem 1);
2. verify the model's prediction against measured filtering on the actual
   data (and see the model's idealization gap, cf. EXPERIMENTS.md);
3. inspect the memory/time trade-off across ``n``;
4. switch to the quantile (adaptive) grid when the data is skewed.

Run: ``python examples/tuning_the_grid.py``
"""

import time

from repro import GridIndexRRQ, uniform_weights
from repro.core import model
from repro.data.synthetic import exponential_products, uniform_products
from repro.ext.adaptive_grid import AdaptiveGridIndexRRQ
from repro.stats.counters import OpCounter
from repro.stats.report import print_table

SIZE = 1_500
DIM = 12


def main() -> None:
    # 1. Model-driven choice of n.
    for d in (6, 12, 20, 50):
        n = model.recommend_partitions(d, epsilon=0.01)
        mem = model.grid_memory_bytes(n)
        print(f"d={d:3d}: Theorem 1 recommends n={n:4d} "
              f"(grid memory {mem/1024:.1f} KiB, model guarantee "
              f"F > {model.worst_case_filtering(d, n):.3%})")
    print()

    # 2. Measured filtering vs model on real (uniform) data.
    P = uniform_products(SIZE, DIM, value_range=1.0, seed=3)
    W = uniform_weights(SIZE, DIM, seed=4)
    queries = P.values[:3]
    rows = []
    for n in (8, 16, 32, 64):
        measured = model.measure_filtering(P.values, W.values, n, 1.0, queries)
        predicted = model.worst_case_filtering(DIM, n)
        rows.append([n, f"{predicted:.1%}", f"{measured:.1%}"])
    print_table(
        ["n", "model (idealized)", "measured on data"],
        rows,
        title=f"Filtering vs n at d={DIM} — the model is optimistic, the "
              "trend matches",
    )

    # 3. Time/memory trade-off on actual queries.
    q = P[0]
    rows = []
    for n in (4, 16, 32, 128):
        gir = GridIndexRRQ(P, W, partitions=n)
        counter = OpCounter()
        start = time.perf_counter()
        gir.reverse_kranks(q, 10, counter=counter)
        elapsed = (time.perf_counter() - start) * 1000
        rows.append([n, f"{elapsed:.1f} ms", counter.pairwise,
                     f"{gir.grid.memory_bytes / 1024:.1f} KiB"])
    print_table(
        ["n", "RKR query time", "inner products", "grid memory"],
        rows,
        title="Query cost vs grid resolution",
    )

    # 4. Skewed data: the adaptive grid earns its keep.
    P_skew = exponential_products(SIZE, DIM, seed=5)
    W_skew = uniform_weights(SIZE, DIM, seed=6)
    q = P_skew[0]
    rows = []
    for name, cls in (("equal-width", GridIndexRRQ),
                      ("quantile", AdaptiveGridIndexRRQ)):
        alg = cls(P_skew, W_skew, partitions=16)
        counter = OpCounter()
        alg.reverse_kranks(q, 10, counter=counter)
        rows.append([name, counter.pairwise,
                     f"{counter.filtering_ratio():.1%}"])
    print_table(
        ["grid", "inner products", "bound filtering"],
        rows,
        title="Exponential data, n=16: adaptive boundaries vs equal width",
    )


if __name__ == "__main__":
    main()
