#!/usr/bin/env python3
"""Weight-space analysis with the monochromatic reverse top-k (2-d).

The bichromatic queries need a concrete customer data set; the
*monochromatic* variant answers a design question instead: **for which
preference mixes at all** would my product make the top-k?  In two
dimensions a preference is ``(lam, 1 - lam)``, so the answer is a set of
exact intervals of ``lam`` — a complete market-segmentation picture with
no customer data required.

Uses the paper's Figure 1 cell phones (scored on "smart" and "rating",
smaller = better after inversion) and reports, per phone, the share of
all possible preferences that would shortlist it.

Run: ``python examples/weight_space_analysis.py``
"""

import numpy as np

from repro import monochromatic_reverse_topk
from repro.stats.report import print_table

PHONES = {
    "p1": [0.6, 0.7],
    "p2": [0.2, 0.3],
    "p3": [0.1, 0.6],
    "p4": [0.7, 0.5],
    "p5": [0.8, 0.2],
}


def fmt_interval(interval) -> str:
    lo, hi = interval
    return f"[{float(lo):.3f}, {float(hi):.3f}]"


def main() -> None:
    P = np.array(list(PHONES.values()))
    names = list(PHONES)
    print("Figure 1 cell phones, attributes (smart, rating), smaller = better.")
    print("lam = weight on 'smart'; preference = (lam, 1 - lam).\n")

    for k in (1, 2):
        rows = []
        for idx, name in enumerate(names):
            result = monochromatic_reverse_topk(P, P[idx], k)
            coverage = float(result.total_measure())
            intervals = ", ".join(fmt_interval(iv) for iv in result.intervals)
            rows.append([name, f"{coverage:.1%}", intervals or "(none)"])
        print_table(
            ["phone", f"share of preferences with it in the top-{k}",
             "qualifying lam intervals"],
            rows,
            title=f"Monochromatic reverse top-{k}",
        )

    # Cross-check one cell against the bichromatic engine on sampled
    # preferences: interval membership and RTK membership must coincide.
    from repro import NaiveRRQ, ProductSet, WeightSet

    lams = np.linspace(0.01, 0.99, 25)
    W = np.column_stack([lams, 1 - lams])
    naive = NaiveRRQ(ProductSet(P, value_range=1.0), WeightSet(W))
    mono = monochromatic_reverse_topk(P, P[1], 2)  # p2, the crowd favourite
    bichromatic = naive.reverse_topk(P[1], 2).weights
    agree = all(
        (j in bichromatic) == mono.contains(float(lam))
        for j, lam in enumerate(lams)
    )
    print(f"Cross-check against the bichromatic engine on 25 sampled "
          f"preferences: {'consistent' if agree else 'MISMATCH'}")

    # A design insight the intervals make obvious:
    p4 = monochromatic_reverse_topk(P, P[3], 2)
    print(f"\np4 (mediocre at both attributes) reaches "
          f"{float(p4.total_measure()):.1%} of the preference space at k=2 "
          "— Figure 1(b)'s empty RT-2 was not bad luck; no preference mix "
          "rescues it." if p4.is_empty else "")


if __name__ == "__main__":
    main()
