#!/usr/bin/env python3
"""Serving quickstart: run the reverse-rank query service end to end.

The library's offline engines answer one batch at a time; the
``repro.service`` subsystem turns them into an always-on server with a
micro-batching scheduler (concurrent requests share one BLAS sweep), an
LRU answer cache, admission control, and a JSON/HTTP frontend.  This
walkthrough starts a real HTTP server on an ephemeral port, fires a
concurrent burst through it, and reads the serving metrics back.

The same server is available from the shell::

    repro-rrq generate --dist UN --size 2000 --dim 4 --out data/
    repro-rrq serve data/ --port 8377 --batch-window-ms 2

Run: ``python examples/serving_quickstart.py``
"""

import threading

from repro import NaiveRRQ, uniform_products, uniform_weights
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceLimits,
    serve_in_background,
)

PRODUCTS = 800
USERS = 600
DIM = 4
CLIENTS = 12


def main() -> None:
    # 1. A small synthetic market and the service over a GIR engine.
    products = uniform_products(size=PRODUCTS, dim=DIM, seed=7)
    users = uniform_weights(size=USERS, dim=DIM, seed=8)
    service = QueryService.from_datasets(
        products, users, method="gir",
        config=ServiceConfig(
            batch_window_s=0.02,          # coalesce arrivals within 20 ms
            cache_capacity=512,
            limits=ServiceLimits(max_queue_depth=128, max_batch=32),
        ),
    )

    # 2. Serve it over HTTP on an ephemeral port (port=0).
    with serve_in_background(service) as server:
        client = ServiceClient(server.url)
        client.wait_until_healthy()
        info = client.info()
        print(f"Serving {info['method']} over {info['products']} products x "
              f"{info['weights']} users at {server.url}")

        # 3. One interactive query: which users shortlist product 9?
        answer = client.query(product=9, kind="rtk", k=25)
        print(f"\nReverse top-25 for product 9 -> {answer['size']} users; "
              f"first few: {answer['weights'][:8]}")

        # 4. A concurrent burst — this is what the batch window is for.
        def hit(i: int) -> None:
            kind = "rtk" if i % 2 == 0 else "rkr"
            client.query(product=i, kind=kind, k=8)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # A repeat of an earlier query: served from the LRU cache.
        client.query(product=9, kind="rtk", k=25)

        # 5. Read the serving metrics back.
        metrics = client.metrics()
        batches = metrics["batches"]
        print(f"\n/metrics after the burst:")
        print(f"   requests        : {metrics['requests']['total']}")
        print(f"   coalesced batches: {batches['coalesced']} "
              f"(largest {batches['max_size']} queries in one sweep)")
        print(f"   p50 / p95 latency: {metrics['latency_ms']['p50']:.1f} / "
              f"{metrics['latency_ms']['p95']:.1f} ms")
        print(f"   cache hit rate  : {metrics['cache']['hit_rate']:.0%}")

        # 6. Served answers are exactly the library's answers.
        q = products[9]
        naive = NaiveRRQ(products, users)
        assert frozenset(answer["weights"]) == naive.reverse_topk(q, 25).weights
        print("\nServed answers verified against the brute-force oracle.")


if __name__ == "__main__":
    main()
