#!/usr/bin/env python3
"""A live catalogue: incremental updates and bundle queries.

Goes beyond the paper's static experiments to what a deployed
recommendation backend needs day to day:

* products launch and retire while queries keep flowing
  (:class:`DynamicRRQEngine`);
* marketing asks about *bundles* — "which customers should we pitch this
  three-product kit to?" — the aggregate reverse rank query of the
  authors' follow-up work (``repro.ext.aggregate``).

Run: ``python examples/live_catalog.py``
"""

import numpy as np

from repro import uniform_products, uniform_weights
from repro.ext.aggregate import AggregateGridIndexRKR
from repro.ext.dynamic import DynamicRRQEngine
from repro.stats.report import print_table

DIM = 5
SEED = 2024


def main() -> None:
    rng = np.random.default_rng(SEED)

    # --- Bootstrap the live engine from an initial catalogue ---------------
    P0 = uniform_products(800, DIM, value_range=1.0, seed=SEED)
    W0 = uniform_weights(700, DIM, seed=SEED + 1)
    engine = DynamicRRQEngine.from_datasets(P0, W0, partitions=32)
    print(f"Bootstrapped: {engine.num_products} products, "
          f"{engine.num_weights} customers")

    flagship = P0.values[5]
    baseline = engine.reverse_topk(flagship, k=15)
    print(f"Flagship product reaches {baseline.size} customers' top-15.\n")

    # --- Day 1: a competitor launches 50 strong products --------------------
    strong = rng.random((50, DIM)) * 0.25  # uniformly good (low = better)
    for row in strong:
        engine.insert_product(row)
    after_launch = engine.reverse_topk(flagship, k=15)
    print(f"After 50 strong competitor launches: "
          f"{after_launch.size} customers (was {baseline.size}).")

    # --- Day 2: the competitor's products are recalled ----------------------
    for idx in range(800, 850):
        engine.remove_product(idx)
    after_recall = engine.reverse_topk(flagship, k=15)
    print(f"After the recall: {after_recall.size} customers "
          f"(back to baseline: {after_recall.weights == baseline.weights}).")

    # --- Day 3: customer churn + signups ------------------------------------
    for idx in rng.choice(700, size=60, replace=False):
        engine.remove_weight(int(idx))
    for _ in range(90):
        engine.insert_weight(rng.dirichlet(np.ones(DIM)))
    print(f"After churn: {engine.num_weights} customers, "
          f"fragmentation {engine.fragmentation():.1%}")
    engine.compact()
    print(f"Compacted: fragmentation {engine.fragmentation():.1%}\n")

    # --- Bundle campaign ------------------------------------------------------
    # Pitch a starter kit of three products to the 8 best-matching
    # customers, under both aggregate semantics.
    P1 = uniform_products(800, DIM, value_range=1.0, seed=SEED)  # static copy
    W1 = uniform_weights(700, DIM, seed=SEED + 1)
    solver = AggregateGridIndexRKR(P1, W1)
    kit = [P1.values[5], P1.values[123], P1.values[456]]
    rows = []
    for aggregation in ("sum", "max"):
        result = solver.query(kit, k=8, aggregation=aggregation)
        rows.append([
            aggregation,
            ", ".join(str(idx) for _, idx in result.entries[:8]),
            result.entries[0][0],
        ])
    print_table(
        ["aggregation", "best customers", "best aggregate rank"],
        rows,
        title="Bundle campaign: aggregate reverse 8-ranks for a 3-product kit",
    )
    print("('sum' favours customers good on average; 'max' requires every "
          "kit member to rank well.)")


if __name__ == "__main__":
    main()
