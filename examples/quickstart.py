#!/usr/bin/env python3
"""Quickstart: reverse rank queries in five minutes.

Builds a small synthetic market (products scored on six attributes, user
preferences on the simplex), then answers the two queries the paper
defines:

* *reverse top-k* — "which users would see my product in their top-k?"
* *reverse k-ranks* — "who are the k users that rank my product best?"

Run: ``python examples/quickstart.py``
"""

from repro import (
    GridIndexRRQ,
    NaiveRRQ,
    RRQEngine,
    uniform_products,
    uniform_weights,
)
from repro.stats.report import print_table

PRODUCTS = 2_000
USERS = 1_500
DIM = 6


def main() -> None:
    # 1. Data: products with 6 attributes in [0, 10000) — smaller is
    # better — and user preference vectors summing to 1.
    products = uniform_products(size=PRODUCTS, dim=DIM, seed=42)
    users = uniform_weights(size=USERS, dim=DIM, seed=43)
    print(f"Market: {products.size} products x {users.size} users, d={DIM}")

    # 2. Build the Grid-index engine (the paper's GIR algorithm).
    engine = RRQEngine(products, users, method="gir")

    # 3. Pick a product to analyse.
    q = products[17]
    print(f"\nQuery product 17: {[round(v, 1) for v in q]}")

    # 4. Reverse top-10: users who would shortlist this product.
    rtk = engine.reverse_topk(q, k=10)
    print(f"\nReverse top-10 -> {rtk.size} matching users")
    print(f"   first few: {rtk.sorted_indices()[:8]}")

    # 5. Reverse 5-ranks: the five best-matching users, with the rank the
    # product holds in each of their preference orders.
    rkr = engine.reverse_kranks(q, k=5)
    print_table(
        ["user", "rank of product 17 in their list"],
        [[idx, rank] for rank, idx in rkr.entries],
        title="\nReverse 5-ranks",
    )

    # 6. The scan is exact: cross-check against brute force.
    oracle = NaiveRRQ(products, users)
    assert rtk.weights == oracle.reverse_topk(q, 10).weights
    assert rkr.entries == oracle.reverse_kranks(q, 5).entries
    print("Cross-checked against the brute-force oracle: identical.")

    # 7. Peek at the work saved by the Grid-index.
    gir = GridIndexRRQ(products, users)
    result = gir.reverse_kranks(q, 5)
    c = result.counter
    total_pairs = products.size * users.size
    print(f"\nGrid-index effect: {c.pairwise:,} inner products instead of "
          f"{total_pairs:,} ({c.pairwise / total_pairs:.2%}); "
          f"{c.filtering_ratio():.1%} of examined pairs decided by bounds alone.")


if __name__ == "__main__":
    main()
