"""The d-dimensional histogram over ``W`` used by MPA.

MPA [22] groups all weighting vectors into an equi-width grid of ``c``
intervals per dimension (``c = 5`` in the paper), yielding up to ``c**d``
buckets.  Only non-empty buckets are materialized; each keeps the member
indices plus the cell's coordinate bounds, from which MPA derives per-bucket
score intervals for pruning.

Section 5.1 of the paper points out why this structure collapses in high
dimensions: the bucket count explodes (``5**10 ~ 9M``) while occupancy drops
to one vector per bucket, so bucket-level pruning degenerates to a scan.
The implementation here keeps that behaviour (it is part of what the
experiments measure) but stays memory-safe by storing only occupied cells
in a dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import InvalidParameterError

#: The per-dimension resolution suggested by [22] and used in the paper.
DEFAULT_RESOLUTION = 5


@dataclass
class Bucket:
    """One occupied histogram cell.

    ``lo``/``hi`` are the cell's coordinate bounds, tightened to the actual
    members (tight bounds prune strictly better and cost one pass).
    ``members`` are indices into the weight array.
    """

    cell: Tuple[int, ...]
    lo: np.ndarray
    hi: np.ndarray
    members: List[int]

    @property
    def count(self) -> int:
        """Number of weight vectors in the bucket."""
        return len(self.members)


class WeightHistogram:
    """Equi-width histogram over a weight array of shape ``(m, d)``.

    Weight components live in ``[0, 1]``, so cell ``j`` along a dimension
    covers ``[j/c, (j+1)/c)`` with the final cell closed above.
    """

    def __init__(self, weights: np.ndarray, resolution: int = DEFAULT_RESOLUTION):
        arr = np.asarray(weights, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise InvalidParameterError("WeightHistogram needs a non-empty (m, d) array")
        if resolution < 1:
            raise InvalidParameterError("resolution must be at least 1")
        self.weights = arr
        self.resolution = resolution
        self.dim = arr.shape[1]
        self._buckets = self._build(arr, resolution)

    @staticmethod
    def _build(arr: np.ndarray, c: int) -> Dict[Tuple[int, ...], Bucket]:
        cells = np.clip((arr * c).astype(np.intp), 0, c - 1)
        grouped: Dict[Tuple[int, ...], List[int]] = {}
        for idx, cell in enumerate(map(tuple, cells)):
            grouped.setdefault(cell, []).append(idx)
        buckets: Dict[Tuple[int, ...], Bucket] = {}
        for cell, members in grouped.items():
            block = arr[members]
            buckets[cell] = Bucket(
                cell=cell,
                lo=block.min(axis=0),
                hi=block.max(axis=0),
                members=members,
            )
        return buckets

    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Number of occupied buckets."""
        return len(self._buckets)

    @property
    def theoretical_buckets(self) -> int:
        """``c ** d`` — the bucket count Section 5.1 warns about."""
        return self.resolution ** self.dim

    def occupancy(self) -> float:
        """Average vectors per occupied bucket."""
        if not self._buckets:
            return 0.0
        return self.weights.shape[0] / len(self._buckets)

    def buckets(self) -> Iterator[Bucket]:
        """Iterate over occupied buckets (deterministic order by cell id)."""
        for cell in sorted(self._buckets):
            yield self._buckets[cell]

    def bucket_of(self, idx: int) -> Bucket:
        """The bucket containing weight vector ``idx``."""
        cell = tuple(
            np.clip((self.weights[idx] * self.resolution).astype(np.intp),
                    0, self.resolution - 1)
        )
        return self._buckets[cell]

    def check_invariants(self) -> None:
        """Every vector in exactly one bucket; bounds cover their members."""
        total = 0
        seen: List[int] = []
        for bucket in self._buckets.values():
            block = self.weights[bucket.members]
            if np.any(block < bucket.lo - 1e-12) or np.any(block > bucket.hi + 1e-12):
                raise InvalidParameterError("bucket bounds do not cover members")
            total += bucket.count
            seen.extend(bucket.members)
        if total != self.weights.shape[0] or sorted(seen) != list(
            range(self.weights.shape[0])
        ):
            raise InvalidParameterError("buckets do not partition the weights")
