"""R*-tree split and X-tree-style supernodes (paper Section 2 lineage).

The paper's related work walks the evolution of spatial indexes:
R-tree → R*-tree [1] (splits chosen to minimize margin then overlap)
→ X-tree [2] (when no split avoids heavy overlap, keep an oversized
*supernode* and scan it linearly).  This module implements both ideas as
pluggable split policies for :class:`repro.index.rtree.RTree`:

* :func:`rstar_split` — the R*-tree topological split: pick the axis with
  the smallest total margin over all distributions, then the distribution
  with the least overlap (ties: least area).
* :class:`XTreeSplitPolicy` — attempts the R*-split; if the best
  achievable overlap ratio still exceeds ``max_overlap``, refuses to
  split, which makes the node a supernode (its capacity grows).

The Table 3 phenomenon can then be studied across construction policies:
in low dimensions R* splits reduce overlap markedly; in high dimensions
every policy converges to total overlap — X-tree degenerates into one big
supernode, i.e. a linear scan, exactly as the paper argues.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from .mbr import MBR

#: Minimum fraction of entries on each side of an R* distribution.
RSTAR_MIN_FILL = 0.4


def _union(boxes: Sequence[MBR]) -> MBR:
    out = boxes[0]
    for box in boxes[1:]:
        out = out.union(box)
    return out


def _distributions(order: List[int], min_fill: int):
    """All (left, right) index splits honouring the minimum fill."""
    n = len(order)
    for split_at in range(min_fill, n - min_fill + 1):
        yield order[:split_at], order[split_at:]


def rstar_split(boxes: List[MBR]) -> Tuple[List[int], List[int], float]:
    """R*-tree split of entry MBRs.

    Returns ``(left indices, right indices, overlap)`` where ``overlap``
    is the intersection volume of the two resulting boxes (the quantity
    the X-tree policy thresholds on).
    """
    n = len(boxes)
    if n < 2:
        raise InvalidParameterError("cannot split fewer than 2 entries")
    d = boxes[0].dim
    min_fill = max(1, int(n * RSTAR_MIN_FILL))

    # 1. Choose the split axis: smallest sum of margins over all
    # distributions of entries sorted by lower then by upper value.
    best_axis = 0
    best_margin = math.inf
    axis_orders = {}
    for axis in range(d):
        by_lower = sorted(range(n), key=lambda i: (boxes[i].lo[axis],
                                                   boxes[i].hi[axis]))
        by_upper = sorted(range(n), key=lambda i: (boxes[i].hi[axis],
                                                   boxes[i].lo[axis]))
        margin_sum = 0.0
        for order in (by_lower, by_upper):
            for left, right in _distributions(order, min_fill):
                margin_sum += (_union([boxes[i] for i in left]).margin()
                               + _union([boxes[i] for i in right]).margin())
        axis_orders[axis] = (by_lower, by_upper)
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_axis = axis

    # 2. On that axis, choose the distribution with the least overlap
    # (ties resolved by least combined area).
    best: Optional[Tuple[float, float, List[int], List[int]]] = None
    for order in axis_orders[best_axis]:
        for left, right in _distributions(order, min_fill):
            left_box = _union([boxes[i] for i in left])
            right_box = _union([boxes[i] for i in right])
            overlap = left_box.intersection_area(right_box)
            area = left_box.area() + right_box.area()
            key = (overlap, area)
            if best is None or key < (best[0], best[1]):
                best = (overlap, area, list(left), list(right))
    assert best is not None
    return best[2], best[3], best[0]


class XTreeSplitPolicy:
    """Split policy with X-tree supernodes.

    ``try_split`` returns ``None`` when the best split's overlap ratio
    (overlap volume over combined volume) exceeds ``max_overlap`` — the
    X-tree's signal to keep a supernode instead.
    """

    def __init__(self, max_overlap: float = 0.2):
        if not 0.0 <= max_overlap <= 1.0:
            raise InvalidParameterError("max_overlap must be in [0, 1]")
        self.max_overlap = max_overlap
        #: Number of refused splits (supernodes created), for inspection.
        self.supernodes = 0

    def try_split(self, boxes: List[MBR]) -> Optional[Tuple[List[int],
                                                            List[int]]]:
        left, right, overlap = rstar_split(boxes)
        combined = _union(boxes).area()
        ratio = overlap / combined if combined > 0 else 0.0
        if ratio > self.max_overlap:
            self.supernodes += 1
            return None
        return left, right


def split_quality(boxes: List[MBR],
                  groups: Tuple[List[int], List[int]]) -> dict:
    """Diagnostics for a split: overlap, margin and area of the halves."""
    left_box = _union([boxes[i] for i in groups[0]])
    right_box = _union([boxes[i] for i in groups[1]])
    return {
        "overlap": left_box.intersection_area(right_box),
        "total_margin": left_box.margin() + right_box.margin(),
        "total_area": left_box.area() + right_box.area(),
    }
