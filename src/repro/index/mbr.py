"""Minimum bounding rectangle (MBR) geometry.

The R-tree substrate (and the Table 3 analysis of MBR shapes) needs the
classic MBR toolbox: area, margin, enlargement, intersection tests, plus the
paper-specific quantities — diagonal length, shape ratio (longest edge over
shortest edge, Table 3), and the score interval of an MBR under a weight
interval (the pruning primitive of BBR/MPA, Section 5.2).

All coordinates are non-negative in this library, which makes score
intervals exact: the minimum of ``w . p`` over ``w in [wlo, whi]`` and
``p in [plo, phi]`` is ``wlo . plo`` and the maximum is ``whi . phi``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from ..errors import DimensionMismatchError, InvalidParameterError


@dataclass
class MBR:
    """An axis-aligned box ``[lo, hi]`` (inclusive on both ends)."""

    lo: np.ndarray
    hi: np.ndarray

    def __init__(self, lo: Iterable[float], hi: Iterable[float]):
        lo_arr = np.asarray(lo, dtype=np.float64).reshape(-1)
        hi_arr = np.asarray(hi, dtype=np.float64).reshape(-1)
        if lo_arr.shape != hi_arr.shape:
            raise DimensionMismatchError("MBR lo/hi must share shape")
        if np.any(lo_arr > hi_arr):
            raise InvalidParameterError("MBR requires lo <= hi in every dimension")
        self.lo = lo_arr
        self.hi = hi_arr

    # -- constructors -----------------------------------------------------

    @staticmethod
    def of_points(points: np.ndarray) -> "MBR":
        """Tight MBR of a non-empty ``(m, d)`` point array."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise InvalidParameterError("of_points needs a non-empty (m, d) array")
        return MBR(pts.min(axis=0), pts.max(axis=0))

    @staticmethod
    def of_point(point: np.ndarray) -> "MBR":
        """Degenerate MBR covering a single point."""
        arr = np.asarray(point, dtype=np.float64).reshape(-1)
        return MBR(arr, arr.copy())

    # -- basic geometry ----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the box."""
        return self.lo.shape[0]

    @property
    def extents(self) -> np.ndarray:
        """Edge lengths per dimension."""
        return self.hi - self.lo

    def area(self) -> float:
        """Volume (product of edge lengths)."""
        return float(np.prod(self.extents))

    def log_area(self) -> float:
        """``log10`` of the volume, safe for the huge volumes of Table 3."""
        ext = self.extents
        if np.any(ext <= 0):
            return -math.inf
        return float(np.log10(ext).sum())

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree margin criterion)."""
        return float(self.extents.sum())

    def diagonal(self) -> float:
        """Euclidean diagonal length (Table 3 row 'diagonal length')."""
        return float(np.linalg.norm(self.extents))

    def shape_ratio(self) -> float:
        """Longest edge divided by shortest edge (Table 3 row 'Shape')."""
        ext = self.extents
        shortest = float(ext.min())
        longest = float(ext.max())
        if shortest <= 0:
            return math.inf if longest > 0 else 1.0
        return longest / shortest

    def center(self) -> np.ndarray:
        """Box centre point."""
        return (self.lo + self.hi) / 2.0

    # -- relations ----------------------------------------------------------

    def contains_point(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside the closed box."""
        arr = np.asarray(point, dtype=np.float64).reshape(-1)
        return bool(np.all(arr >= self.lo) and np.all(arr <= self.hi))

    def contains(self, other: "MBR") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "MBR") -> bool:
        """True when the two closed boxes overlap."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def intersection_area(self, other: "MBR") -> float:
        """Volume of the overlap region (0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        ext = hi - lo
        if np.any(ext < 0):
            return 0.0
        return float(np.prod(ext))

    # -- mutation-style helpers (return new boxes) ---------------------------

    def union(self, other: "MBR") -> "MBR":
        """Smallest box covering both."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def extended(self, point: np.ndarray) -> "MBR":
        """Smallest box covering this box and ``point``."""
        arr = np.asarray(point, dtype=np.float64).reshape(-1)
        return MBR(np.minimum(self.lo, arr), np.maximum(self.hi, arr))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to absorb ``other`` (R-tree insert heuristic)."""
        return self.union(other).area() - self.area()

    # -- scoring (the RRQ pruning primitive) ---------------------------------

    def score_interval(self, w_lo: np.ndarray, w_hi: np.ndarray) -> Tuple[float, float]:
        """Exact ``[min, max]`` of ``w . p`` for ``w in [w_lo, w_hi]``, ``p`` here.

        Valid because all coordinates are non-negative, so the inner product
        is monotone in every coordinate of both arguments.
        """
        return float(np.dot(w_lo, self.lo)), float(np.dot(w_hi, self.hi))

    def score_interval_fixed_w(self, w: np.ndarray) -> Tuple[float, float]:
        """``[min, max]`` of ``w . p`` over ``p`` in this box for one weight ``w``."""
        return float(np.dot(w, self.lo)), float(np.dot(w, self.hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo)
                    and np.array_equal(self.hi, other.hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MBR(lo={self.lo.tolist()}, hi={self.hi.tolist()})"
