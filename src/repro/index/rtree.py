"""An in-memory R-tree over point data.

This is the substrate for the paper's tree-based baselines: BBR indexes both
``P`` and ``W`` in R-trees [17], MPA indexes ``P`` [22], and Table 3 studies
the geometry of the accessed MBRs.  Two construction paths are provided:

* **STR bulk loading** (Sort-Tile-Recursive) — the default for experiments;
  builds a packed tree bottom-up in ``O(m log m)``.
* **Dynamic insertion** with the classic quadratic split — used by tests and
  by the Table 3 study, which is sensitive to the overlap produced by
  incremental construction.

Leaves store *indices into the point array* rather than coordinates, so the
algorithms can recover original vectors (and the tree stays small).
Every node caches ``count`` (points in its subtree), which the RRQ pruning
rules need to add whole subtrees to a rank in O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import IndexCorruptionError, InvalidParameterError
from ..stats.counters import NULL_COUNTER, OpCounter
from .mbr import MBR

#: Leaf/internal fanout used by the paper's Table 3 ("each MBR has 100 entries").
DEFAULT_CAPACITY = 100

#: Minimum fill fraction for quadratic split (standard R-tree 40%).
MIN_FILL_FRACTION = 0.4


@dataclass
class Node:
    """One R-tree node.

    A leaf keeps point indices in ``entries``; an internal node keeps child
    nodes in ``children``.  ``mbr`` always tightly covers the subtree and
    ``count`` is the number of points below.
    """

    mbr: MBR
    is_leaf: bool
    entries: List[int] = field(default_factory=list)
    children: List["Node"] = field(default_factory=list)
    count: int = 0

    def recompute(self, points: np.ndarray) -> None:
        """Rebuild ``mbr`` and ``count`` from the node's direct contents."""
        if self.is_leaf:
            self.mbr = MBR.of_points(points[self.entries])
            self.count = len(self.entries)
        else:
            mbr = self.children[0].mbr
            count = 0
            for child in self.children:
                mbr = mbr.union(child.mbr)
                count += child.count
            self.mbr = mbr
            self.count = count


class RTree:
    """R-tree over a fixed ``(m, d)`` point array.

    Parameters
    ----------
    points:
        The point array to index.  The tree stores indices into this array.
    capacity:
        Maximum entries per node (leaf and internal alike).
    bulk:
        Build with STR bulk loading (default) or one-at-a-time insertion.
    """

    def __init__(self, points: np.ndarray, capacity: int = DEFAULT_CAPACITY,
                 bulk: bool = True, split: str = "quadratic",
                 xtree_max_overlap: float = None):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise InvalidParameterError("RTree needs a non-empty (m, d) array")
        if capacity < 2:
            raise InvalidParameterError("capacity must be at least 2")
        if split not in ("quadratic", "rstar"):
            raise InvalidParameterError("split must be 'quadratic' or 'rstar'")
        self.points = pts
        self.capacity = capacity
        self.min_fill = max(1, int(capacity * MIN_FILL_FRACTION))
        self.split = split
        #: X-tree mode: refuse splits whose overlap ratio exceeds this,
        #: keeping an oversized supernode instead (None disables).
        self.xtree_policy = None
        if xtree_max_overlap is not None:
            from .rstar import XTreeSplitPolicy

            self.xtree_policy = XTreeSplitPolicy(xtree_max_overlap)
        if bulk:
            self.root = self._bulk_load(np.arange(pts.shape[0]))
        else:
            self.root = Node(MBR.of_point(pts[0]), is_leaf=True,
                             entries=[0], count=1)
            for idx in range(1, pts.shape[0]):
                self.insert(idx)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _bulk_load(self, indices: np.ndarray) -> Node:
        """Sort-Tile-Recursive packing of ``indices`` into a balanced tree."""
        leaves = self._str_pack_leaves(indices)
        level: List[Node] = leaves
        while len(level) > 1:
            level = self._str_pack_internal(level)
        return level[0]

    def _str_pack_leaves(self, indices: np.ndarray) -> List[Node]:
        m = len(indices)
        cap = self.capacity
        num_leaves = math.ceil(m / cap)
        order = self._str_order(self.points[indices], cap)
        sorted_idx = indices[order]
        leaves = []
        for start in range(0, m, cap):
            chunk = sorted_idx[start:start + cap].tolist()
            node = Node(MBR.of_points(self.points[chunk]), is_leaf=True,
                        entries=chunk, count=len(chunk))
            leaves.append(node)
        if len(leaves) != num_leaves:  # defensive; cannot happen
            raise IndexCorruptionError("STR leaf packing miscounted")
        return leaves

    def _str_pack_internal(self, nodes: List[Node]) -> List[Node]:
        centers = np.array([node.mbr.center() for node in nodes])
        order = self._str_order(centers, self.capacity)
        packed: List[Node] = []
        cap = self.capacity
        for start in range(0, len(nodes), cap):
            group = [nodes[order[i]] for i in range(start, min(start + cap, len(nodes)))]
            parent = Node(group[0].mbr, is_leaf=False, children=group)
            parent.recompute(self.points)
            packed.append(parent)
        return packed

    @staticmethod
    def _str_order(coords: np.ndarray, cap: int) -> np.ndarray:
        """Sort-Tile-Recursive ordering of ``coords`` for groups of ``cap``.

        The classic STR recursion: with ``L = ceil(m / cap)`` tiles needed
        and ``r`` dimensions left, cut the current slab into
        ``ceil(L ** (1/r))`` sub-slabs along the current dimension.  Slab
        sizes are rounded up to a multiple of ``cap`` so that the final
        sequential chunking never produces a group straddling two slabs
        (which would create tall-and-wide, heavily overlapping boxes).
        """
        m, d = coords.shape

        def tile(idx: np.ndarray, dim: int) -> np.ndarray:
            order = idx[np.argsort(coords[idx, dim], kind="stable")]
            if dim >= d - 1 or len(idx) <= cap:
                return order
            remaining = d - dim
            tiles_needed = math.ceil(len(idx) / cap)
            slabs = max(1, math.ceil(tiles_needed ** (1.0 / remaining)))
            slab_size = math.ceil(len(idx) / slabs / cap) * cap
            pieces = [
                tile(order[s:s + slab_size], dim + 1)
                for s in range(0, len(order), slab_size)
            ]
            return np.concatenate(pieces)

        return tile(np.arange(m), 0)

    # ------------------------------------------------------------------
    # dynamic insertion (quadratic split)
    # ------------------------------------------------------------------

    def insert(self, idx: int) -> None:
        """Insert point ``idx`` (already present in ``self.points``)."""
        split = self._insert_into(self.root, idx)
        if split is not None:
            left, right = split
            self.root = Node(left.mbr.union(right.mbr), is_leaf=False,
                             children=[left, right])
            self.root.recompute(self.points)

    def _insert_into(self, node: Node, idx: int) -> Optional[Tuple[Node, Node]]:
        point = self.points[idx]
        node.mbr = node.mbr.extended(point)
        node.count += 1
        if node.is_leaf:
            node.entries.append(idx)
            if len(node.entries) > self.capacity:
                return self._split_leaf(node)
            return None
        child = self._choose_subtree(node, point)
        split = self._insert_into(child, idx)
        if split is not None:
            left, right = split
            node.children.remove(child)
            node.children.extend([left, right])
            if len(node.children) > self.capacity:
                return self._split_internal(node)
            node.recompute(self.points)
        return None

    def _choose_subtree(self, node: Node, point: np.ndarray) -> Node:
        """Least-enlargement child, ties broken by smaller area."""
        target = MBR.of_point(point)
        best = None
        best_key = None
        for child in node.children:
            key = (child.mbr.enlargement(target), child.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    def _choose_groups(self, boxes: List[MBR]):
        """Pick the split distribution per the configured policy.

        Returns ``None`` when the X-tree policy vetoes the split (the node
        becomes a supernode and is allowed to exceed ``capacity``).
        """
        if self.xtree_policy is not None:
            return self.xtree_policy.try_split(boxes)
        if self.split == "rstar":
            from .rstar import rstar_split

            left, right, _ = rstar_split(boxes)
            return left, right
        return self._quadratic_split(boxes)

    def _split_leaf(self, node: Node) -> Optional[Tuple[Node, Node]]:
        groups = self._choose_groups(
            [MBR.of_point(self.points[i]) for i in node.entries]
        )
        if groups is None:
            return None  # supernode: stays oversized
        left_entries = [node.entries[i] for i in groups[0]]
        right_entries = [node.entries[i] for i in groups[1]]
        left = Node(MBR.of_points(self.points[left_entries]), is_leaf=True,
                    entries=left_entries, count=len(left_entries))
        right = Node(MBR.of_points(self.points[right_entries]), is_leaf=True,
                     entries=right_entries, count=len(right_entries))
        return left, right

    def _split_internal(self, node: Node) -> Optional[Tuple[Node, Node]]:
        groups = self._choose_groups([child.mbr for child in node.children])
        if groups is None:
            return None  # supernode
        left_children = [node.children[i] for i in groups[0]]
        right_children = [node.children[i] for i in groups[1]]
        left = Node(left_children[0].mbr, is_leaf=False, children=left_children)
        right = Node(right_children[0].mbr, is_leaf=False, children=right_children)
        left.recompute(self.points)
        right.recompute(self.points)
        return left, right

    def _quadratic_split(self, boxes: List[MBR]) -> Tuple[List[int], List[int]]:
        """Guttman's quadratic split over entry MBRs; returns index groups."""
        n = len(boxes)
        # Pick seeds: the pair wasting the most area if grouped.
        worst = (-1.0, 0, 1)
        for i in range(n):
            for j in range(i + 1, n):
                waste = (boxes[i].union(boxes[j]).area()
                         - boxes[i].area() - boxes[j].area())
                if waste > worst[0]:
                    worst = (waste, i, j)
        seed_a, seed_b = worst[1], worst[2]
        group_a, group_b = [seed_a], [seed_b]
        mbr_a, mbr_b = boxes[seed_a], boxes[seed_b]
        rest = [i for i in range(n) if i not in (seed_a, seed_b)]
        while rest:
            # Force assignment if one group must take everything left.
            if len(group_a) + len(rest) <= self.min_fill:
                for i in rest:
                    group_a.append(i)
                    mbr_a = mbr_a.union(boxes[i])
                break
            if len(group_b) + len(rest) <= self.min_fill:
                for i in rest:
                    group_b.append(i)
                    mbr_b = mbr_b.union(boxes[i])
                break
            # Pick the entry with the strongest preference.
            best = None
            best_key = None
            for i in rest:
                inc_a = mbr_a.enlargement(boxes[i])
                inc_b = mbr_b.enlargement(boxes[i])
                key = abs(inc_a - inc_b)
                if best_key is None or key > best_key:
                    best, best_key = i, key
            assert best is not None
            rest.remove(best)
            inc_a = mbr_a.enlargement(boxes[best])
            inc_b = mbr_b.enlargement(boxes[best])
            if inc_a < inc_b or (inc_a == inc_b and len(group_a) <= len(group_b)):
                group_a.append(best)
                mbr_a = mbr_a.union(boxes[best])
            else:
                group_b.append(best)
                mbr_b = mbr_b.union(boxes[best])
        return group_a, group_b

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(self, box: MBR, counter: OpCounter = NULL_COUNTER) -> List[int]:
        """Indices of all points inside the closed box ``box``."""
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            if not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                for idx in node.entries:
                    counter.points_accessed += 1
                    if box.contains_point(self.points[idx]):
                        result.append(idx)
            else:
                stack.extend(node.children)
        return result

    def all_point_indices(self) -> List[int]:
        """Every indexed point index (used by invariant checks)."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(node.children)
        return out

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def leaves(self) -> List[Node]:
        """All leaf nodes."""
        return [node for node in self.iter_nodes() if node.is_leaf]

    @property
    def height(self) -> int:
        """Tree height (a lone leaf has height 1)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self.root.count

    # ------------------------------------------------------------------
    # invariants & statistics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants, raising :class:`IndexCorruptionError`.

        Checks: MBR tightness/containment, subtree counts, fanout bounds,
        uniform leaf depth, and that every point index appears exactly once.
        """
        seen: List[int] = []

        def visit(node: Node, depth: int) -> Tuple[int, int]:
            if node.is_leaf:
                if not node.entries:
                    raise IndexCorruptionError("empty leaf")
                if (len(node.entries) > self.capacity
                        and self.xtree_policy is None):
                    raise IndexCorruptionError("leaf over capacity")
                tight = MBR.of_points(self.points[node.entries])
                if not node.mbr.contains(tight):
                    raise IndexCorruptionError("leaf MBR does not cover entries")
                if node.count != len(node.entries):
                    raise IndexCorruptionError("leaf count mismatch")
                seen.extend(node.entries)
                return depth, len(node.entries)
            if not node.children:
                raise IndexCorruptionError("empty internal node")
            if (len(node.children) > self.capacity
                    and self.xtree_policy is None):
                raise IndexCorruptionError("internal node over capacity")
            depths = set()
            total = 0
            for child in node.children:
                if not node.mbr.contains(child.mbr):
                    raise IndexCorruptionError("child MBR escapes parent")
                child_depth, child_count = visit(child, depth + 1)
                depths.add(child_depth)
                total += child_count
            if len(depths) != 1:
                raise IndexCorruptionError("leaves at unequal depth")
            if node.count != total:
                raise IndexCorruptionError("internal count mismatch")
            return depths.pop(), total

        visit(self.root, 0)
        if sorted(seen) != list(range(self.points.shape[0])):
            raise IndexCorruptionError("point indices not partitioned by leaves")

    def mbr_statistics(self, query_fraction: float = 0.01,
                       num_queries: int = 50,
                       seed: Optional[int] = None) -> dict:
        """Reproduce the Table 3 observation row for this tree.

        Returns the number of leaf MBRs, their average diagonal, average
        shape ratio, average volume (as log10), and the fraction of leaf
        MBRs overlapping a random range query covering ``query_fraction`` of
        the data space.
        """
        leaf_nodes = self.leaves()
        diagonals = [leaf.mbr.diagonal() for leaf in leaf_nodes]
        shapes = [leaf.mbr.shape_ratio() for leaf in leaf_nodes]
        log_volumes = [leaf.mbr.log_area() for leaf in leaf_nodes]
        finite_logs = [v for v in log_volumes if math.isfinite(v)]

        rng = np.random.default_rng(seed)
        d = self.points.shape[1]
        space_lo = self.points.min(axis=0)
        space_hi = self.points.max(axis=0)
        side = (space_hi - space_lo) * (query_fraction ** (1.0 / d))
        overlap_fractions = []
        for _ in range(num_queries):
            origin = space_lo + rng.random(d) * np.maximum(
                space_hi - space_lo - side, 0.0
            )
            box = MBR(origin, origin + side)
            hits = sum(1 for leaf in leaf_nodes if leaf.mbr.intersects(box))
            overlap_fractions.append(hits / len(leaf_nodes))
        return {
            "num_mbrs": len(leaf_nodes),
            "avg_diagonal": float(np.mean(diagonals)),
            "avg_shape_ratio": float(np.mean(shapes)),
            "avg_log10_volume": float(np.mean(finite_logs)) if finite_logs else -math.inf,
            "overlap_fraction": float(np.mean(overlap_fractions)),
        }
