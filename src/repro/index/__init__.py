"""Spatial substrates: MBR geometry, R-tree (with R*/X-tree split
policies), weight histogram."""

from .histogram import Bucket, WeightHistogram
from .mbr import MBR
from .rstar import XTreeSplitPolicy, rstar_split, split_quality
from .rtree import Node, RTree

__all__ = [
    "MBR", "RTree", "Node", "WeightHistogram", "Bucket",
    "rstar_split", "XTreeSplitPolicy", "split_quality",
]
