"""Common interface for reverse-rank-query algorithms.

Every algorithm (naive, SIM, BBR, MPA, GIR, and the vectorized engines)
subclasses :class:`RRQAlgorithm`: construction performs whatever indexing
the method needs (R-trees, histograms, the Grid-index), and the two query
methods answer RTK and RKR for arbitrary query points against the fixed
``(P, W)`` pair.

Splitting build from query matches the paper's experimental protocol — all
indexes are built (and "pre-read into memory") before timing starts, and
reported numbers are query CPU time only.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from ..data.datasets import (
    ProductSet,
    WeightSet,
    check_compatible,
    check_query_point,
)
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter


class RRQAlgorithm(abc.ABC):
    """Base class wiring validation and counters around the two query kinds."""

    #: Short name used in benchmark tables ("GIR", "BBR", ...).
    name: str = "?"

    #: Whether the algorithm supports each query type.  BBR is RTK-only and
    #: MPA is RKR-only in the paper; attempting the other raises.
    supports_rtk: bool = True
    supports_rkr: bool = True

    def __init__(self, products: ProductSet, weights: WeightSet):
        check_compatible(products, weights)
        self.products = products
        self.weights = weights
        #: Raw arrays, the things hot loops touch.
        self.P = products.values
        self.W = weights.values

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Data dimensionality ``d``."""
        return self.P.shape[1]

    def _check_query(self, q: Union[np.ndarray, list], k: int) -> np.ndarray:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        return check_query_point(q, self.dim)

    # ------------------------------------------------------------------

    def reverse_topk(self, q: Union[np.ndarray, list], k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        """Answer the reverse top-k query (Definition 2)."""
        if not self.supports_rtk:
            raise InvalidParameterError(
                f"{self.name} does not support reverse top-k queries"
            )
        q_arr = self._check_query(q, k)
        if counter is None:
            counter = OpCounter()
        return self._reverse_topk(q_arr, k, counter)

    def reverse_kranks(self, q: Union[np.ndarray, list], k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        """Answer the reverse k-ranks query (Definition 3)."""
        if not self.supports_rkr:
            raise InvalidParameterError(
                f"{self.name} does not support reverse k-ranks queries"
            )
        q_arr = self._check_query(q, k)
        if counter is None:
            counter = OpCounter()
        return self._reverse_kranks(q_arr, k, counter)

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        """Algorithm-specific RTK implementation (inputs already validated)."""

    @abc.abstractmethod
    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        """Algorithm-specific RKR implementation (inputs already validated)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(|P|={self.P.shape[0]}, "
                f"|W|={self.W.shape[0]}, d={self.dim})")


def duplicate_mask(P: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Boolean mask of rows of ``P`` bit-identical to ``q``.

    A duplicate of the query scores *exactly* ``f_w(q)`` for every weight,
    so under strict-rank semantics it never counts toward ``rank(w, q)``.
    Algorithms must exclude these rows from scoring rather than compare
    scores: evaluating the same mathematical value through different BLAS
    kernels (dgemm vs dgemv vs dot) can round differently and flip the
    strict comparison, which would make results non-deterministic across
    implementations.  The paper draws queries from ``P`` itself, so the
    case is the norm, not the exception.
    """
    return np.all(P == q, axis=1)


def strictly_dominates(p: np.ndarray, q: np.ndarray) -> bool:
    """True when ``p[i] < q[i]`` in every dimension.

    A strictly dominating product out-ranks ``q`` under *every* weight
    vector on the simplex (at least one component of ``w`` is positive),
    which is what the Domin buffer of Algorithms 1-3 exploits.
    """
    return bool(np.all(p < q))
