"""RRQ algorithms: oracle, scan and tree baselines."""

from .base import RRQAlgorithm, strictly_dominates
from .bbr import BranchBoundRTK
from .mpa import MarkedPruningRKR
from .naive import NaiveRRQ
from .rta import ThresholdRTK
from .sim import SimpleScan

__all__ = [
    "RRQAlgorithm", "strictly_dominates", "NaiveRRQ", "SimpleScan",
    "BranchBoundRTK", "MarkedPruningRKR", "ThresholdRTK",
]
