"""BBR — branch-and-bound reverse top-k (Vlachou et al., SIGMOD 2013).

The state-of-the-art tree method for RTK that the paper compares against.
Both data sets are indexed in R-trees.  Processing a query ``(q, k)``
traverses the W-tree; for each W-entry (an MBR ``[w_lo, w_hi]`` of weight
vectors) it bounds the rank of ``q`` simultaneously for *all* weights in
the entry by walking the P-tree:

* a P-subtree whose maximal score ``<w_hi, p_hi>`` is below ``q``'s minimal
  score ``<w_lo, q>`` beats ``q`` under every weight in the entry — its
  whole count adds to the *guaranteed* rank (lower bound);
* a P-subtree whose minimal score ``<w_lo, p_lo>`` is at least ``q``'s
  maximal score ``<w_hi, q>`` can never beat ``q`` — pruned;
* anything else contributes to the *possible* rank (upper bound) and is
  expanded.

If the guaranteed rank reaches ``k`` the whole W-entry is discarded; if the
possible rank stays below ``k`` the whole W-entry qualifies; otherwise the
entry is expanded, down to exact per-weight verification at the leaves.

Every corner inner product costs the same ``d`` multiplications as a real
score, so it increments the ``pairwise`` counter — this is why Figure 11
shows the tree methods performing *more* pairwise computations than a scan
once the MBRs stop being selective.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from ..core.ties import count_strictly_better, tie_tolerance
from ..index.rtree import Node, RTree
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter
from .base import RRQAlgorithm, duplicate_mask

#: Fanout used for both trees; smaller than the Table 3 default because BBR
#: benefits from finer-grained weight groups.
DEFAULT_CAPACITY = 32


class BranchBoundRTK(RRQAlgorithm):
    """Branch-and-bound reverse top-k over two R-trees."""

    name = "BBR"
    supports_rkr = False

    def __init__(self, products: ProductSet, weights: WeightSet,
                 capacity: int = DEFAULT_CAPACITY):
        super().__init__(products, weights)
        self.p_tree = RTree(self.P, capacity=capacity)
        self.w_tree = RTree(self.W, capacity=capacity)

    # ------------------------------------------------------------------

    def _rank_bounds(self, w_lo: np.ndarray, w_hi: np.ndarray,
                     q: np.ndarray, k: int, dup: np.ndarray,
                     counter: OpCounter) -> Tuple[int, int]:
        """(guaranteed, possible) rank of ``q`` for all weights in the entry.

        Stops early (returning ``(k, k)``) once the guaranteed rank reaches
        ``k`` — the caller prunes the entry either way.
        """
        q_lo = float(np.dot(w_lo, q))
        q_hi = float(np.dot(w_hi, q))
        # Near-tie band: bound-based decisions must clear the query's
        # score interval by this margin (see repro.core.ties).
        tol = tie_tolerance(q_hi)
        counter.pairwise += 2
        guaranteed = 0
        possible = 0
        stack: List[Node] = [self.p_tree.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            counter.pairwise += 2
            node_hi = float(np.dot(w_hi, node.mbr.hi))
            node_lo = float(np.dot(w_lo, node.mbr.lo))
            if node_hi < q_lo - tol:
                guaranteed += node.count
                possible += node.count
                counter.filtered_case1 += node.count
                if guaranteed >= k:
                    counter.early_terminations += 1
                    return k, max(possible, k)
                continue
            if node_lo > q_hi + tol:
                counter.filtered_case2 += node.count
                continue
            if node.is_leaf:
                entries = np.asarray(node.entries)
                entries = entries[~dup[entries]]
                block = self.P[entries]
                counter.pairwise += 2 * len(entries)
                counter.points_accessed += len(entries)
                upper = block @ w_hi
                lower = block @ w_lo
                sure = int(np.count_nonzero(upper < q_lo - tol))
                maybe = int(np.count_nonzero(lower < q_hi + tol))
                guaranteed += sure
                possible += maybe
                counter.filtered_case1 += sure
                counter.refined += maybe - sure
                if guaranteed >= k:
                    counter.early_terminations += 1
                    return k, max(possible, k)
            else:
                stack.extend(node.children)
        return guaranteed, possible

    def _exact_rank(self, w: np.ndarray, q: np.ndarray, limit: int,
                    dup: np.ndarray, counter: OpCounter) -> int:
        """Exact ``rank(w, q)`` using the P-tree, aborting at ``limit``."""
        fq = float(np.dot(w, q))
        tol = tie_tolerance(fq)
        counter.pairwise += 1
        rnk = 0
        stack: List[Node] = [self.p_tree.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            counter.pairwise += 2
            node_lo = float(np.dot(w, node.mbr.lo))
            if node_lo > fq + tol:
                counter.filtered_case2 += node.count
                continue
            node_hi = float(np.dot(w, node.mbr.hi))
            if node_hi < fq - tol:
                rnk += node.count
                counter.filtered_case1 += node.count
            elif node.is_leaf:
                entries = np.asarray(node.entries)
                entries = entries[~dup[entries]]
                block = self.P[entries]
                counter.pairwise += len(entries)
                counter.points_accessed += len(entries)
                rnk += count_strictly_better(block @ w, block, w, q, fq, tol)
                counter.refined += len(entries)
            else:
                stack.extend(node.children)
            if rnk >= limit:
                counter.early_terminations += 1
                return limit
        return rnk

    # ------------------------------------------------------------------

    def _collect_weights(self, node: Node, out: List[int]) -> None:
        """Append every weight index under ``node`` to ``out``."""
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(current.children)

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        result: List[int] = []
        dup = duplicate_mask(self.P, q)
        stack: List[Node] = [self.w_tree.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            guaranteed, possible = self._rank_bounds(
                node.mbr.lo, node.mbr.hi, q, k, dup, counter
            )
            if guaranteed >= k:
                continue  # no weight in this entry can rank q in its top-k
            if possible < k:
                self._collect_weights(node, result)  # all of them qualify
                continue
            if node.is_leaf:
                for j in node.entries:
                    counter.approx_accessed += 1
                    rnk = self._exact_rank(self.W[j], q, k, dup, counter)
                    if rnk < k:
                        result.append(j)
            else:
                stack.extend(node.children)
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        raise NotImplementedError("BBR answers reverse top-k only")
