"""SIM — the simple scan baseline (paper Section 6.1).

For each weight vector ``w``, SIM scans ``P`` and computes real scores,
counting how many products beat the query.  Two optimizations from the
paper are kept:

* a **Domin buffer** shared across the per-``w`` scans: any product found to
  strictly dominate ``q`` out-ranks it under every weight, so later scans
  start with ``rnk = |Domin|`` and skip those products entirely;
* **early termination**: the scan for one ``w`` stops as soon as the rank
  can no longer satisfy the query condition (``rnk >= k`` for RTK,
  ``rnk >= current k-th best`` for RKR).

The scan is processed in chunks (numpy inner products per chunk) so Python
overhead does not drown the comparison; ``chunk=1`` degenerates to the
textbook per-pair loop and is used by tests that need pair-exact early
termination.  Operation counts are exact with respect to the pairs actually
evaluated.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from ..core.ties import count_strictly_better, tie_tolerance
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .base import RRQAlgorithm, duplicate_mask

#: Default number of products scored per numpy call.
DEFAULT_CHUNK = 128

#: Sentinel rank meaning "scan aborted, w cannot qualify".
ABORTED = -1


class SimpleScan(RRQAlgorithm):
    """Linear scan with Domin buffer and early termination."""

    name = "SIM"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 chunk: int = DEFAULT_CHUNK):
        super().__init__(products, weights)
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk

    # ------------------------------------------------------------------

    def _scan_rank(self, w: np.ndarray, q: np.ndarray, limit: float,
                   domin: np.ndarray, counter: OpCounter,
                   skip: np.ndarray = None) -> int:
        """Rank of ``q`` under ``w``, aborting once ``rnk >= limit``.

        ``domin`` is the boolean Domin mask over ``P``; it may gain new
        entries during the scan.  ``skip`` marks rows excluded from rank
        counting (exact duplicates of ``q``).  Returns :data:`ABORTED`
        when the scan stopped early.
        """
        P = self.P
        if skip is None:
            skip = duplicate_mask(P, q)
        fq = float(np.dot(w, q))
        tol = tie_tolerance(fq)
        counter.pairwise += 1
        rnk = int(domin.sum())
        counter.dominated_skips += rnk
        if rnk >= limit:
            counter.early_terminations += 1
            return ABORTED
        m = P.shape[0]
        for start in range(0, m, self.chunk):
            stop = min(start + self.chunk, m)
            live = ~(domin[start:stop] | skip[start:stop])
            if not live.any():
                continue
            block = P[start:stop][live]
            s = block @ w
            n_eval = block.shape[0]
            counter.pairwise += n_eval
            counter.points_accessed += n_eval
            n_better = count_strictly_better(s, block, w, q, fq, tol)
            if n_better:
                rnk += n_better
                # Lazily discover dominators among the better products
                # (Algorithm 1, lines 7-8 do the same inside Case 1).
                # Dominance is checked on raw coordinates, so the float
                # score mask is safe to use as a pre-filter.
                better = s < fq + tol
                dom_rows = np.all(block[better] < q, axis=1)
                if dom_rows.any():
                    local = np.flatnonzero(live)[np.flatnonzero(better)[dom_rows]]
                    domin[start + local] = True
            if rnk >= limit:
                counter.early_terminations += 1
                return ABORTED
        return rnk

    # ------------------------------------------------------------------

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        domin = np.zeros(self.P.shape[0], dtype=bool)
        skip = duplicate_mask(self.P, q)
        result: List[int] = []
        for j in range(self.W.shape[0]):
            rnk = self._scan_rank(self.W[j], q, k, domin, counter, skip)
            if rnk != ABORTED:
                result.append(j)
            if int(domin.sum()) >= k:
                # k dominators out-rank q under every weight: the true
                # answer is empty (Algorithm 2, lines 7-8).
                return RTKResult(weights=frozenset(), k=k, counter=counter)
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        import heapq

        domin = np.zeros(self.P.shape[0], dtype=bool)
        skip = duplicate_mask(self.P, q)
        # Max-heap (negated ranks) of the current k best (rank, index) pairs.
        heap: List[Tuple[int, int]] = []
        for j in range(self.W.shape[0]):
            if len(heap) < k:
                limit: float = float("inf")
            else:
                # Ties keep the earlier index, so a rank equal to the
                # current worst can never enter the heap: abort at it.
                limit = -heap[0][0]
            rnk = self._scan_rank(self.W[j], q, limit, domin, counter, skip)
            if rnk == ABORTED:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (-rnk, -j))
            elif rnk < -heap[0][0]:
                heapq.heapreplace(heap, (-rnk, -j))
        pairs = [(-neg_rank, -neg_idx) for neg_rank, neg_idx in heap]
        return make_rkr_result(pairs, k, counter)
