"""The exact brute-force oracle.

Computes every ``rank(w, q)`` by full score evaluation — ``O(|P| * |W|)``
pairwise computations, no filtering, no early termination.  This is the
correctness reference all other algorithms are tested against, and the
"100M computations for 10K x 10K" cost the paper's introduction motivates
away from.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.ties import count_strictly_better_matrix
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .base import RRQAlgorithm, duplicate_mask


class NaiveRRQ(RRQAlgorithm):
    """Exhaustive reference implementation (vectorized via BLAS).

    The counter still reports the nominal pairwise-computation count
    (``|P| * |W|`` plus one ``f_w(q)`` per weight) so op-count comparisons
    against the scan algorithms are meaningful.
    """

    name = "NAIVE"

    def _all_ranks(self, q: np.ndarray, counter: OpCounter) -> np.ndarray:
        # Rows identical to q tie with it exactly and must never count
        # (see base.duplicate_mask for the numerical rationale).
        P = self.P[~duplicate_mask(self.P, q)]
        m_p, m_w = P.shape[0], self.W.shape[0]
        counter.pairwise += m_p * m_w + m_w
        counter.points_accessed += m_p * m_w
        fq = self.W @ q
        ranks = np.empty(m_w, dtype=np.int64)
        chunk = max(1, min(512, m_w))
        for start in range(0, m_w, chunk):
            block = self.W[start:start + chunk]
            s = P @ block.T
            ranks[start:start + chunk] = count_strictly_better_matrix(
                s, P, block, q, fq[start:start + chunk]
            )
        return ranks

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        ranks = self._all_ranks(q, counter)
        qualifying = frozenset(int(i) for i in np.nonzero(ranks < k)[0])
        return RTKResult(weights=qualifying, k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        ranks = self._all_ranks(q, counter)
        pairs: List[Tuple[int, int]] = [
            (int(rank), int(idx)) for idx, rank in enumerate(ranks)
        ]
        return make_rkr_result(pairs, k, counter)
