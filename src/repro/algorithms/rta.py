"""RTA — the reverse top-k threshold algorithm (Vlachou et al., ICDE 2010).

The original bichromatic reverse top-k method [13] and BBR's predecessor;
included for completeness of the paper's related-work lineage (Section 2).
For each weight vector the k-th best product score is computed with
Fagin's Threshold Algorithm over per-dimension sorted lists
(:mod:`repro.queries.ta`); ``w`` belongs to the answer exactly when
``f_w(q)`` does not exceed that k-th score:

    rank(w, q) < k   <=>   f_w(q) <= kth_score(w)

(the k-th smallest score bounds how many products can beat ``q``).  Two
RTA optimizations from [13] are kept:

* the per-dimension sorted lists are built once and reused by every query;
* consecutive weight vectors are processed in a locality-preserving order
  (sorted by their first component) so TA's early-stopping depth is warm
  across similar weights.

Near-ties between ``f_w(q)`` and the k-th score are re-decided by an
exact strict-rank count (:mod:`repro.core.ties`), keeping RTA's answers
bit-identical to every other algorithm in the library.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.ties import count_strictly_better, tie_tolerance
from ..data.datasets import ProductSet, WeightSet
from ..queries.ta import SortedAccessIndex, ta_kth_score
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter
from .base import RRQAlgorithm, duplicate_mask


class ThresholdRTK(RRQAlgorithm):
    """Reverse top-k via per-weight Threshold-Algorithm top-k evaluation."""

    name = "RTA"
    supports_rkr = False

    def __init__(self, products: ProductSet, weights: WeightSet):
        super().__init__(products, weights)
        self.sorted_index = SortedAccessIndex(self.P)
        # Locality-preserving processing order (see module docstring).
        self._order = np.argsort(self.W[:, 0], kind="stable")

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        dup = duplicate_mask(self.P, q)
        result: List[int] = []
        for j in self._order:
            w = self.W[j]
            fq = float(np.dot(w, q))
            counter.pairwise += 1
            kth = ta_kth_score(self.sorted_index, w, k, counter)
            tol = tie_tolerance(fq)
            if abs(fq - kth) <= tol:
                # Boundary case: decide by the exact strict rank.
                live = ~dup
                scores = self.P[live] @ w
                counter.pairwise += int(live.sum())
                rank = count_strictly_better(
                    scores, self.P[live], w, q, fq, tol
                )
                qualifies = rank < k
            else:
                qualifies = fq < kth
            if qualifies:
                result.append(int(j))
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        raise NotImplementedError("RTA answers reverse top-k only")
