"""MPA — the marked pruning approach for reverse k-ranks (Zhang et al., 2014).

The tree baseline for RKR queries.  MPA groups the weight vectors into a
``c``-per-dimension equi-width histogram (:class:`WeightHistogram`) and
indexes the products in an R-tree.  Query processing:

1. For every occupied bucket, compute an optimistic lower bound on the rank
   any member weight can give ``q`` — products whose maximal score over the
   bucket beats ``q``'s minimal score count toward every member's rank.
   (Node-level bounds only; leaves are not opened in this phase.)
2. Visit buckets in ascending lower-bound order.  Once the k-best heap is
   full and the next bucket's bound is no better than the current k-th
   rank, all remaining buckets are pruned ("marked").
3. Surviving buckets are refined per weight with an exact, early-aborting
   rank computation against the P-tree.

Section 5.1 explains why this collapses in high dimensions: with ``c = 5``
and ``d = 10`` there are ~9M cells, so occupancy approaches one vector per
bucket and phase 1 degenerates into a per-weight pre-scan.  The
implementation keeps that behaviour — it's what Figures 10-11 measure.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from ..core.ties import count_strictly_better, tie_tolerance
from ..index.histogram import DEFAULT_RESOLUTION, WeightHistogram
from ..index.rtree import Node, RTree
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .base import RRQAlgorithm, duplicate_mask

#: P-tree fanout (same as BBR's so tree costs are comparable).
DEFAULT_CAPACITY = 32


class MarkedPruningRKR(RRQAlgorithm):
    """Histogram-over-W + R-tree-over-P reverse k-ranks."""

    name = "MPA"
    supports_rtk = False

    def __init__(self, products: ProductSet, weights: WeightSet,
                 resolution: int = DEFAULT_RESOLUTION,
                 capacity: int = DEFAULT_CAPACITY):
        super().__init__(products, weights)
        self.p_tree = RTree(self.P, capacity=capacity)
        self.histogram = WeightHistogram(self.W, resolution=resolution)

    # ------------------------------------------------------------------

    def _bucket_lower_bound(self, w_lo: np.ndarray, w_hi: np.ndarray,
                            q: np.ndarray, counter: OpCounter) -> int:
        """Products guaranteed to out-rank ``q`` for every weight in the bucket."""
        q_lo = float(np.dot(w_lo, q))
        q_hi = float(np.dot(w_hi, q))
        tol = tie_tolerance(q_hi)
        counter.pairwise += 2
        guaranteed = 0
        stack: List[Node] = [self.p_tree.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            counter.pairwise += 2
            node_hi = float(np.dot(w_hi, node.mbr.hi))
            if node_hi < q_lo - tol:
                guaranteed += node.count
                counter.filtered_case1 += node.count
                continue
            node_lo = float(np.dot(w_lo, node.mbr.lo))
            if node_lo > q_hi + tol:
                counter.filtered_case2 += node.count
                continue
            if not node.is_leaf:
                stack.extend(node.children)
            # Leaves are not opened in the bound phase: the bound stays
            # optimistic (lower) and cheap.
        return guaranteed

    def _exact_rank(self, w: np.ndarray, q: np.ndarray, limit: float,
                    dup: np.ndarray, counter: OpCounter) -> int:
        """Exact ``rank(w, q)`` via the P-tree, aborting once ``>= limit``."""
        fq = float(np.dot(w, q))
        tol = tie_tolerance(fq)
        counter.pairwise += 1
        rnk = 0
        stack: List[Node] = [self.p_tree.root]
        while stack:
            node = stack.pop()
            counter.nodes_accessed += 1
            counter.pairwise += 2
            node_lo = float(np.dot(w, node.mbr.lo))
            if node_lo > fq + tol:
                counter.filtered_case2 += node.count
                continue
            node_hi = float(np.dot(w, node.mbr.hi))
            if node_hi < fq - tol:
                rnk += node.count
                counter.filtered_case1 += node.count
            elif node.is_leaf:
                entries = np.asarray(node.entries)
                entries = entries[~dup[entries]]
                block = self.P[entries]
                counter.pairwise += len(entries)
                counter.points_accessed += len(entries)
                rnk += count_strictly_better(block @ w, block, w, q, fq, tol)
                counter.refined += len(entries)
            else:
                stack.extend(node.children)
            if rnk >= limit:
                counter.early_terminations += 1
                return int(limit) if limit != float("inf") else rnk
        return rnk

    # ------------------------------------------------------------------

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        dup = duplicate_mask(self.P, q)
        # Phase 1: bucket-level optimistic bounds.
        bounded: List[Tuple[int, int, "object"]] = []
        for order, bucket in enumerate(self.histogram.buckets()):
            lb = self._bucket_lower_bound(bucket.lo, bucket.hi, q, counter)
            bounded.append((lb, order, bucket))
        heapq.heapify(bounded)

        # Phase 2+3: ascending-bound refinement with a k-best max-heap.
        # Heap entries are (-rank, -index): the root is the *worst* answer
        # under the library tie-break (largest rank; largest index on ties).
        best: List[Tuple[int, int]] = []
        while bounded:
            lb, _, bucket = heapq.heappop(bounded)
            if len(best) >= k and lb > -best[0][0]:
                counter.early_terminations += 1
                break  # every remaining bucket is at least this bad: marked
            for j in sorted(bucket.members):
                counter.approx_accessed += 1
                if len(best) < k:
                    limit = float("inf")
                else:
                    worst_rank, worst_j = -best[0][0], -best[0][1]
                    # A rank equal to the worst can still win when our index
                    # is smaller, so only then must the scan go one further.
                    limit = float(worst_rank + (1 if j < worst_j else 0))
                rnk = self._exact_rank(self.W[j], q, limit, dup, counter)
                if len(best) < k:
                    heapq.heappush(best, (-rnk, -j))
                else:
                    worst_rank, worst_j = -best[0][0], -best[0][1]
                    if (rnk, j) < (worst_rank, worst_j):
                        heapq.heapreplace(best, (-rnk, -j))
        pairs = [(-neg_rank, -neg_idx) for neg_rank, neg_idx in best]
        return make_rkr_result(pairs, k, counter)

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        raise NotImplementedError("MPA answers reverse k-ranks only")
