"""The cold-start race: kernel rebuild vs mmap warm start.

One measured fact for ``BENCH_fused.json``: how long acquiring a ready
:class:`~repro.vectorized.girkernel.GirKernelRRQ` takes from raw
arrays — the genuine cold-start path: dataset container construction
with its validation scans, then quantization + bound gathers + f32
copies — versus from an on-disk kernel store
(:func:`~repro.vectorized.kernelstore.load_kernel`, one ``mmap(2)`` of
the packed blob sliced into zero-copy views).  The loaded kernel also
answers one query and the result is compared against the in-memory
kernel's — a warm start that changed answers would be worse than no
warm start.
"""

from __future__ import annotations

from time import perf_counter
from typing import Tuple

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from ..vectorized.girkernel import GirKernelRRQ
from ..vectorized.kernelstore import (
    kernel_store_size,
    load_kernel,
    save_kernel,
)


def _best_of(fn, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def probe_cold_start(products, weights, partitions: int,
                     kernel: GirKernelRRQ, store_dir, query, k: int,
                     repeats: int = 3) -> Tuple[dict, bool]:
    """Time rebuild vs mmap load of ``kernel``; returns (record, ok).

    ``ok`` is False when the mmap-loaded kernel's answer to ``query``
    differs from the in-memory kernel's (it never should — the store
    carries the exact same arrays).
    """
    save_kernel(store_dir, kernel)
    expected = kernel.reverse_topk(query, k)

    # Detached raw copies: the rebuild must pay the full cold-start
    # path, including dataset construction (validation scans and the
    # contiguity copy), not just the kernel derivation.
    p_raw = np.array(products.values)
    w_raw = np.array(weights.values)
    rebuild_s, _ = _best_of(
        lambda: GirKernelRRQ(ProductSet(p_raw), WeightSet(w_raw),
                             partitions=partitions),
        repeats,
    )
    mmap_load_s, loaded = _best_of(lambda: load_kernel(store_dir), repeats)
    ok = loaded.reverse_topk(query, k) == expected
    record = {
        "rebuild_s": rebuild_s,
        "mmap_load_s": mmap_load_s,
        "speedup": rebuild_s / mmap_load_s if mmap_load_s > 0 else 0.0,
        "store_bytes": kernel_store_size(store_dir),
    }
    return record, bool(ok)
