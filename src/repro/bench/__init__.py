"""Perf-regression harness: pinned-seed kernel benchmarks with verification."""

from .harness import (
    DEFAULT_CONFIGS,
    SMOKE_CONFIGS,
    load_configs,
    machine_info,
    run_config,
    run_harness,
)

__all__ = ["DEFAULT_CONFIGS", "SMOKE_CONFIGS", "load_configs",
           "machine_info", "run_config", "run_harness"]
