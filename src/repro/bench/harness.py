"""The perf-regression harness behind ``BENCH_kernel.json``.

Future PRs need a trajectory: a pinned-seed, machine-stamped record of
how fast the blocked kernel is *today*, so a regression (or a claimed
win) is a diff against a committed JSON file instead of an anecdote.
This module is that harness.  For each configuration it

1. generates the workload (paper distributions, pinned seeds),
2. answers the same queries with the per-weight ``GridIndexRRQ`` loop,
   the blocked kernel (:class:`~repro.vectorized.girkernel.GirKernelRRQ`)
   and — when more than one shard makes sense — the shared-memory
   sharded engine (:class:`~repro.vectorized.shard.ShardedGirRRQ`),
3. records nearest-rank p50 per-query latency, speedups, and the
   kernel's pair-classification rates (the paper's filtering story), and
4. **verifies** every kernel answer against the per-weight loop and an
   independent oracle (:class:`~repro.algorithms.naive.NaiveRRQ` on
   small configs, :class:`~repro.vectorized.batch.BatchOracle` on large
   ones) — a divergence marks the run ``ok: false``, which the CI smoke
   job and the ``repro-rrq bench`` CLI turn into a failing exit code.

Entry points: :func:`run_harness` (programmatic),
``benchmarks/perf_harness.py`` (script), ``repro-rrq bench`` (CLI).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import __version__
from ..algorithms.naive import NaiveRRQ
from ..core.gir import GridIndexRRQ
from ..data.synthetic import generate_products, generate_weights
from ..errors import DataValidationError, InvalidParameterError
from ..service.metrics import percentile
from ..vectorized.batch import BatchOracle
from ..vectorized.girkernel import GirKernelRRQ, KernelStats
from ..vectorized.parallel import answer_batch_stats
from ..vectorized.shard import ShardedGirRRQ

#: Seed offsets keep products / weights / query sampling independent.
DEFAULT_SEED = 7

#: Above this many (p, w) pairs the exact-oracle check switches from the
#: per-pair NaiveRRQ scan to the chunked BatchOracle rank sweep (both are
#: exact and kernel-independent; the sweep is just affordable at scale).
_NAIVE_ORACLE_LIMIT = 5_000_000

#: Keys a configuration dict must provide.
_REQUIRED_KEYS = ("name", "n_products", "n_weights", "dim", "k", "queries")

#: The committed trajectory (|W| = 100k, the acceptance scale).
DEFAULT_CONFIGS: Tuple[dict, ...] = (
    {"name": "uniform-d4-w100k", "p_dist": "UN", "w_dist": "UN",
     "n_products": 1500, "n_weights": 100_000, "dim": 4, "k": 10,
     "queries": 3, "partitions": 32},
    {"name": "clustered-d4-w100k", "p_dist": "CL", "w_dist": "CL",
     "n_products": 1500, "n_weights": 100_000, "dim": 4, "k": 10,
     "queries": 3, "partitions": 32},
)

#: Tiny pinned-seed configs for CI: seconds to run, still verifying
#: byte-identity against the naive oracle.
SMOKE_CONFIGS: Tuple[dict, ...] = (
    {"name": "smoke-uniform-d3", "p_dist": "UN", "w_dist": "UN",
     "n_products": 300, "n_weights": 2500, "dim": 3, "k": 8,
     "queries": 3, "partitions": 32},
    {"name": "smoke-clustered-d5", "p_dist": "CL", "w_dist": "CL",
     "n_products": 250, "n_weights": 2000, "dim": 5, "k": 5,
     "queries": 3, "partitions": 32},
)


def machine_info() -> dict:
    """Where the numbers came from — required context for comparing runs."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "repro_version": __version__,
    }


def load_configs(path) -> List[dict]:
    """Read and validate a JSON config file (a list of config dicts)."""
    path = Path(path)
    if not path.is_file():
        raise DataValidationError(f"{path}: no such config file")
    try:
        configs = json.loads(path.read_text())
    except ValueError as exc:
        raise DataValidationError(f"{path}: invalid JSON ({exc})") from None
    if not isinstance(configs, list) or not configs:
        raise DataValidationError(
            f"{path}: expected a non-empty JSON list of config objects"
        )
    for cfg in configs:
        if not isinstance(cfg, dict):
            raise DataValidationError(f"{path}: configs must be objects")
        missing = [key for key in _REQUIRED_KEYS if key not in cfg]
        if missing:
            raise DataValidationError(
                f"{path}: config {cfg.get('name', '?')!r} missing keys: "
                f"{', '.join(missing)}"
            )
    return configs


def _timed_queries(answer, queries: Sequence[np.ndarray],
                   k: int) -> Tuple[List[float], list]:
    """Per-query wall-clock and answers for one ``answer(q, k)`` callable."""
    times, answers = [], []
    for q in queries:
        start = perf_counter()
        answers.append(answer(q, k))
        times.append(perf_counter() - start)
    return times, answers


def _kind_report(gir_times: List[float], kernel_times: List[float],
                 sharded_times: Optional[List[float]]) -> dict:
    gir_p50 = percentile(gir_times, 0.50)
    kernel_p50 = percentile(kernel_times, 0.50)
    report = {
        "gir_p50_s": gir_p50,
        "kernel_p50_s": kernel_p50,
        "kernel_speedup": gir_p50 / kernel_p50 if kernel_p50 > 0 else 0.0,
    }
    if sharded_times is not None:
        sharded_p50 = percentile(sharded_times, 0.50)
        report["sharded_p50_s"] = sharded_p50
        report["sharded_speedup_vs_kernel"] = (
            kernel_p50 / sharded_p50 if sharded_p50 > 0 else 0.0
        )
    return report


def run_config(cfg: dict, seed: int = DEFAULT_SEED,
               shards: Optional[int] = None, verify: bool = True) -> dict:
    """Benchmark + verify one configuration; returns its JSON-ready record.

    ``shards=0`` (or 1) skips the sharded engine; ``None`` uses
    ``max(2, os.cpu_count())`` so single-core machines still record a
    sharded data point (flagged by ``machine.cpu_count`` in the output).
    """
    name = cfg["name"]
    queries_n = int(cfg["queries"])
    k = int(cfg["k"])
    if min(queries_n, k, cfg["n_products"], cfg["n_weights"],
           cfg["dim"]) < 1:
        raise InvalidParameterError(
            f"config {name!r}: sizes, dim, k and queries must be positive"
        )
    products = generate_products(cfg.get("p_dist", "UN"),
                                 int(cfg["n_products"]), int(cfg["dim"]),
                                 seed=seed)
    weights = generate_weights(cfg.get("w_dist", "UN"),
                               int(cfg["n_weights"]), int(cfg["dim"]),
                               seed=seed + 1)
    partitions = int(cfg.get("partitions", 32))
    gir = GridIndexRRQ(products, weights, partitions=partitions)
    kernel = GirKernelRRQ.from_gir(gir)
    rng = np.random.default_rng(seed + 2)
    idx = rng.choice(products.size, size=min(queries_n, products.size),
                     replace=False)
    queries = [products.values[i] for i in idx]

    if shards is None:
        shards = max(2, os.cpu_count() or 1)
    sharded = (ShardedGirRRQ(products, weights, shards=shards, kernel=kernel)
               if shards >= 2 else None)

    record = {
        "name": name,
        "params": dict(cfg),
        "seed": seed,
        "query_indices": [int(i) for i in idx],
        "shards": sharded.shards if sharded is not None else 0,
    }
    identical = True
    try:
        for kind in ("rtk", "rkr"):
            gir_fn = gir.reverse_topk if kind == "rtk" else gir.reverse_kranks
            kernel_fn = (kernel.reverse_topk if kind == "rtk"
                         else kernel.reverse_kranks)
            gir_times, gir_answers = _timed_queries(gir_fn, queries, k)
            kernel_times, kernel_answers = _timed_queries(kernel_fn,
                                                          queries, k)
            sharded_times = sharded_answers = None
            if sharded is not None:
                sharded_fn = (sharded.reverse_topk if kind == "rtk"
                              else sharded.reverse_kranks)
                sharded_times, sharded_answers = _timed_queries(
                    sharded_fn, queries, k
                )
            identical &= gir_answers == kernel_answers
            if sharded_answers is not None:
                identical &= gir_answers == sharded_answers
            if verify:
                oracle = _oracle(products, weights)
                oracle_fn = (oracle.reverse_topk if kind == "rtk"
                             else oracle.reverse_kranks)
                identical &= all(
                    oracle_fn(q, k) == answer
                    for q, answer in zip(queries, kernel_answers)
                )
            record[kind] = _kind_report(gir_times, kernel_times,
                                        sharded_times)
    finally:
        if sharded is not None:
            sharded.close()

    # One serial batch over the kernel: surfaces the per-query p50/p95
    # that BatchStats now reports (satellite: CLI visibility).
    _, batch_stats = answer_batch_stats(kernel, queries, k, "rtk", workers=1)
    record["batch"] = {
        "workers": batch_stats.workers,
        "elapsed_s": batch_stats.elapsed_s,
        "per_query_p50_s": batch_stats.per_query_p50_s,
        "per_query_p95_s": batch_stats.per_query_p95_s,
    }
    record["kernel_stats"] = _full_kernel_stats(kernel, queries, k)
    record["verified"] = bool(identical)
    record["oracle"] = (
        ("naive" if _use_naive(products, weights) else "batch")
        if verify else "none"
    )
    return record


def _use_naive(products, weights) -> bool:
    return products.size * weights.size <= _NAIVE_ORACLE_LIMIT


def _oracle(products, weights):
    """An exact engine that shares no code with the kernel under test."""
    if _use_naive(products, weights):
        return NaiveRRQ(products, weights)
    return BatchOracle(products, weights)


def _full_kernel_stats(kernel: GirKernelRRQ, queries: Sequence[np.ndarray],
                       k: int) -> dict:
    """Pair-classification rates accumulated over one full query sweep.

    Split per query kind: RTK and RKR sweeps land in *separate* stats
    objects, so ``rtk["queries"]`` / ``rkr["queries"]`` each equal the
    number of benchmark queries (the merged object used to report their
    sum — "queries": 6 for a 3-query config).  The top-level
    ``filter_rate`` remains the overall rate across both sweeps.
    """
    per_kind = {}
    overall = KernelStats()
    for kind in ("rtk", "rkr"):
        fn = kernel.reverse_topk if kind == "rtk" else kernel.reverse_kranks
        stats = KernelStats()
        for q in queries:
            fn(q, k)
            if kernel.last_stats is not None:
                stats.merge(kernel.last_stats)
        per_kind[kind] = stats.snapshot()
        overall.merge(stats)
    per_kind["filter_rate"] = overall.filter_rate()
    return per_kind


def run_harness(configs: Optional[Sequence[dict]] = None,
                seed: int = DEFAULT_SEED, shards: Optional[int] = None,
                verify: bool = True, out=None,
                progress=None) -> dict:
    """Run every configuration; optionally write the JSON file.

    Returns the full report dict; ``report["ok"]`` is False when any
    kernel/sharded answer diverged from the per-weight loop or the
    oracle (the property the whole optimization is worthless without).
    """
    configs = list(configs) if configs is not None else list(DEFAULT_CONFIGS)
    if out is not None:
        out = Path(out)
        if not out.parent.is_dir():  # fail before minutes of benchmarking
            raise DataValidationError(
                f"{out}: parent directory does not exist"
            )
    records = []
    for cfg in configs:
        if progress is not None:
            progress(f"config {cfg['name']} ...")
        records.append(run_config(cfg, seed=seed, shards=shards,
                                  verify=verify))
    report = {
        "schema": 1,
        "benchmark": "girkernel",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "machine": machine_info(),
        "configs": records,
        "ok": all(record["verified"] for record in records),
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


# ----------------------------------------------------------------------
# the fused-batch / cold-start harness (BENCH_fused.json)
# ----------------------------------------------------------------------

#: The committed fused trajectory: Q-8 coalesced batches at the |W|=100k
#: acceptance scale, plus the mmap-vs-rebuild cold-start race.
FUSED_CONFIGS: Tuple[dict, ...] = (
    {"name": "fused-uniform-d6-w100k", "p_dist": "UN", "w_dist": "UN",
     "n_products": 1500, "n_weights": 100_000, "dim": 6, "k": 10,
     "queries": 8, "partitions": 32},
    {"name": "fused-clustered-d6-w100k", "p_dist": "CL", "w_dist": "CL",
     "n_products": 1500, "n_weights": 100_000, "dim": 6, "k": 10,
     "queries": 8, "partitions": 32},
)

#: Tiny fused configs for CI smoke (seconds, oracle-verified).
FUSED_SMOKE_CONFIGS: Tuple[dict, ...] = (
    {"name": "fused-smoke-uniform-d3", "p_dist": "UN", "w_dist": "UN",
     "n_products": 300, "n_weights": 2500, "dim": 3, "k": 8,
     "queries": 8, "partitions": 32},
)

#: Timing repeats per measurement; the minimum is recorded (standard
#: microbenchmark practice — the minimum is the least noisy estimator
#: of the true cost on a shared machine).
_FUSED_REPEATS = 3


def _min_timed(fn, repeats: int = _FUSED_REPEATS):
    """Best-of-N wall clock and the last invocation's return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def _pick_query_indices(P: np.ndarray, queries_n: int, k: int,
                        rng) -> np.ndarray:
    """Sample query products that exercise the filter stage.

    A product dominated by ``k`` or more others is answered by the
    Domin pre-pass alone (RTK returns empty before any bound work), so
    a batch of such queries measures nothing.  Prefer products with
    fewer than ``k`` dominators; fall back to arbitrary products only
    when the dataset does not have enough of them.
    """
    order = rng.permutation(P.shape[0])
    chosen: list = []
    skipped: list = []
    for i in order:
        if len(chosen) == queries_n:
            break
        n_dom = int(np.count_nonzero(np.all(P < P[i], axis=1)))
        if n_dom < k:
            chosen.append(int(i))
        else:
            skipped.append(int(i))
    chosen.extend(skipped[: queries_n - len(chosen)])
    return np.asarray(chosen[:queries_n], dtype=np.intp)


def run_fused_config(cfg: dict, seed: int = DEFAULT_SEED,
                     verify: bool = True) -> dict:
    """Benchmark one config's fused-batch and cold-start story.

    For each query kind the whole ``queries``-sized batch is answered
    (a) sequentially — one per-query kernel call per query — and
    (b) through the fused multi-query kernel path; wall clock and the
    kernel's filter-stage seconds are recorded for both, along with a
    byte-identity check (fused vs sequential vs oracle).  The
    cold-start race times a full kernel rebuild from the raw data
    against an mmap load of the persisted kernel store.
    """
    import tempfile

    from .kernelstore_probe import probe_cold_start

    name = cfg["name"]
    queries_n = int(cfg["queries"])
    k = int(cfg["k"])
    if min(queries_n, k, cfg["n_products"], cfg["n_weights"],
           cfg["dim"]) < 1:
        raise InvalidParameterError(
            f"config {name!r}: sizes, dim, k and queries must be positive"
        )
    products = generate_products(cfg.get("p_dist", "UN"),
                                 int(cfg["n_products"]), int(cfg["dim"]),
                                 seed=seed)
    weights = generate_weights(cfg.get("w_dist", "UN"),
                               int(cfg["n_weights"]), int(cfg["dim"]),
                               seed=seed + 1)
    partitions = int(cfg.get("partitions", 32))
    kernel = GirKernelRRQ(products, weights, partitions=partitions)
    rng = np.random.default_rng(seed + 2)
    idx = _pick_query_indices(products.values, queries_n, k, rng)
    queries = [products.values[i] for i in idx]

    record = {
        "name": name,
        "params": dict(cfg),
        "seed": seed,
        "query_indices": [int(i) for i in idx],
        "batch_q": len(queries),
    }
    identical = True
    for kind in ("rtk", "rkr"):
        single = (kernel.reverse_topk if kind == "rtk"
                  else kernel.reverse_kranks)
        batched = (kernel.reverse_topk_batch if kind == "rtk"
                   else kernel.reverse_kranks_batch)

        def run_sequential():
            answers, stats = [], KernelStats()
            for q in queries:
                answers.append(single(q, k))
                stats.merge(kernel.last_stats)
            return answers, stats

        def run_fused():
            answers = batched(queries, k)
            return answers, kernel.last_stats

        seq_wall, (seq_answers, seq_stats) = _min_timed(run_sequential)
        fused_wall, (fused_answers, fused_stats) = _min_timed(run_fused)
        identical &= seq_answers == fused_answers
        if verify:
            oracle = _oracle(products, weights)
            oracle_fn = (oracle.reverse_topk if kind == "rtk"
                         else oracle.reverse_kranks)
            identical &= all(oracle_fn(q, k) == answer
                             for q, answer in zip(queries, fused_answers))
        record[f"fused_{kind}"] = {
            "sequential_wall_s": seq_wall,
            "fused_wall_s": fused_wall,
            "wall_speedup": seq_wall / fused_wall if fused_wall > 0 else 0.0,
            "sequential_filter_s": seq_stats.filter_s,
            "fused_filter_s": fused_stats.filter_s,
            "filter_speedup": (seq_stats.filter_s / fused_stats.filter_s
                               if fused_stats.filter_s > 0 else 0.0),
            "fused_stats": fused_stats.snapshot(),
        }

    with tempfile.TemporaryDirectory() as store_dir:
        record["cold_start"], cold_ok = probe_cold_start(
            products, weights, partitions, kernel, store_dir,
            query=queries[0], k=k, repeats=_FUSED_REPEATS,
        )
        identical &= cold_ok
    record["verified"] = bool(identical)
    record["oracle"] = (
        ("naive" if _use_naive(products, weights) else "batch")
        if verify else "none"
    )
    return record


def run_fused_harness(configs: Optional[Sequence[dict]] = None,
                      seed: int = DEFAULT_SEED, verify: bool = True,
                      out=None, progress=None) -> dict:
    """Run the fused/cold-start configs; optionally write BENCH_fused.json."""
    configs = (list(configs) if configs is not None
               else list(FUSED_CONFIGS))
    if out is not None:
        out = Path(out)
        if not out.parent.is_dir():
            raise DataValidationError(
                f"{out}: parent directory does not exist"
            )
    records = []
    for cfg in configs:
        if progress is not None:
            progress(f"config {cfg['name']} ...")
        records.append(run_fused_config(cfg, seed=seed, verify=verify))
    report = {
        "schema": 1,
        "benchmark": "girkernel-fused",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "machine": machine_info(),
        "configs": records,
        "ok": all(record["verified"] for record in records),
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


# ----------------------------------------------------------------------
# the auto-tuner harness (BENCH_tuner.json)
# ----------------------------------------------------------------------

def probe_filter_profile(kernel: GirKernelRRQ,
                         queries: Sequence[np.ndarray], k: int = 10,
                         kinds: Sequence[str] = ("rtk",)) -> dict:
    """One short measured probe: the compact filter profile of ``kernel``.

    The tuner's scoring primitive — a thin projection of
    :func:`repro.obs.profile.profile_workload` down to the quantities
    candidate ranking needs: the undecided+refined fraction (what the
    grid failed to settle from bounds) and the filter-stage seconds.
    """
    from ..obs.profile import profile_workload

    report = profile_workload(kernel, queries, k=int(k),
                              kinds=tuple(kinds))
    fractions = report["fractions"]
    return {
        "queries": report["queries"],
        "pairs_total": report["pairs_total"],
        "fractions": dict(fractions),
        "undecided_refined_fraction": (fractions["undecided"]
                                       + fractions["refined"]),
        "filter_rate": report["filter_rate"],
        "filter_s": report["stage_s"]["filter"],
        "elapsed_s": report["elapsed_s"],
    }


#: The committed tuning trajectory: the clustered |W| = 100k acceptance
#: config, where the equal-width grid is at its worst.
TUNER_CONFIGS: Tuple[dict, ...] = (
    {"name": "tuned-clustered-d4-w100k", "p_dist": "CL", "w_dist": "CL",
     "n_products": 1500, "n_weights": 100_000, "dim": 4, "k": 10,
     "queries": 8, "partitions": 32},
)

#: Tiny pinned-seed tuning config for CI (seconds, oracle-verified).
TUNER_SMOKE_CONFIGS: Tuple[dict, ...] = (
    {"name": "tuned-smoke-clustered-d4", "p_dist": "CL", "w_dist": "CL",
     "n_products": 250, "n_weights": 2000, "dim": 4, "k": 5,
     "queries": 4, "partitions": 32},
)


def run_tuner_config(cfg: dict, seed: int = DEFAULT_SEED,
                     verify: bool = True) -> dict:
    """Tune one config and record default-vs-tuned filter effectiveness.

    The record carries the default (equal-width, config ``partitions``)
    and auto-tuned profiles side by side; ``improved`` asserts the tuned
    fraction is strictly lower — the measurable win the tuner exists
    for — and ``verified`` the winner's byte-identity to the naive
    oracle over the probe workload.
    """
    from ..tuning.tuner import AutoTuner, CandidateConfig

    name = cfg["name"]
    queries_n = int(cfg["queries"])
    k = int(cfg["k"])
    if min(queries_n, k, cfg["n_products"], cfg["n_weights"],
           cfg["dim"]) < 1:
        raise InvalidParameterError(
            f"config {name!r}: sizes, dim, k and queries must be positive"
        )
    products = generate_products(cfg.get("p_dist", "UN"),
                                 int(cfg["n_products"]), int(cfg["dim"]),
                                 seed=seed)
    weights = generate_weights(cfg.get("w_dist", "UN"),
                               int(cfg["n_weights"]), int(cfg["dim"]),
                               seed=seed + 1)
    partitions = int(cfg.get("partitions", 32))
    tuner = AutoTuner(
        products, weights, k=k, probe_queries=queries_n, seed=seed + 2,
        current=CandidateConfig(partitions=partitions),
    )
    report = tuner.tune()

    def _profile(entry: dict) -> dict:
        measured = entry["measured"]
        return {
            "label": entry["label"],
            "config": dict(entry["config"]),
            "undecided_refined_fraction":
                measured["undecided_refined_fraction"],
            "filter_rate": measured["filter_rate"],
            "filter_s": measured["filter_s"],
            "predicted_worst_case_filtering":
                entry["predicted_worst_case_filtering"],
        }

    improved = report["improvement"] > 0.0
    return {
        "name": name,
        "params": dict(cfg),
        "seed": seed,
        "probe_queries": queries_n,
        "default": _profile(report["baseline"]),
        "tuned": _profile(report["winner"]),
        "improvement": report["improvement"],
        "improved": bool(improved),
        "candidates": len(report["candidates"]),
        "verified": bool(report["verified"]) if verify else True,
        "oracle": "naive" if verify else "none",
    }


def run_tuner_harness(configs: Optional[Sequence[dict]] = None,
                      seed: int = DEFAULT_SEED, verify: bool = True,
                      out=None, progress=None) -> dict:
    """Run the tuning configs; optionally write BENCH_tuner.json.

    ``report["ok"]`` requires *both* invariants per config: the tuned
    winner answered byte-identically to the oracle, and it measurably
    improved the undecided+refined fraction over the default grid.
    """
    configs = (list(configs) if configs is not None
               else list(TUNER_CONFIGS))
    if out is not None:
        out = Path(out)
        if not out.parent.is_dir():
            raise DataValidationError(
                f"{out}: parent directory does not exist"
            )
    records = []
    for cfg in configs:
        if progress is not None:
            progress(f"config {cfg['name']} ...")
        records.append(run_tuner_config(cfg, seed=seed, verify=verify))
    report = {
        "schema": 1,
        "benchmark": "girkernel-tuner",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "machine": machine_info(),
        "configs": records,
        "ok": all(record["verified"] and record["improved"]
                  for record in records),
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


#: (kind, metric) pairs the regression gate compares, config by config.
GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("rtk", "kernel_p50_s"),
    ("rkr", "kernel_p50_s"),
)

#: The fused report's gated metrics: fused batch wall clock per kind
#: plus the mmap cold-start time (all one-sided, like the kernel gate).
FUSED_GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("fused_rtk", "fused_wall_s"),
    ("fused_rkr", "fused_wall_s"),
    ("cold_start", "mmap_load_s"),
)

#: The tuner report's gated metrics: the tuned filter fraction (lower is
#: better — a rising fraction means tuning stopped winning) and the
#: tuned filter-stage seconds.
TUNER_GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("tuned", "undecided_refined_fraction"),
    ("tuned", "filter_s"),
)

#: Default regression budget: fail CI past this p50 slowdown.
DEFAULT_MAX_REGRESS_PCT = 25.0


def check_regression(report: dict, baseline: dict,
                     max_regress_pct: float = DEFAULT_MAX_REGRESS_PCT,
                     metrics: Tuple[Tuple[str, str], ...] = GATED_METRICS,
                     ) -> dict:
    """Gate ``report`` against a committed ``baseline`` (BENCH_kernel.json).

    Configs are matched by name; for each match the gated metrics
    (kernel p50 per kind) may be at most ``max_regress_pct`` percent
    slower than the baseline.  Faster is always fine — the gate is
    one-sided, a regression detector rather than a noise detector.

    Returns a JSON-ready verdict::

        {"ok": bool, "max_regress_pct": float, "compared": int,
         "checks": [{"config", "kind", "metric", "baseline_s",
                     "current_s", "regress_pct", "ok"}, ...]}

    ``ok`` is False when any check fails **or when nothing could be
    compared at all** — a gate silently comparing zero metrics (e.g.
    smoke configs against the full-size baseline) would pass forever
    without gating anything.
    """
    if max_regress_pct < 0:
        raise InvalidParameterError("max_regress_pct must be >= 0")
    baseline_by_name = {cfg.get("name"): cfg
                        for cfg in baseline.get("configs", [])}
    checks: List[dict] = []
    for record in report.get("configs", []):
        base = baseline_by_name.get(record.get("name"))
        if base is None:
            continue
        for kind, metric in metrics:
            old = base.get(kind, {}).get(metric)
            new = record.get(kind, {}).get(metric)
            if old is None or new is None or old <= 0:
                continue
            regress_pct = (float(new) - float(old)) / float(old) * 100.0
            checks.append({
                "config": record["name"],
                "kind": kind,
                "metric": metric,
                "baseline_s": float(old),
                "current_s": float(new),
                "regress_pct": regress_pct,
                "ok": regress_pct <= max_regress_pct,
            })
    return {
        "ok": bool(checks) and all(check["ok"] for check in checks),
        "max_regress_pct": float(max_regress_pct),
        "compared": len(checks),
        "checks": checks,
    }
