"""End-to-end request tracing: trace ids, spans, and the trace ring.

One *trace* is the story of one request: a tree of *spans*, each a named
wall-clock interval with free-form annotations.  The trace id is minted
at HTTP ingress (or accepted from an ``X-Trace-Id`` header after
sanitization) and rides a :class:`contextvars.ContextVar` through the
service layers; code that crosses a thread boundary (the micro-batch
scheduler hands work to a dispatcher thread) captures the context with
:func:`current` and re-enters it with :func:`use_context`.

The instrumentation contract is *zero-cost when dark*: :func:`span`
returns a shared no-op span whenever no trace is active, so library code
can be instrumented unconditionally — embedding callers that never start
a trace pay one ContextVar read per span site.

Finished traces land in a bounded in-memory ring (:class:`Tracer`),
readable at ``GET /traces``, and are optionally appended as JSON lines
to an export file.  Durations are measured with
:func:`time.perf_counter`; wall-clock time appears only as the
human-readable ``started_at`` timestamp of each span.
"""

from __future__ import annotations

import contextvars
import json
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Traces retained in the in-memory ring by default.
DEFAULT_TRACE_CAPACITY = 256

#: Spans one trace may hold; guards against a runaway instrumented loop.
MAX_SPANS_PER_TRACE = 512

#: Accepted shape of an externally supplied trace id (X-Trace-Id header).
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def sanitize_trace_id(candidate: Optional[str]) -> str:
    """``candidate`` if it is a well-formed external id, else a fresh id.

    External ids are restricted to 1-64 characters of ``[A-Za-z0-9._-]``
    so a hostile header can never smuggle newlines or markup into the
    trace ring, the slow-query log, or a Prometheus exemplar.
    """
    if candidate is not None and _TRACE_ID_RE.match(candidate):
        return candidate
    return new_trace_id()


class Span:
    """One named interval inside a trace.

    Spans are created through :meth:`Tracer.trace` (roots) and
    :func:`span` (children); they self-report into their trace when
    closed.  ``annotations`` carries structured context (batch size,
    kernel stats, error strings) into ``GET /traces`` and the slow-query
    log.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "started_at",
                 "_t0", "duration_s", "annotations", "status", "error")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = time.time()  # wall-clock: display timestamp only
        self._t0 = time.perf_counter()
        self.duration_s: Optional[float] = None  # None while still open
        self.annotations: Dict[str, object] = {}
        self.status = "ok"
        self.error: Optional[str] = None

    def annotate(self, key: str, value) -> None:
        """Attach one structured annotation (last write per key wins)."""
        self.annotations[str(key)] = value

    def finish(self) -> None:
        """Close the span (idempotent); duration is frozen at first close."""
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        """JSON-ready encoding; open spans report their duration so far."""
        duration = self.duration_s
        if duration is None:
            duration = time.perf_counter() - self._t0
        body = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration_s": duration,
            "status": self.status,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.annotations:
            body["annotations"] = dict(self.annotations)
        return body


class _NullSpan:
    """The shared do-nothing span yielded when no trace is active."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def annotate(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class Trace:
    """Collects the spans of one trace id (thread-safe).

    Spans may be added from any thread — the HTTP handler and the
    scheduler dispatcher both contribute — so membership is guarded by a
    lock.  The span *tree* is derived from parent ids at read time.
    """

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_span = 0
        self._dropped = 0

    def new_span_id(self) -> str:
        with self._lock:
            self._next_span += 1
            return f"s{self._next_span}"

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= MAX_SPANS_PER_TRACE:
                self._dropped += 1
                return
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def span_tree(self) -> List[dict]:
        """Nested span dicts (roots first, children under ``children``).

        Safe to call while the root span is still open: open spans
        report their duration so far.  Used by the slow-query log, which
        fires before the ingress span has closed.
        """
        spans = self.spans()
        nodes = {s.span_id: dict(s.to_dict(), children=[]) for s in spans}
        roots: List[dict] = []
        for s in spans:
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def to_dict(self) -> dict:
        spans = self.spans()
        root = next((s for s in spans if s.parent_id is None), None)
        body = {
            "trace_id": self.trace_id,
            "root": root.name if root is not None else None,
            "duration_s": (root.to_dict()["duration_s"]
                           if root is not None else 0.0),
            "span_count": len(spans),
            "spans": self.span_tree(),
        }
        if self._dropped:
            body["spans_dropped"] = self._dropped
        return body


class _SpanContext:
    """What the ContextVar holds: the live trace, span, and its tracer."""

    __slots__ = ("trace", "span_id", "tracer")

    def __init__(self, trace: Trace, span_id: str,
                 tracer: Optional["Tracer"]):
        self.trace = trace
        self.span_id = span_id
        self.tracer = tracer


_current: "contextvars.ContextVar[Optional[_SpanContext]]" = \
    contextvars.ContextVar("repro_obs_span", default=None)


def current() -> Optional[_SpanContext]:
    """The active span context, or ``None`` when tracing is dark.

    Capture this on the submitting thread and re-enter it with
    :func:`use_context` on the thread that does the work.
    """
    return _current.get()


def current_trace_id() -> Optional[str]:
    ctx = _current.get()
    return ctx.trace.trace_id if ctx is not None else None


@contextmanager
def use_context(ctx: Optional[_SpanContext]) -> Iterator[None]:
    """Re-enter a captured span context on another thread."""
    if ctx is None:
        yield
        return
    token = _current.set(ctx)
    try:
        yield
    finally:
        _current.reset(token)


@contextmanager
def span(name: str) -> Iterator[object]:
    """A child span of the active context (no-op when tracing is dark).

    Exceptions mark the span ``status="error"`` (with the exception
    rendered into ``error``) and propagate unchanged.
    """
    ctx = _current.get()
    if ctx is None:
        yield NULL_SPAN
        return
    child = Span(name, ctx.trace.trace_id, ctx.trace.new_span_id(),
                 parent_id=ctx.span_id)
    token = _current.set(_SpanContext(ctx.trace, child.span_id, ctx.tracer))
    try:
        yield child
    except BaseException as exc:
        child.status = "error"
        child.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _current.reset(token)
        child.finish()
        ctx.trace.add(child)


class Tracer:
    """Bounded ring of finished traces plus optional JSON-lines export.

    Parameters
    ----------
    capacity:
        Finished traces retained in memory (oldest evicted first).
    export_path:
        When given, every finished trace is appended to this file as one
        JSON line.  Export failures never break serving; they are
        counted in :attr:`export_errors`.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY,
                 export_path: Optional[str] = None):
        self.capacity = max(1, int(capacity))
        self.export_path = export_path
        self._lock = threading.Lock()
        self._ring: "deque[Trace]" = deque(maxlen=self.capacity)
        self.finished_total = 0
        self.export_errors = 0

    @contextmanager
    def trace(self, name: str, trace_id: Optional[str] = None,
              ) -> Iterator[Span]:
        """Run the body under a fresh root span; store the trace on exit.

        ``trace_id`` is sanitized (see :func:`sanitize_trace_id`); read
        the accepted id back from the yielded span's ``trace_id``.
        """
        trace = Trace(sanitize_trace_id(trace_id))
        root = Span(name, trace.trace_id, trace.new_span_id(),
                    parent_id=None)
        token = _current.set(_SpanContext(trace, root.span_id, self))
        try:
            yield root
        except BaseException as exc:
            root.status = "error"
            root.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _current.reset(token)
            root.finish()
            trace.add(root)
            self._store(trace)

    def _store(self, trace: Trace) -> None:
        with self._lock:
            self._ring.append(trace)
            self.finished_total += 1
        if self.export_path is not None:
            try:
                line = json.dumps(trace.to_dict(), sort_keys=True)
                with open(self.export_path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
            except (OSError, ValueError):
                with self._lock:
                    self.export_errors += 1

    def get(self, trace_id: str) -> Optional[dict]:
        """The finished trace with this id, or ``None``."""
        with self._lock:
            for trace in reversed(self._ring):
                if trace.trace_id == trace_id:
                    return trace.to_dict()
        return None

    def traces(self, limit: Optional[int] = None) -> List[dict]:
        """Finished traces, most recent first."""
        with self._lock:
            recent = list(self._ring)
        recent.reverse()
        if limit is not None:
            recent = recent[:max(0, int(limit))]
        return [trace.to_dict() for trace in recent]

    def snapshot(self, limit: Optional[int] = None) -> dict:
        """The ``GET /traces`` body."""
        return {
            "capacity": self.capacity,
            "finished_total": self.finished_total,
            "export_errors": self.export_errors,
            "traces": self.traces(limit),
        }

    def stats(self) -> dict:
        """Cheap counters for the JSON ``/metrics`` body."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "finished_total": self.finished_total,
                "in_ring": len(self._ring),
                "export_errors": self.export_errors,
            }
