"""Prometheus text exposition: histograms, the renderer, and a linter.

The service's ``/metrics`` endpoint keeps its JSON body (the existing
dashboards read it) and adds ``?format=prometheus``, rendered here.  The
renderer is deliberately tiny — counters, gauges, and cumulative
histograms in the text format every scraper understands — plus OpenMetrics
style exemplars on histogram buckets, which carry the trace id of the
last request observed in each latency bucket straight into the metrics
backend.

:func:`lint_exposition` is the minimal parser the CI ``obs`` job runs
against a live scrape: every sample must belong to a family with exactly
one ``# HELP`` and one ``# TYPE`` line, metric families must not repeat,
histograms must be complete (``_bucket`` series ending at ``le="+Inf"``
plus ``_sum``/``_count``), and no two samples may share a name+labels
pair.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

#: Latency buckets (seconds) for request histograms: sub-ms to 10 s.
LATENCY_BUCKETS_S = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                     0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Buckets for per-query filter effectiveness (a fraction in [0, 1]).
FILTER_RATE_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                       0.95, 0.99, 1.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Histogram:
    """A cumulative-bucket histogram with per-bucket exemplars.

    Not internally locked: the owner (``ServiceMetrics``) already
    serializes every mutation and snapshot under its own mutex, and
    double-locking the hot request path buys nothing.

    Non-finite observations are dropped (they would poison ``_sum`` and
    every percentile derived downstream) — the same policy as
    :func:`repro.stats.timing.percentile`.
    """

    def __init__(self, buckets: Sequence[float]):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise InvalidParameterError("histogram needs at least one bucket")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise InvalidParameterError(
                "histogram buckets must be strictly increasing"
            )
        if not all(math.isfinite(b) for b in bounds):
            raise InvalidParameterError(
                "histogram buckets must be finite (+Inf is implicit)"
            )
        self.bounds = tuple(bounds)
        # One count per finite bucket plus the implicit +Inf bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._dropped = 0
        #: Last (exemplar label value, observed value) seen per bucket.
        self._exemplars: List[Optional[Tuple[str, float]]] = \
            [None] * (len(bounds) + 1)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        value = float(value)
        if not math.isfinite(value):
            self._dropped += 1
            return
        idx = bisect_left(self.bounds, value)
        self._counts[idx] += 1
        self._sum += value
        self._count += 1
        if exemplar is not None:
            self._exemplars[idx] = (str(exemplar), value)

    def snapshot(self) -> dict:
        """Cumulative bucket counts plus sum/count (JSON- and prom-ready)."""
        cumulative = []
        running = 0
        for i, bound in enumerate(self.bounds):
            running += self._counts[i]
            cumulative.append({"le": bound, "count": running,
                               "exemplar": self._exemplars[i]})
        running += self._counts[-1]
        cumulative.append({"le": math.inf, "count": running,
                           "exemplar": self._exemplars[-1]})
        return {"buckets": cumulative, "sum": self._sum,
                "count": self._count, "dropped_non_finite": self._dropped}


def _fmt(value: float) -> str:
    """A Prometheus-parseable number (``+Inf``/``-Inf``/``NaN`` aware)."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_str(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    parts = []
    for key in labels:
        if not _LABEL_RE.match(key):
            raise InvalidParameterError(f"bad prometheus label name {key!r}")
        parts.append(f'{key}="{_escape_label(labels[key])}"')
    return "{" + ",".join(parts) + "}"


class Exposition:
    """Builds one scrape body; families render in registration order."""

    def __init__(self):
        #: name -> (type, help, [(suffix, labels, value, exemplar)])
        self._families: Dict[str, tuple] = {}
        self._order: List[str] = []

    def _family(self, name: str, kind: str, help_text: str) -> list:
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"bad prometheus metric name {name!r}")
        if name not in self._families:
            self._families[name] = (kind, help_text, [])
            self._order.append(name)
        existing_kind, _, samples = self._families[name]
        if existing_kind != kind:
            raise InvalidParameterError(
                f"metric {name} registered as both {existing_kind} and {kind}"
            )
        return samples

    def counter(self, name: str, help_text: str, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        _labels_str(labels)  # validate label names eagerly
        self._family(name, "counter", help_text).append(
            ("", labels, value, None))

    def gauge(self, name: str, help_text: str, value: float,
              labels: Optional[Dict[str, str]] = None) -> None:
        _labels_str(labels)  # validate label names eagerly
        self._family(name, "gauge", help_text).append(
            ("", labels, value, None))

    def histogram(self, name: str, help_text: str, snapshot: dict,
                  labels: Optional[Dict[str, str]] = None) -> None:
        """One histogram family from a :meth:`Histogram.snapshot` dict."""
        _labels_str(labels)  # validate label names eagerly
        samples = self._family(name, "histogram", help_text)
        base = dict(labels or {})
        for bucket in snapshot["buckets"]:
            bucket_labels = dict(base, le=_fmt(bucket["le"]))
            samples.append(("_bucket", bucket_labels, bucket["count"],
                            bucket.get("exemplar")))
        samples.append(("_sum", base or None, snapshot["sum"], None))
        samples.append(("_count", base or None, snapshot["count"], None))

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            kind, help_text, samples = self._families[name]
            help_line = (str(help_text).replace("\\", r"\\")
                         .replace("\n", r"\n"))
            lines.append(f"# HELP {name} {help_line}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, labels, value, exemplar in samples:
                line = f"{name}{suffix}{_labels_str(labels)} {_fmt(value)}"
                if exemplar is not None:
                    ex_id, ex_value = exemplar
                    line += (f' # {{trace_id="{_escape_label(ex_id)}"}}'
                             f" {_fmt(ex_value)}")
                lines.append(line)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the minimal lint parser (CI runs this against a live scrape)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?P<exemplar>\s+#\s+\{[^}]*\}\s+\S+(\s+\S+)?)?\s*$"
)

_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_name(sample_name: str, histogram_families: set) -> str:
    for suffix in _HIST_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in histogram_families:
                return base
    return sample_name


def lint_exposition(text: str) -> List[str]:
    """Validate one scrape body; returns problems (empty list = clean)."""
    problems: List[str] = []
    helped: set = set()
    typed: Dict[str, str] = {}
    seen_series: set = set()
    histograms: set = set()
    sampled: set = set()

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: HELP without text")
                continue
            name = parts[2]
            if name in helped:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                problems.append(f"line {lineno}: unknown type {kind!r}")
            typed[name] = kind
            if kind == "histogram":
                histograms.add(name)
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        sample_name = match.group("name")
        base = _base_name(sample_name, histograms)
        sampled.add(base)
        if base not in typed:
            problems.append(
                f"line {lineno}: sample {sample_name} has no TYPE"
            )
        if base not in helped:
            problems.append(
                f"line {lineno}: sample {sample_name} has no HELP"
            )
        series = (sample_name, match.group("labels") or "")
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {sample_name}"
                f"{match.group('labels') or ''}"
            )
        seen_series.add(series)
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {value!r}"
                )

    for name in histograms:
        if name not in sampled:
            continue
        inf_bucket = any(s[0] == name + "_bucket" and 'le="+Inf"' in s[1]
                         for s in seen_series)
        if not inf_bucket:
            problems.append(f"histogram {name} lacks an le=\"+Inf\" bucket")
        for suffix in ("_sum", "_count"):
            if not any(s[0] == name + suffix for s in seen_series):
                problems.append(f"histogram {name} lacks {name}{suffix}")
    for name in typed:
        if name not in helped:
            problems.append(f"metric {name} has TYPE but no HELP")
    for name in helped:
        if name not in typed:
            problems.append(f"metric {name} has HELP but no TYPE")
    return problems
