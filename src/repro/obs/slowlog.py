"""The slow-query log: structured JSON records of the worst requests.

Latency percentiles say *that* the tail is bad; the slow-query log says
*why*.  Every request whose service-side latency crosses the configured
threshold is recorded with its trace id, full span tree (including the
scheduler and kernel spans with their annotations — batch size, kernel
pair tallies), and query parameters, into a bounded in-memory ring
readable at ``GET /slowlog`` plus an optional JSON-lines file sink.

Entries are plain dicts so the HTTP layer can serialize them verbatim;
``logged_at`` is the one wall-clock field (a human-readable timestamp),
every duration in an entry comes from the monotonic/perf_counter clocks
upstream.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import List, Optional

from ..errors import InvalidParameterError

#: Default latency threshold, in seconds, above which a query is logged.
DEFAULT_SLOW_THRESHOLD_S = 0.25

#: Entries retained in memory by default.
DEFAULT_SLOWLOG_CAPACITY = 128


class SlowQueryLog:
    """Bounded, thread-safe ring of slow-query records.

    Parameters
    ----------
    threshold_s:
        Requests at or above this service-side latency are recorded.
        ``None`` disables the log entirely (:meth:`should_log` is always
        False), which is also the zero-overhead configuration.
    capacity:
        In-memory entries retained (oldest evicted first).
    path:
        Optional JSON-lines sink; every recorded entry is appended as
        one line.  Sink failures never break serving; they are counted.
    """

    def __init__(self, threshold_s: Optional[float] = DEFAULT_SLOW_THRESHOLD_S,
                 capacity: int = DEFAULT_SLOWLOG_CAPACITY,
                 path: Optional[str] = None):
        if threshold_s is not None and threshold_s < 0:
            raise InvalidParameterError(
                "slow-query threshold must be >= 0 (or None to disable)"
            )
        self.threshold_s = threshold_s
        self.capacity = max(1, int(capacity))
        self.path = path
        self._lock = threading.Lock()
        self._ring: "deque[dict]" = deque(maxlen=self.capacity)
        self.recorded_total = 0
        self.sink_errors = 0

    def should_log(self, latency_s: float) -> bool:
        """True when a request of this latency belongs in the log."""
        return self.threshold_s is not None and latency_s >= self.threshold_s

    def record(self, entry: dict) -> None:
        """Store one slow-query record (caller builds the body)."""
        entry = dict(entry)
        entry.setdefault("logged_at", time.time())  # wall-clock timestamp
        entry.setdefault("threshold_s", self.threshold_s)
        with self._lock:
            self._ring.append(entry)
            self.recorded_total += 1
        if self.path is not None:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(entry, sort_keys=True,
                                        default=str) + "\n")
            except (OSError, ValueError):
                with self._lock:
                    self.sink_errors += 1

    def entries(self, limit: Optional[int] = None) -> List[dict]:
        """Recorded entries, most recent first."""
        with self._lock:
            recent = list(self._ring)
        recent.reverse()
        if limit is not None:
            recent = recent[:max(0, int(limit))]
        return recent

    def snapshot(self, limit: Optional[int] = None) -> dict:
        """The ``GET /slowlog`` body."""
        return {
            "threshold_s": self.threshold_s,
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "sink_errors": self.sink_errors,
            "entries": self.entries(limit),
        }

    def stats(self) -> dict:
        """Cheap counters for the JSON ``/metrics`` body."""
        with self._lock:
            return {
                "threshold_s": self.threshold_s,
                "recorded_total": self.recorded_total,
                "in_ring": len(self._ring),
                "sink_errors": self.sink_errors,
            }
