"""Filter-effectiveness profiling: the paper's Table 4, on your workload.

The Grid-index's value proposition is the fraction of ``(p, w)`` pairs it
settles from cell bounds alone — Case 1 (``p`` certainly out-ranks
``q``), Case 2 (``q`` certainly out-ranks ``p``) — leaving only a thin
undecided band for exact inner products.  The paper measures this
offline over synthetic workloads (Table 4, Figs. 13-15);
:func:`profile_workload` measures it for *your* data and *your* queries,
by replaying them through the blocked kernel and accumulating its
:class:`~repro.vectorized.girkernel.KernelStats`.

The four reported classes partition the classified pairs exactly::

    case1 + case2 + undecided + refined == pairs_total

where *refined* pairs got an exact dot product and *undecided* pairs
were classified as neither case but never refined, because their weight
had already been pruned by the k / minRank abort.  The fractions
therefore sum to 1.0 by construction, and every count is taken verbatim
from the kernel's stats — the acceptance tests pin both properties.

``repro-rrq profile`` is the CLI frontend; the service surfaces the same
tallies live through ``/metrics`` (``rrq_kernel_pairs_total`` and the
per-query ``rrq_query_filter_rate`` histogram).
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..vectorized.girkernel import GirKernelRRQ, KernelStats

#: Query kinds the profiler can replay.
PROFILE_KINDS = ("rtk", "rkr")


def sample_queries(products, count: int, seed: int = 7) -> List[np.ndarray]:
    """``count`` query points drawn from the product set (with replacement
    once ``count`` exceeds the set size) under a pinned seed."""
    if count < 1:
        raise InvalidParameterError("query count must be positive")
    rng = np.random.default_rng(seed)
    size = int(products.size)
    replace = count > size
    picks = rng.choice(size, size=count, replace=replace)
    return [products[int(i)] for i in picks]


def profile_workload(kernel: GirKernelRRQ, queries: Sequence[np.ndarray],
                     k: int = 10, kinds: Sequence[str] = ("rtk",),
                     ) -> dict:
    """Replay ``queries`` through ``kernel``; return the Table-4 breakdown.

    Returns a JSON-ready report: accumulated pair counts, the four
    exactly-partitioning fractions (``case1``/``case2``/``undecided``/
    ``refined`` over ``pairs_total``), the Domin-skipped tally (kept
    separate — those pairs never enter classification), per-stage
    seconds, and per-query filter rates.
    """
    for kind in kinds:
        if kind not in PROFILE_KINDS:
            raise InvalidParameterError(
                f"kind must be one of {PROFILE_KINDS}, got {kind!r}"
            )
    if int(k) < 1:
        raise InvalidParameterError("k must be positive")
    total = KernelStats()
    per_query_rates: List[float] = []
    replayed = 0
    t0 = perf_counter()
    for q in queries:
        for kind in kinds:
            if kind == "rtk":
                kernel.reverse_topk(q, int(k))
            else:
                kernel.reverse_kranks(q, int(k))
            stats = kernel.last_stats
            per_query_rates.append(stats.filter_rate())
            total.merge(stats)
            replayed += 1
    elapsed = perf_counter() - t0
    return build_report(total, per_query_rates, replayed, elapsed,
                        k=int(k), kinds=list(kinds))


def build_report(total: KernelStats, per_query_rates: Sequence[float],
                 replayed: int, elapsed_s: float, k: int,
                 kinds: List[str]) -> dict:
    """Assemble the profile report from accumulated kernel stats.

    Split out so the tests can feed hand-built :class:`KernelStats` and
    assert the partition/fraction invariants without replaying queries.
    """
    undecided = (total.pairs_total - total.pairs_case1
                 - total.pairs_case2 - total.pairs_refined)
    counts = {
        "case1": total.pairs_case1,
        "case2": total.pairs_case2,
        "undecided": undecided,
        "refined": total.pairs_refined,
    }
    denom = total.pairs_total
    fractions = {name: (value / denom if denom else 0.0)
                 for name, value in counts.items()}
    rates = sorted(per_query_rates)
    return {
        "queries": replayed,
        "k": k,
        "kinds": kinds,
        "elapsed_s": elapsed_s,
        "pairs_total": total.pairs_total,
        "pairs": counts,
        "fractions": fractions,
        "filter_rate": total.filter_rate(),
        "pairs_domin_skipped": total.pairs_domin_skipped,
        "weights_pruned": total.weights_pruned,
        "stage_s": {
            "filter": total.filter_s,
            "refine": total.refine_s,
            "merge": total.merge_s,
        },
        "per_query_filter_rate": {
            "min": rates[0] if rates else 0.0,
            "median": rates[len(rates) // 2] if rates else 0.0,
            "max": rates[-1] if rates else 0.0,
        },
    }


def format_report(report: dict) -> str:
    """The human-readable Table-4-style breakdown ``repro-rrq profile``
    prints."""
    lines = [
        f"profiled {report['queries']} queries "
        f"(kinds={'/'.join(report['kinds'])}, k={report['k']}) "
        f"in {report['elapsed_s']:.3f}s",
        "",
        f"{'pair class':<12s} {'pairs':>14s} {'fraction':>10s}",
    ]
    for name in ("case1", "case2", "undecided", "refined"):
        lines.append(
            f"{name:<12s} {report['pairs'][name]:>14,} "
            f"{report['fractions'][name]:>9.2%}"
        )
    lines.append(f"{'total':<12s} {report['pairs_total']:>14,} "
                 f"{sum(report['fractions'].values()):>9.2%}")
    lines.append("")
    lines.append(f"filter rate (bounds-decided): "
                 f"{report['filter_rate']:.2%}")
    lines.append(f"domin-skipped pairs: {report['pairs_domin_skipped']:,}  "
                 f"weights pruned early: {report['weights_pruned']:,}")
    stage = report["stage_s"]
    lines.append(
        f"stage seconds: filter={stage['filter']:.3f} "
        f"refine={stage['refine']:.3f} merge={stage['merge']:.3f}"
    )
    rates = report["per_query_filter_rate"]
    lines.append(
        f"per-query filter rate: min={rates['min']:.2%} "
        f"median={rates['median']:.2%} max={rates['max']:.2%}"
    )
    return "\n".join(lines)
