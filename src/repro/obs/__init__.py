"""repro.obs — observability: tracing, Prometheus exposition, slow queries.

The cross-cutting layer every other subsystem reports into:

* :mod:`.trace` — trace ids and spans, propagated from HTTP ingress
  through the scheduler, kernel, and durability layers via a
  ContextVar; finished traces land in a bounded ring (``GET /traces``)
  with optional JSON-lines export.  Instrumentation is free when no
  trace is active.
* :mod:`.prom` — Prometheus text exposition
  (``GET /metrics?format=prometheus``): counters, gauges, histograms
  with trace-id exemplars, plus the lint parser CI scrapes with.
* :mod:`.slowlog` — the structured slow-query log (threshold
  configurable; entries carry the span tree and kernel stats).
* :mod:`.profile` — live filter-effectiveness profiling (the paper's
  Table 4 over a replayed workload; ``repro-rrq profile``).  Imported
  lazily by its callers — it pulls in the vectorized kernel, which
  itself uses :mod:`.trace`.

Everything here is stdlib-only, so any layer may depend on it without
cycles.
"""

from .prom import (
    FILTER_RATE_BUCKETS,
    LATENCY_BUCKETS_S,
    Exposition,
    Histogram,
    lint_exposition,
)
from .slowlog import (
    DEFAULT_SLOW_THRESHOLD_S,
    DEFAULT_SLOWLOG_CAPACITY,
    SlowQueryLog,
)
from .trace import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    Trace,
    Tracer,
    current,
    current_trace_id,
    new_trace_id,
    sanitize_trace_id,
    span,
    use_context,
)

__all__ = [
    "Tracer", "Trace", "Span", "span", "current", "current_trace_id",
    "use_context", "new_trace_id", "sanitize_trace_id",
    "DEFAULT_TRACE_CAPACITY",
    "Histogram", "Exposition", "lint_exposition",
    "LATENCY_BUCKETS_S", "FILTER_RATE_BUCKETS",
    "SlowQueryLog", "DEFAULT_SLOW_THRESHOLD_S", "DEFAULT_SLOWLOG_CAPACITY",
]
