"""Scatter-gather serving of reverse rank queries over worker processes.

The paper's answers compose exactly across any partition of ``W``
(RTK = union, RKR = k-smallest merge with the library tie-break), so a
cluster of workers each owning a weight slice answers byte-identically
to a single node over the full data — this package is that composition
promoted from the in-process :mod:`repro.vectorized.shard` engine to a
process/HTTP boundary:

* :mod:`~repro.cluster.topology` — the membership manifest, the
  ``range``/``mod`` weight partitioners, and rebalance plans;
* :mod:`~repro.cluster.coordinator` — concurrent fan-out, exact merge,
  per-shard circuit breakers, degraded-but-exact partial failure, and
  ownership-aware mutation routing;
* :mod:`~repro.cluster.router_server` — the HTTP front door (single-node
  JSON API plus ``/cluster/healthz`` and ``/cluster/topology``), with
  ``X-Trace-Id`` propagated into every shard sub-request;
* :mod:`~repro.cluster.launcher` — N local worker subprocesses + the
  coordinator, for dev, tests, and ``repro-rrq cluster``.
"""

from .coordinator import ClusterCoordinator
from .launcher import LocalCluster, WorkerProcess
from .router_server import (
    ClusterHTTPServer,
    ClusterService,
    make_cluster_server,
    serve_cluster_in_background,
)
from .topology import (
    PARTITIONERS,
    ClusterTopology,
    ShardSpec,
    partition_weight_indices,
)

__all__ = [
    "PARTITIONERS",
    "ClusterCoordinator",
    "ClusterHTTPServer",
    "ClusterService",
    "ClusterTopology",
    "LocalCluster",
    "ShardSpec",
    "WorkerProcess",
    "make_cluster_server",
    "partition_weight_indices",
    "serve_cluster_in_background",
]
