"""The scatter-gather coordinator: one query in, N shard sub-requests out.

For every RTK/RKR request the coordinator fans the query to each shard's
:class:`~repro.service.client.ServiceClient` concurrently, translates
the shard-local weight indices in each partial answer back to global
indices through the :class:`~repro.cluster.topology.ClusterTopology`,
and merges with the exact semantics proven in-process by
:meth:`repro.vectorized.shard.ShardedGirRRQ._scatter_gather`:

* RTK — per-shard answers are disjoint global index sets; the merged
  answer is their union;
* RKR — each shard returns its local top-k ``(rank, index)`` pairs with
  exact ranks (``rank(w, q)`` never depends on other weights); the
  global answer is the k lexicographically smallest pairs — byte-
  identical to the single-node heap's tie-break (smaller global index
  wins on equal ranks).

Partial failure is survived, never hidden.  Each shard has its own
:class:`~repro.resilience.breaker.CircuitBreaker`; a shard that fails
(transport error, per-shard deadline, open breaker) is answered by the
coordinator's **degraded-but-exact** local fallback — a naive scan over
just that shard's weight slice — and the response is flagged with
``"degraded": true`` and ``"degraded_shards": [ids]``.  Without local
fallback data (or once cluster mutations have made it stale) the failed
shard's slice is *omitted* and the same flags mark the answer partial.
Healthy responses carry neither key, so they stay byte-identical to a
single-node :class:`~repro.vectorized.girkernel.GirKernelRRQ` /
:class:`~repro.algorithms.naive.NaiveRRQ` serving the full ``W``.

Writes route by ownership: weight mutations go to the owning shard's
primary (the per-shard client's 409 rotate-on-standby failover from the
durability layer applies unchanged), product mutations broadcast to all
shards (every worker holds the full ``P``), and ``compact`` is refused
— it would renumber shard-local indices under the topology's feet; the
documented procedure is a rebalance.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.datasets import check_query_point
from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceUnavailableError,
)
from ..obs.trace import current, current_trace_id, span, use_context
from ..queries.types import RTKResult, make_rkr_result
from ..resilience.breaker import CircuitBreaker
from ..service.client import ServiceClient
from ..service.limits import Deadline
from ..service.server import encode_result
from ..stats.counters import OpCounter
from .topology import ClusterTopology

#: Default per-shard sub-request socket timeout, seconds.
DEFAULT_SHARD_TIMEOUT_S = 5.0

#: Default consecutive sub-request failures that open a shard's breaker.
DEFAULT_SHARD_BREAKER_THRESHOLD = 3

#: Default cool-down before a shard breaker admits a half-open probe.
DEFAULT_SHARD_BREAKER_RESET_S = 5.0

#: Mutation ops applied on every shard (all workers hold the full ``P``).
_BROADCAST_OPS = ("insert_product", "delete_product", "rebuild", "snapshot")


class ClusterCoordinator:
    """Scatter-gather over the shards of one :class:`ClusterTopology`.

    Parameters
    ----------
    topology:
        The membership manifest (endpoints, partitioner, counts).
    products, weights:
        The full data sets, when available (the local launcher always
        has them).  They power the degraded-but-exact fallback: a failed
        shard's partial answer is recomputed locally over exactly its
        weight slice, keeping the merged answer byte-identical.  Omit
        them and a failed shard's slice is omitted from (flagged)
        answers instead.
    shard_timeout_s:
        Per-shard sub-request socket timeout; each sub-request is
        additionally capped by the request's remaining deadline budget.
    retries:
        Per-shard sub-request retries (default 0: fail fast to the
        fallback instead of stalling the merge behind backoff sleeps).
    default_deadline_s:
        Deadline applied to queries that do not carry their own.
    """

    def __init__(self, topology: ClusterTopology,
                 products=None, weights=None,
                 shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
                 retries: int = 0,
                 default_deadline_s: Optional[float] = None,
                 breaker_threshold: int = DEFAULT_SHARD_BREAKER_THRESHOLD,
                 breaker_reset_s: float = DEFAULT_SHARD_BREAKER_RESET_S):
        if shard_timeout_s <= 0:
            raise InvalidParameterError("shard_timeout_s must be positive")
        self.topology = topology
        self.products = products
        self.weights = weights
        self.shard_timeout_s = float(shard_timeout_s)
        self.default_deadline_s = default_deadline_s
        self.clients: List[ServiceClient] = [
            ServiceClient(list(spec.endpoints), timeout_s=shard_timeout_s,
                          retries=retries, annotate_endpoint=True)
            for spec in topology.shards
        ]
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(failure_threshold=breaker_threshold,
                           reset_after_s=breaker_reset_s)
            for _ in topology.shards
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, topology.num_shards),
            thread_name_prefix="rrq-cluster",
        )
        self._lock = threading.Lock()
        self._fallbacks: Dict[int, object] = {}
        #: Global index the next routed weight insert will receive.
        self._next_global = topology.total_weights
        #: Cluster mutations applied through this coordinator; once the
        #: cluster state has diverged from the construction-time data
        #: sets, the local fallback would be stale-exact — worse than
        #: honestly partial — so it is disabled.
        self.mutations_routed = 0
        #: Queries answered with at least one degraded shard.
        self.degraded_queries = 0

    # ------------------------------------------------------------------
    # fallback (degraded-but-exact partials)
    # ------------------------------------------------------------------

    def _fallback_available(self) -> bool:
        return (self.products is not None and self.weights is not None
                and self.mutations_routed == 0)

    def _fallback_engine(self, shard_id: int):
        """A lazily built naive scan over exactly one shard's W slice."""
        from ..algorithms.naive import NaiveRRQ
        from ..data.datasets import ProductSet, WeightSet

        with self._lock:
            engine = self._fallbacks.get(shard_id)
            if engine is None:
                owned = self.topology.owned_globals(shard_id)
                engine = NaiveRRQ(
                    ProductSet(self.products.values,
                               value_range=self.products.value_range),
                    WeightSet(self.weights.values[owned]),
                )
                self._fallbacks[shard_id] = engine
            return engine

    def _fallback_payload(self, shard_id: int, q: np.ndarray,
                          kind: str, k: int) -> List[Tuple[int, int]]:
        """The failed shard's partial answer, computed locally and exact."""
        engine = self._fallback_engine(shard_id)
        owned = self.topology.owned_globals(shard_id)
        if kind == "rtk":
            local = engine.reverse_topk(q, k).weights
            return [int(owned[j]) for j in local]
        entries = engine.reverse_kranks(q, k).entries
        return [(int(rank), int(owned[j])) for rank, j in entries]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _resolve_query_point(self, vector, product) -> np.ndarray:
        """Canonicalize the query point for the local fallback path."""
        if product is not None:
            size = self.products.size
            if not 0 <= int(product) < size:
                raise InvalidParameterError(
                    f"product index must be in [0, {size})"
                )
            vector = self.products[int(product)]
        return check_query_point(vector, self.products.dim)

    def _shard_query(self, ctx, trace_id: Optional[str], shard_id: int,
                     vector, product, kind: str, k: int,
                     deadline: Deadline) -> list:
        """One shard sub-request on a pool thread; returns global-id payload.

        Raises on any failure (open breaker, transport, timeout); the
        caller decides between fallback and omission.
        """
        with use_context(ctx):
            with span("cluster.shard_query") as sp:
                sp.annotate("shard", shard_id)
                breaker = self.breakers[shard_id]
                if not breaker.allow():
                    sp.annotate("breaker_open", True)
                    raise ServiceUnavailableError(
                        f"shard {shard_id}: circuit open"
                    )
                remaining = deadline.remaining()
                timeout_s = self.shard_timeout_s
                if remaining is not None:
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"shard {shard_id}: deadline exhausted before "
                            "the sub-request was sent"
                        )
                    timeout_s = min(timeout_s, remaining)
                headers = ({"X-Trace-Id": trace_id}
                           if trace_id is not None else None)
                try:
                    answer = self.clients[shard_id].query(
                        vector=vector, product=product, kind=kind, k=k,
                        timeout_s=timeout_s, headers=headers,
                        timeout_ms=timeout_s * 1000.0,
                    )
                except Exception:
                    breaker.record_failure()
                    raise
                breaker.record_success()
                endpoint = answer.get("_endpoint")
                if endpoint is not None:
                    sp.annotate("endpoint", endpoint)
                if kind == "rtk":
                    return [self.topology.to_global(shard_id, int(j))
                            for j in answer["weights"]]
                return [(int(rank),
                         self.topology.to_global(shard_id, int(j)))
                        for rank, j in answer["entries"]]

    def query(self, vector=None, *, product: Optional[int] = None,
              kind: str = "rtk", k: int = 10,
              deadline_s: Optional[float] = None) -> dict:
        """Answer one RTK/RKR query over the whole cluster.

        Returns the JSON-ready answer dict — byte-identical to a
        single-node engine over the full ``W`` when every shard (or its
        exact fallback) contributed, with ``"degraded"`` /
        ``"degraded_shards"`` added whenever a shard sub-request failed.
        """
        if kind not in ("rtk", "rkr"):
            raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
        k = int(k)
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if (vector is None) == (product is None):
            raise InvalidParameterError(
                "provide exactly one of 'vector' or 'product'"
            )
        budget = deadline_s if deadline_s is not None else \
            self.default_deadline_s
        deadline = Deadline.after(budget)
        deadline.check()
        ctx = current()
        trace_id = current_trace_id()
        with span("cluster.scatter_gather") as sp:
            sp.annotate("kind", kind)
            sp.annotate("shards", self.topology.num_shards)
            futures = {
                shard_id: self._pool.submit(
                    self._shard_query, ctx, trace_id, shard_id,
                    vector, product, kind, k, deadline,
                )
                for shard_id in range(self.topology.num_shards)
            }
            payloads: List[list] = []
            failed: Dict[int, Exception] = {}
            for shard_id, future in futures.items():
                try:
                    payloads.append(future.result())
                except Exception as exc:
                    failed[shard_id] = exc
            degraded_shards = sorted(failed)
            if failed:
                sp.annotate("degraded_shards", degraded_shards)
                if self._fallback_available():
                    q_arr = self._resolve_query_point(vector, product)
                    for shard_id in degraded_shards:
                        with span("cluster.shard_fallback") as fb:
                            fb.annotate("shard", shard_id)
                            payloads.append(self._fallback_payload(
                                shard_id, q_arr, kind, k))
                elif len(failed) == self.topology.num_shards:
                    # Nothing answered and nothing to fall back on.
                    raise ServiceUnavailableError(
                        "no shard answered: " + "; ".join(
                            f"shard {sid}: {exc}"
                            for sid, exc in sorted(failed.items()))
                    )
            t0 = perf_counter()
            counter = OpCounter()
            if kind == "rtk":
                qualifying = frozenset(g for payload in payloads
                                       for g in payload)
                result = RTKResult(weights=qualifying, k=k, counter=counter)
            else:
                pairs = [tuple(pair) for payload in payloads
                         for pair in payload]
                result = make_rkr_result(pairs, k, counter)
            sp.annotate("merge_s", perf_counter() - t0)
        encoded = encode_result(result, kind)
        if degraded_shards:
            with self._lock:
                self.degraded_queries += 1
            encoded["degraded"] = True
            encoded["degraded_shards"] = degraded_shards
        return encoded

    # ------------------------------------------------------------------
    # mutation routing
    # ------------------------------------------------------------------

    def _broadcast(self, op: str, call) -> Dict[int, dict]:
        """Run ``call(client)`` on every shard concurrently; all or error."""
        futures = {
            shard_id: self._pool.submit(call, self.clients[shard_id])
            for shard_id in range(self.topology.num_shards)
        }
        receipts: Dict[int, dict] = {}
        failures: Dict[int, Exception] = {}
        for shard_id, future in futures.items():
            try:
                receipts[shard_id] = future.result()
            except Exception as exc:
                failures[shard_id] = exc
        if failures:
            applied = sorted(receipts)
            raise ServiceUnavailableError(
                f"broadcast {op} failed on shard(s) " + ", ".join(
                    f"{sid} ({exc})" for sid, exc in sorted(failures.items()))
                + (f"; already applied on shard(s) {applied} — the cluster "
                   "needs repair before further writes" if applied else "")
            )
        return receipts

    def route_mutation(self, path: str, payload: dict) -> dict:
        """Map one mutation route onto the owning shard(s).

        Weight writes go to the owning shard's primary (the per-shard
        client rotates on 409 until it finds the primary — the PR-3
        failover reused verbatim); product writes and
        ``rebuild``/``snapshot`` broadcast to every shard; ``compact``
        is refused (it renumbers shard-local indices; rebalance
        instead); ``/promote`` targets one shard's named endpoint.
        """
        payload = payload or {}
        with span("cluster.mutate") as sp:
            sp.annotate("path", path)
            if path == "/promote":
                return self._route_promote(payload)
            if path == "/compact":
                raise InvalidParameterError(
                    "compact is not cluster-safe: it renumbers shard-local "
                    "weight indices under the topology; run a rebalance "
                    "instead (see docs/operations.md)"
                )
            if path in ("/rebuild", "/snapshot"):
                op = path[1:]
                receipts = self._broadcast(
                    op, lambda client: client._request(
                        "POST", path, {}, mutation=True))
                self._note_mutation()
                return {"op": op, "shards": {str(sid): receipt
                                             for sid, receipt
                                             in sorted(receipts.items())}}
            if path in ("/insert", "/delete"):
                target = payload.get("type", "product")
                if target not in ("product", "weight"):
                    raise InvalidParameterError(
                        "'type' must be 'product' or 'weight'"
                    )
                if target == "product":
                    return self._route_product(path, payload)
                return self._route_weight(path, payload)
            raise InvalidParameterError(f"unknown mutation route {path}")

    def _note_mutation(self) -> None:
        with self._lock:
            self.mutations_routed += 1
            # The construction-time data sets no longer describe the
            # cluster; drop any built fallbacks so they cannot serve.
            self._fallbacks.clear()

    def _route_promote(self, payload: dict) -> dict:
        if "shard" not in payload:
            raise InvalidParameterError(
                "cluster promote requires 'shard' (and optionally "
                "'endpoint', one of that shard's replica URLs)"
            )
        shard_id = int(payload["shard"])
        spec = self.topology.shard(shard_id)
        endpoint = payload.get("endpoint")
        if endpoint is not None and endpoint.rstrip("/") not in spec.endpoints:
            raise InvalidParameterError(
                f"endpoint {endpoint!r} is not a replica of shard {shard_id}"
            )
        receipt = self.clients[shard_id].promote(endpoint)
        return {"op": "promote", "shard": shard_id, "receipt": receipt}

    def _route_product(self, path: str, payload: dict) -> dict:
        """Product mutations broadcast: every worker holds the full ``P``."""
        if path == "/insert":
            vector = payload.get("vector")
            if vector is None:
                raise InvalidParameterError("insert requires 'vector'")
            receipts = self._broadcast(
                "insert_product",
                lambda client: client.insert_product(vector))
            op = "insert_product"
        else:
            if "index" not in payload:
                raise InvalidParameterError("delete requires 'index'")
            index = int(payload["index"])
            receipts = self._broadcast(
                "delete_product",
                lambda client: client.delete_product(index))
            op = "delete_product"
        indices = {receipt.get("index") for receipt in receipts.values()}
        if len(indices) != 1:
            raise ServiceUnavailableError(
                f"{op}: shards disagree on the product index ({sorted(indices)}); "
                "the replicated product sets have diverged — repair before "
                "further writes"
            )
        self._note_mutation()
        return {"op": op, "index": indices.pop(),
                "shards": {str(sid): receipt
                           for sid, receipt in sorted(receipts.items())}}

    def _route_weight(self, path: str, payload: dict) -> dict:
        """Weight mutations go to exactly the owning shard's primary."""
        if path == "/insert":
            vector = payload.get("vector")
            if vector is None:
                raise InvalidParameterError("insert requires 'vector'")
            with self._lock:
                next_global = self._next_global
            shard_id = self.topology.insert_owner(next_global)
            receipt = self.clients[shard_id].insert_weight(
                vector, renormalize=bool(payload.get("renormalize", False)))
            global_index = self.topology.to_global(shard_id,
                                                   int(receipt["index"]))
            with self._lock:
                self._next_global = max(self._next_global, global_index) + 1
            self._note_mutation()
            return {"op": "insert_weight", "shard": shard_id,
                    "index": global_index,
                    "local_index": int(receipt["index"]),
                    "lsn": receipt.get("lsn")}
        if "index" not in payload:
            raise InvalidParameterError("delete requires 'index'")
        global_index = int(payload["index"])
        if not 0 <= global_index:
            raise InvalidParameterError("'index' must be >= 0")
        shard_id, local = self.topology.to_local(global_index)
        receipt = self.clients[shard_id].delete_weight(local)
        self._note_mutation()
        return {"op": "delete_weight", "shard": shard_id,
                "index": global_index, "local_index": local,
                "lsn": receipt.get("lsn")}

    # ------------------------------------------------------------------
    # health / introspection
    # ------------------------------------------------------------------

    def shard_health(self, timeout_s: float = 1.0) -> dict:
        """Fan ``/healthz`` out to every shard (the ``/cluster/healthz`` body).

        A shard is ``ok`` when its worker answers healthily, ``degraded``
        when it answers but reports trouble, and ``unreachable`` when it
        does not answer at all; the aggregate ``status`` is the worst of
        them.  Never raises — health must be readable mid-outage.
        """
        def probe(shard_id: int) -> dict:
            entry = {
                "shard_id": shard_id,
                "endpoints": list(self.topology.shard(shard_id).endpoints),
                "breaker": self.breakers[shard_id].snapshot()["state"],
            }
            try:
                health = self.clients[shard_id].healthz(
                    timeout_s=timeout_s, retries=0)
            except Exception as exc:
                entry["status"] = "unreachable"
                entry["error"] = f"{type(exc).__name__}: {exc}"
                return entry
            entry["status"] = health.get("status", "ok")
            entry["worker"] = health
            return entry

        futures = [self._pool.submit(probe, shard_id)
                   for shard_id in range(self.topology.num_shards)]
        shards = [future.result() for future in futures]
        worst = "ok"
        if any(s["status"] == "degraded" for s in shards):
            worst = "degraded"
        if any(s["status"] == "unreachable" for s in shards):
            worst = "unreachable"
        with self._lock:
            degraded_queries = self.degraded_queries
            mutations_routed = self.mutations_routed
        return {
            "status": worst,
            "shards": shards,
            "degraded_queries": degraded_queries,
            "mutations_routed": mutations_routed,
            "fallback": self._fallback_available(),
        }

    def stats(self) -> dict:
        """Cheap coordinator counters for ``/metrics`` and ``/info``."""
        with self._lock:
            return {
                "shards": self.topology.num_shards,
                "partitioner": self.topology.partitioner,
                "total_weights": self.topology.total_weights,
                "next_global": self._next_global,
                "degraded_queries": self.degraded_queries,
                "mutations_routed": self.mutations_routed,
                "fallback_available": (self.products is not None
                                       and self.weights is not None
                                       and self.mutations_routed == 0),
                "breakers": {str(i): b.snapshot()["state"]
                             for i, b in enumerate(self.breakers)},
            }

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
