"""The scatter-gather coordinator: one query in, N shard sub-requests out.

For every RTK/RKR request the coordinator fans the query to each shard's
:class:`~repro.service.client.ServiceClient` concurrently, translates
the shard-local weight indices in each partial answer back to global
indices through the :class:`~repro.cluster.topology.ClusterTopology`,
and merges with the exact semantics proven in-process by
:meth:`repro.vectorized.shard.ShardedGirRRQ._scatter_gather`:

* RTK — per-shard answers are disjoint global index sets; the merged
  answer is their union;
* RKR — each shard returns its local top-k ``(rank, index)`` pairs with
  exact ranks (``rank(w, q)`` never depends on other weights); the
  global answer is the k lexicographically smallest pairs — byte-
  identical to the single-node heap's tie-break (smaller global index
  wins on equal ranks).

Partial failure is survived, never hidden.  Each shard has its own
:class:`~repro.resilience.breaker.CircuitBreaker`; a shard that fails
(transport error, per-shard deadline, open breaker) is answered by the
coordinator's **degraded-but-exact** local fallback — a shard-slice
engine kept in lock-step with every mutation routed through this
coordinator — and the response is flagged ``"degraded": true`` with
``"degraded_shards": [ids]``.  Without local fallback data (or when a
shard's fallback has been proven stale — an out-of-band write observed
through the worker's ``/healthz`` LSN, or a replay receipt mismatch)
the failed shard's slice is *omitted* and the same flags mark the
answer partial.  Healthy responses carry neither key, so they stay
byte-identical to a single-node
:class:`~repro.vectorized.girkernel.GirKernelRRQ` /
:class:`~repro.algorithms.naive.NaiveRRQ` serving the full ``W``.

Tail latency is defended, not just availability (one straggler gates
every scatter-gather merge):

* **hedged reads** — with ``hedge=True`` and a per-query budget, a
  shard whose primary has not answered within a p95-derived delay gets
  a backup probe to one of its standbys; the first answer wins and the
  merge is unchanged (both replicas serve the same shard slice).  The
  delay for shard *s* derives from the *other* shards' recent
  latencies, so a permanently slow shard cannot veto its own hedges.
* **load shedding** — at most ``max_inflight`` fan-outs run at once;
  excess queries are rejected with a structured 503 carrying
  ``retry_after_s`` (surfaced as HTTP ``Retry-After``), so a failover
  storm cannot pile threads onto an already struggling cluster.

Failover is a routing flip: :meth:`replace_shard_endpoints` atomically
swaps one shard's endpoint list (new primary first), rebuilds that
shard's client, and resets its breaker — the primitive
:class:`~repro.cluster.supervision.ClusterSupervisor` drives after
promoting a standby.  The coordinator is the routing table's single
writer, which is what keeps failover split-brain-free.

Writes route by ownership: weight mutations go to the owning shard's
primary (the per-shard client's 409 rotate-on-standby failover from the
durability layer applies unchanged), product mutations broadcast to all
shards (every worker holds the full ``P``), and ``compact`` is refused
— it would renumber shard-local indices under the topology's feet; the
documented procedure is a rebalance.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import check_query_point
from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceUnavailableError,
)
from ..obs.trace import current, current_trace_id, span, use_context
from ..queries.types import RTKResult, make_rkr_result
from ..resilience.breaker import CircuitBreaker
from ..service.client import ServiceClient
from ..service.limits import Deadline
from ..service.server import encode_result
from ..stats.counters import OpCounter
from .topology import ClusterTopology

#: Default per-shard sub-request socket timeout, seconds.
DEFAULT_SHARD_TIMEOUT_S = 5.0

#: Default consecutive sub-request failures that open a shard's breaker.
DEFAULT_SHARD_BREAKER_THRESHOLD = 3

#: Default cool-down before a shard breaker admits a half-open probe.
DEFAULT_SHARD_BREAKER_RESET_S = 5.0

#: Default backup probes one query may issue across all its shards.
DEFAULT_HEDGE_BUDGET = 2

#: Floor for the hedge delay (and the cold-start delay before enough
#: latency samples exist to derive a p95).
DEFAULT_HEDGE_MIN_DELAY_S = 0.01

#: Default bound on concurrently running fan-outs before 503s start.
DEFAULT_MAX_INFLIGHT = 64

#: Per-shard recent-latency window the hedge delay derives from.
LATENCY_WINDOW = 128

#: Minimum other-shard samples before the p95 replaces the floor delay.
_MIN_HEDGE_SAMPLES = 8

#: Mutation ops applied on every shard (all workers hold the full ``P``).
_BROADCAST_OPS = ("insert_product", "delete_product", "rebuild", "snapshot")


class _FallbackStaleError(RuntimeError):
    """Internal: a fallback replay receipt disagreed with the cluster."""


class _HedgeBudget:
    """The per-query cap on backup probes (thread-safe take-one)."""

    __slots__ = ("_remaining", "_lock")

    def __init__(self, budget: int):
        self._remaining = int(budget)
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


def _p95(samples: List[float]) -> float:
    samples = sorted(samples)
    return samples[int(0.95 * (len(samples) - 1))]


class ClusterCoordinator:
    """Scatter-gather over the shards of one :class:`ClusterTopology`.

    Parameters
    ----------
    topology:
        The membership manifest (endpoints, partitioner, counts).
    products, weights:
        The full data sets, when available (the local launcher always
        has them).  They power the degraded-but-exact fallback: a failed
        shard's partial answer is recomputed locally over exactly its
        weight slice.  Mutations routed through this coordinator are
        replayed into the fallback engines (receipt-verified), so the
        fallback stays exact across writes; it is withdrawn per shard
        only when proven stale.  Omit the data sets and a failed shard's
        slice is omitted from (flagged) answers instead.
    shard_timeout_s:
        Per-shard sub-request socket timeout; each sub-request is
        additionally capped by the request's remaining deadline budget.
    retries:
        Per-shard sub-request retries (default 0: fail fast to the
        fallback instead of stalling the merge behind backoff sleeps).
    default_deadline_s:
        Deadline applied to queries that do not carry their own.
    hedge:
        Enable hedged reads against standby replicas (off by default:
        it costs duplicate probes and needs per-shard replicas).
    hedge_budget:
        Backup probes one query may issue across all its shards.
    hedge_min_delay_s:
        Floor (and cold-start value) for the p95-derived hedge delay.
    max_inflight:
        Concurrently running fan-outs admitted before queries are shed
        with a structured 503 (``None`` disables shedding).
    """

    def __init__(self, topology: ClusterTopology,
                 products=None, weights=None,
                 shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
                 retries: int = 0,
                 default_deadline_s: Optional[float] = None,
                 breaker_threshold: int = DEFAULT_SHARD_BREAKER_THRESHOLD,
                 breaker_reset_s: float = DEFAULT_SHARD_BREAKER_RESET_S,
                 hedge: bool = False,
                 hedge_budget: int = DEFAULT_HEDGE_BUDGET,
                 hedge_min_delay_s: float = DEFAULT_HEDGE_MIN_DELAY_S,
                 max_inflight: Optional[int] = DEFAULT_MAX_INFLIGHT):
        if shard_timeout_s <= 0:
            raise InvalidParameterError("shard_timeout_s must be positive")
        if hedge_budget < 0:
            raise InvalidParameterError("hedge_budget must be >= 0")
        if hedge_min_delay_s < 0:
            raise InvalidParameterError("hedge_min_delay_s must be >= 0")
        if max_inflight is not None and max_inflight <= 0:
            raise InvalidParameterError(
                "max_inflight must be positive or None"
            )
        self.topology = topology
        self.products = products
        self.weights = weights
        self.shard_timeout_s = float(shard_timeout_s)
        self.default_deadline_s = default_deadline_s
        self._retries = int(retries)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset_s = float(breaker_reset_s)
        self.clients: List[ServiceClient] = [
            ServiceClient(list(spec.endpoints), timeout_s=shard_timeout_s,
                          retries=retries, annotate_endpoint=True)
            for spec in topology.shards
        ]
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(failure_threshold=breaker_threshold,
                           reset_after_s=breaker_reset_s)
            for _ in topology.shards
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, topology.num_shards),
            thread_name_prefix="rrq-cluster",
        )
        # Hedge probes run on their own pool: a probe waiting on the
        # fan-out pool would deadlock once every fan-out thread is busy
        # waiting on probes.
        self.hedge_enabled = bool(hedge)
        self.hedge_budget = int(hedge_budget)
        self.hedge_min_delay_s = float(hedge_min_delay_s)
        self._hedge_pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=max(4, 2 * topology.num_shards),
                               thread_name_prefix="rrq-hedge")
            if self.hedge_enabled else None
        )
        self._latency_lock = threading.Lock()
        self._latency: List[deque] = [deque(maxlen=LATENCY_WINDOW)
                                      for _ in topology.shards]
        self._max_inflight = max_inflight
        self._inflight = (threading.BoundedSemaphore(int(max_inflight))
                          if max_inflight is not None else None)
        self._lock = threading.Lock()
        self._fallbacks: Dict[int, object] = {}
        #: Shard id -> why its local fallback can no longer be trusted.
        self._fallback_stale: Dict[int, str] = {}
        #: Ordered replay log of every data mutation routed through this
        #: coordinator (the fallback engines' source of truth).
        self._journal: List[tuple] = []
        #: Highest worker LSN this coordinator acked or observed per
        #: shard; a worker reporting *past* it wrote out of band.
        self._expected_lsn: Dict[int, int] = {}
        #: Last sub-request failure per shard (operator diagnostics).
        self._last_errors: Dict[int, str] = {}
        #: Global index the next routed weight insert will receive.
        self._next_global = topology.total_weights
        #: Cluster mutations applied through this coordinator.
        self.mutations_routed = 0
        #: Queries answered with at least one degraded shard.
        self.degraded_queries = 0
        #: Queries rejected by the in-flight bound.
        self.shed_queries = 0
        #: Backup probes issued / won by the backup replica.
        self.hedged_probes = 0
        self.hedge_wins = 0
        #: Primary routing flips applied via replace_shard_endpoints.
        self.failovers = 0

    # ------------------------------------------------------------------
    # fallback (degraded-but-exact partials, mutation-synced)
    # ------------------------------------------------------------------

    def _fallback_ok_locked(self, shard_id: int) -> bool:
        return (self.products is not None and self.weights is not None
                and shard_id not in self._fallback_stale)

    def _fallback_available(self, shard_id: Optional[int] = None) -> bool:
        """Whether the local exact fallback can serve (one shard or all)."""
        with self._lock:
            if shard_id is not None:
                return self._fallback_ok_locked(shard_id)
            return (self.products is not None and self.weights is not None
                    and not self._fallback_stale)

    def _mark_stale_locked(self, shard_id: int, reason: str) -> None:
        self._fallback_stale.setdefault(shard_id, reason)
        self._fallbacks.pop(shard_id, None)

    def _apply_entry(self, engine, shard_id: int, entry: tuple) -> None:
        """Replay one journal entry into one shard's fallback engine.

        Receipt verification is the freshness proof: the index the local
        engine assigns must equal the index the live worker acked.  Any
        disagreement means the replay diverged from the cluster and the
        fallback is withdrawn (:class:`_FallbackStaleError`).
        """
        op = entry[0]
        if op == "insert_weight":
            _, owner, vector, local_index, renormalize = entry
            if owner != shard_id:
                return
            got = engine.insert_weight(np.asarray(vector, dtype=float),
                                       renormalize=renormalize)
            if int(got) != int(local_index):
                raise _FallbackStaleError(
                    f"insert_weight replay landed at local index {got}, "
                    f"worker acked {local_index}"
                )
        elif op == "delete_weight":
            _, owner, local_index = entry
            if owner != shard_id:
                return
            engine.delete_weight(int(local_index))
        elif op == "insert_product":
            _, vector, index = entry
            got = engine.insert_product(np.asarray(vector, dtype=float))
            if int(got) != int(index):
                raise _FallbackStaleError(
                    f"insert_product replay landed at index {got}, "
                    f"workers acked {index}"
                )
        elif op == "delete_product":
            engine.delete_product(int(entry[1]))
        else:  # pragma: no cover - journal writers are in this module
            raise _FallbackStaleError(f"unknown journal op {op!r}")

    def _fallback_engine(self, shard_id: int):
        """The shard's mutation-synced fallback engine (lazily built).

        Built from the construction-time data sets, then fast-forwarded
        through the mutation journal so it matches the live worker's
        slice exactly — each replayed receipt is verified on the way.
        """
        from ..data.datasets import ProductSet, WeightSet
        from ..ext.dynamic import DynamicRRQEngine

        with self._lock:
            if shard_id in self._fallback_stale:
                raise ServiceUnavailableError(
                    f"shard {shard_id}: fallback withdrawn "
                    f"({self._fallback_stale[shard_id]})"
                )
            engine = self._fallbacks.get(shard_id)
            if engine is None:
                owned = self.topology.owned_globals(shard_id)
                engine = DynamicRRQEngine.from_datasets(
                    ProductSet(self.products.values,
                               value_range=self.products.value_range),
                    WeightSet(self.weights.values[owned]),
                )
                try:
                    for entry in self._journal:
                        self._apply_entry(engine, shard_id, entry)
                except _FallbackStaleError as exc:
                    self._mark_stale_locked(shard_id, str(exc))
                    raise ServiceUnavailableError(
                        f"shard {shard_id}: fallback withdrawn ({exc})"
                    ) from None
                self._fallbacks[shard_id] = engine
            return engine

    def _fallback_payload(self, shard_id: int, q: np.ndarray,
                          kind: str, k: int) -> List[Tuple[int, int]]:
        """The failed shard's partial answer, computed locally and exact."""
        engine = self._fallback_engine(shard_id)
        if kind == "rtk":
            local = engine.reverse_topk(q, k).weights
            return [self.topology.to_global(shard_id, int(j)) for j in local]
        entries = engine.reverse_kranks(q, k).entries
        return [(int(rank), self.topology.to_global(shard_id, int(j)))
                for rank, j in entries]

    def _journal_mutation(self, entry: Optional[tuple],
                          lsns: Dict[int, Optional[int]]) -> None:
        """Record one routed mutation: journal, live replay, LSN receipts.

        ``entry`` is ``None`` for mutations that change no data
        (rebuild/snapshot) — they still count and still advance the
        expected LSNs.
        """
        with self._lock:
            self.mutations_routed += 1
            for sid, lsn in lsns.items():
                if lsn is not None:
                    self._expected_lsn[sid] = max(
                        self._expected_lsn.get(sid, 0), int(lsn))
            if entry is None or self.products is None or self.weights is None:
                return
            self._journal.append(entry)
            for shard_id, engine in list(self._fallbacks.items()):
                if shard_id in self._fallback_stale:
                    continue
                try:
                    self._apply_entry(engine, shard_id, entry)
                except _FallbackStaleError as exc:
                    self._mark_stale_locked(shard_id, str(exc))

    def observe_worker_health(self, shard_id: int, health: dict) -> None:
        """Freshness check against one worker's ``/healthz`` body.

        The first observation baselines the shard's LSN; any later
        observation *past* the highest LSN this coordinator acked means
        a write went around the coordinator — the shard's fallback can
        no longer claim exactness and is withdrawn.
        """
        last = health.get("last_lsn")
        if last is None:
            return
        last = int(last)
        with self._lock:
            expected = self._expected_lsn.get(shard_id)
            if expected is None:
                self._expected_lsn[shard_id] = last
            elif last > expected:
                self._mark_stale_locked(
                    shard_id,
                    f"out-of-band write: worker at lsn {last}, "
                    f"coordinator acked up to {expected}"
                )
                self._expected_lsn[shard_id] = last

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _resolve_query_point(self, vector, product) -> np.ndarray:
        """Canonicalize the query point for the local fallback path."""
        if product is not None:
            size = self.products.size
            if not 0 <= int(product) < size:
                raise InvalidParameterError(
                    f"product index must be in [0, {size})"
                )
            vector = self.products[int(product)]
        return check_query_point(vector, self.products.dim)

    def _note_shard_error(self, shard_id: int, exc: Exception) -> None:
        with self._lock:
            self._last_errors[shard_id] = f"{type(exc).__name__}: {exc}"

    def _record_latency(self, shard_id: int, seconds: float) -> None:
        with self._latency_lock:
            self._latency[shard_id].append(float(seconds))

    def hedge_delay_s(self, shard_id: int) -> float:
        """The backup-probe delay for one shard.

        The p95 of the *other* shards' recent sub-request latencies: a
        permanently slow shard inflates only its own samples, so its
        hedges keep firing.  Falls back to the configured floor until
        enough samples exist.
        """
        with self._latency_lock:
            samples = [s for sid, window in enumerate(self._latency)
                       if sid != shard_id for s in window]
        if len(samples) < _MIN_HEDGE_SAMPLES:
            return self.hedge_min_delay_s
        return max(self.hedge_min_delay_s, _p95(samples))

    def _retry_after_hint_s(self) -> float:
        """How long a shed caller should wait (recent p95 fan-out cost)."""
        with self._latency_lock:
            samples = [s for window in self._latency for s in window]
        if not samples:
            return 0.05
        return max(0.05, _p95(samples))

    def _client_call(self, shard_id: int, endpoint: Optional[str],
                     vector, product, kind: str, k: int,
                     timeout_s: float, headers):
        return self.clients[shard_id].query(
            vector=vector, product=product, kind=kind, k=k,
            timeout_s=timeout_s, headers=headers,
            timeout_ms=timeout_s * 1000.0, endpoint=endpoint,
        )

    def _hedged_query(self, sp, shard_id: int, vector, product, kind: str,
                      k: int, timeout_s: float, headers,
                      hedge_ctx: Optional[_HedgeBudget]):
        """One shard answer, with an optional backup probe to a standby.

        The primary attempt goes through the client's normal endpoint
        rotation; the backup probe is pinned to the first standby.  The
        first *successful* answer wins (both replicas serve the same
        slice); only when both attempts fail does the primary's failure
        surface.
        """
        spec = self.topology.shard(shard_id)
        pool = self._hedge_pool
        if (pool is None or hedge_ctx is None or not spec.replicas):
            return self._client_call(shard_id, None, vector, product,
                                     kind, k, timeout_s, headers)
        primary = pool.submit(self._client_call, shard_id, None, vector,
                              product, kind, k, timeout_s, headers)
        try:
            return primary.result(timeout=self.hedge_delay_s(shard_id))
        except FutureTimeoutError:
            pass
        if not hedge_ctx.take():
            return primary.result()
        with self._lock:
            self.hedged_probes += 1
        sp.annotate("hedged", True)
        backup = pool.submit(self._client_call, shard_id,
                             spec.replicas[0], vector, product, kind, k,
                             timeout_s, headers)
        pending = {primary: "primary", backup: "backup"}
        primary_error: Optional[Exception] = None
        while pending:
            done, _ = futures_wait(list(pending),
                                   return_when=FIRST_COMPLETED)
            for future in done:
                origin = pending.pop(future)
                try:
                    answer = future.result()
                except Exception as exc:
                    if origin == "primary" or primary_error is None:
                        primary_error = exc
                    continue
                if origin == "backup":
                    with self._lock:
                        self.hedge_wins += 1
                    sp.annotate("hedge_win", True)
                return answer
        raise primary_error

    def _shard_query(self, ctx, trace_id: Optional[str], shard_id: int,
                     vector, product, kind: str, k: int,
                     deadline: Deadline,
                     hedge_ctx: Optional[_HedgeBudget]) -> list:
        """One shard sub-request on a pool thread; returns global-id payload.

        Raises on any failure (open breaker, transport, timeout); the
        caller decides between fallback and omission.
        """
        with use_context(ctx):
            with span("cluster.shard_query") as sp:
                sp.annotate("shard", shard_id)
                breaker = self.breakers[shard_id]
                if not breaker.allow():
                    sp.annotate("breaker_open", True)
                    exc = ServiceUnavailableError(
                        f"shard {shard_id}: circuit open"
                    )
                    self._note_shard_error(shard_id, exc)
                    raise exc
                remaining = deadline.remaining()
                timeout_s = self.shard_timeout_s
                if remaining is not None:
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"shard {shard_id}: deadline exhausted before "
                            "the sub-request was sent"
                        )
                    timeout_s = min(timeout_s, remaining)
                headers = ({"X-Trace-Id": trace_id}
                           if trace_id is not None else None)
                started = perf_counter()
                try:
                    answer = self._hedged_query(sp, shard_id, vector,
                                                product, kind, k,
                                                timeout_s, headers,
                                                hedge_ctx)
                except Exception as exc:
                    breaker.record_failure()
                    self._note_shard_error(shard_id, exc)
                    raise
                breaker.record_success()
                self._record_latency(shard_id, perf_counter() - started)
                endpoint = answer.get("_endpoint")
                if endpoint is not None:
                    sp.annotate("endpoint", endpoint)
                if kind == "rtk":
                    return [self.topology.to_global(shard_id, int(j))
                            for j in answer["weights"]]
                return [(int(rank),
                         self.topology.to_global(shard_id, int(j)))
                        for rank, j in answer["entries"]]

    def query(self, vector=None, *, product: Optional[int] = None,
              kind: str = "rtk", k: int = 10,
              deadline_s: Optional[float] = None) -> dict:
        """Answer one RTK/RKR query over the whole cluster.

        Returns the JSON-ready answer dict — byte-identical to a
        single-node engine over the full ``W`` when every shard (or its
        exact fallback) contributed, with ``"degraded"`` /
        ``"degraded_shards"`` added whenever a shard's slice came from
        the fallback or was omitted.  Sheds with a structured 503
        (``retry_after_s`` attached) once ``max_inflight`` fan-outs are
        already running.
        """
        if kind not in ("rtk", "rkr"):
            raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
        k = int(k)
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if (vector is None) == (product is None):
            raise InvalidParameterError(
                "provide exactly one of 'vector' or 'product'"
            )
        if self._inflight is None:
            return self._fan_out(vector, product, kind, k, deadline_s)
        if not self._inflight.acquire(blocking=False):
            with self._lock:
                self.shed_queries += 1
            exc = ServiceUnavailableError(
                f"coordinator at capacity ({self._max_inflight} in-flight "
                "fan-outs); retry after backoff"
            )
            exc.retry_after_s = self._retry_after_hint_s()
            raise exc
        try:
            return self._fan_out(vector, product, kind, k, deadline_s)
        finally:
            self._inflight.release()

    def _fan_out(self, vector, product, kind: str, k: int,
                 deadline_s: Optional[float]) -> dict:
        """The scatter-gather behind :meth:`query` (admission already done)."""
        budget = deadline_s if deadline_s is not None else \
            self.default_deadline_s
        deadline = Deadline.after(budget)
        deadline.check()
        ctx = current()
        trace_id = current_trace_id()
        hedge_ctx = (_HedgeBudget(self.hedge_budget)
                     if self.hedge_enabled and self.hedge_budget > 0
                     else None)
        with span("cluster.scatter_gather") as sp:
            sp.annotate("kind", kind)
            sp.annotate("shards", self.topology.num_shards)
            futures = {
                shard_id: self._pool.submit(
                    self._shard_query, ctx, trace_id, shard_id,
                    vector, product, kind, k, deadline, hedge_ctx,
                )
                for shard_id in range(self.topology.num_shards)
            }
            payloads: List[list] = []
            failed: Dict[int, Exception] = {}
            for shard_id, future in futures.items():
                try:
                    payloads.append(future.result())
                except Exception as exc:
                    failed[shard_id] = exc
            degraded_shards = sorted(failed)
            if failed:
                sp.annotate("degraded_shards", degraded_shards)
                covered = 0
                q_arr = (self._resolve_query_point(vector, product)
                         if any(self._fallback_available(sid)
                                for sid in degraded_shards) else None)
                for shard_id in degraded_shards:
                    if not self._fallback_available(shard_id):
                        continue
                    with span("cluster.shard_fallback") as fb:
                        fb.annotate("shard", shard_id)
                        try:
                            payloads.append(self._fallback_payload(
                                shard_id, q_arr, kind, k))
                        except ServiceUnavailableError:
                            continue  # withdrawn mid-flight: omit slice
                        covered += 1
                if not covered and len(failed) == self.topology.num_shards:
                    # Nothing answered and nothing to fall back on.
                    raise ServiceUnavailableError(
                        "no shard answered: " + "; ".join(
                            f"shard {sid}: {exc}"
                            for sid, exc in sorted(failed.items()))
                    )
            t0 = perf_counter()
            counter = OpCounter()
            if kind == "rtk":
                qualifying = frozenset(g for payload in payloads
                                       for g in payload)
                result = RTKResult(weights=qualifying, k=k, counter=counter)
            else:
                pairs = [tuple(pair) for payload in payloads
                         for pair in payload]
                result = make_rkr_result(pairs, k, counter)
            sp.annotate("merge_s", perf_counter() - t0)
        encoded = encode_result(result, kind)
        if degraded_shards:
            with self._lock:
                self.degraded_queries += 1
            encoded["degraded"] = True
            encoded["degraded_shards"] = degraded_shards
        return encoded

    # ------------------------------------------------------------------
    # routing-table changes (failover)
    # ------------------------------------------------------------------

    def replace_shard_endpoints(self, shard_id: int,
                                endpoints: Sequence[str]) -> dict:
        """Atomically flip one shard's routing (the failover primitive).

        Replaces the shard's endpoint list (new primary first), rebuilds
        its client, and — when the primary actually changed — resets its
        breaker (the promoted replica must not inherit its predecessor's
        open circuit) and counts a failover.  The coordinator is the
        single writer of its routing table: all flips serialize on the
        coordinator lock, so two supervisors can never install
        conflicting primaries (split-brain avoidance).
        """
        with self._lock:
            old_primary = self.topology.shard(shard_id).primary
            self.topology = self.topology.with_shard_endpoints(shard_id,
                                                               endpoints)
            spec = self.topology.shard(shard_id)
            self.clients[shard_id] = ServiceClient(
                list(spec.endpoints), timeout_s=self.shard_timeout_s,
                retries=self._retries, annotate_endpoint=True,
            )
            flipped = spec.primary != old_primary
            if flipped:
                self.failovers += 1
                self.breakers[shard_id] = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    reset_after_s=self._breaker_reset_s,
                )
                self._last_errors.pop(shard_id, None)
            return {"shard": shard_id, "primary": spec.primary,
                    "endpoints": list(spec.endpoints), "flipped": flipped}

    # ------------------------------------------------------------------
    # mutation routing
    # ------------------------------------------------------------------

    def _broadcast(self, op: str, call) -> Dict[int, dict]:
        """Run ``call(client)`` on every shard concurrently; all or error."""
        futures = {
            shard_id: self._pool.submit(call, self.clients[shard_id])
            for shard_id in range(self.topology.num_shards)
        }
        receipts: Dict[int, dict] = {}
        failures: Dict[int, Exception] = {}
        for shard_id, future in futures.items():
            try:
                receipts[shard_id] = future.result()
            except Exception as exc:
                failures[shard_id] = exc
        if failures:
            applied = sorted(receipts)
            raise ServiceUnavailableError(
                f"broadcast {op} failed on shard(s) " + ", ".join(
                    f"{sid} ({exc})" for sid, exc in sorted(failures.items()))
                + (f"; already applied on shard(s) {applied} — the cluster "
                   "needs repair before further writes" if applied else "")
            )
        return receipts

    def route_mutation(self, path: str, payload: dict) -> dict:
        """Map one mutation route onto the owning shard(s).

        Weight writes go to the owning shard's primary (the per-shard
        client rotates on 409 until it finds the primary — the PR-3
        failover reused verbatim); product writes and
        ``rebuild``/``snapshot`` broadcast to every shard; ``compact``
        is refused (it renumbers shard-local indices; rebalance
        instead); ``/promote`` targets one shard's named endpoint.
        """
        payload = payload or {}
        with span("cluster.mutate") as sp:
            sp.annotate("path", path)
            if path == "/promote":
                return self._route_promote(payload)
            if path == "/compact":
                raise InvalidParameterError(
                    "compact is not cluster-safe: it renumbers shard-local "
                    "weight indices under the topology; run a rebalance "
                    "instead (see docs/operations.md)"
                )
            if path in ("/rebuild", "/snapshot"):
                op = path[1:]
                receipts = self._broadcast(
                    op, lambda client: client._request(
                        "POST", path, {}, mutation=True))
                self._journal_mutation(None, {
                    sid: receipt.get("lsn")
                    for sid, receipt in receipts.items()
                })
                return {"op": op, "shards": {str(sid): receipt
                                             for sid, receipt
                                             in sorted(receipts.items())}}
            if path in ("/insert", "/delete"):
                target = payload.get("type", "product")
                if target not in ("product", "weight"):
                    raise InvalidParameterError(
                        "'type' must be 'product' or 'weight'"
                    )
                if target == "product":
                    return self._route_product(path, payload)
                return self._route_weight(path, payload)
            raise InvalidParameterError(f"unknown mutation route {path}")

    def _route_promote(self, payload: dict) -> dict:
        if "shard" not in payload:
            raise InvalidParameterError(
                "cluster promote requires 'shard' (and optionally "
                "'endpoint', one of that shard's replica URLs)"
            )
        shard_id = int(payload["shard"])
        spec = self.topology.shard(shard_id)
        endpoint = payload.get("endpoint")
        if endpoint is not None and endpoint.rstrip("/") not in spec.endpoints:
            raise InvalidParameterError(
                f"endpoint {endpoint!r} is not a replica of shard {shard_id}"
            )
        receipt = self.clients[shard_id].promote(endpoint)
        if receipt.get("last_lsn") is not None:
            with self._lock:
                self._expected_lsn[shard_id] = max(
                    self._expected_lsn.get(shard_id, 0),
                    int(receipt["last_lsn"]))
        return {"op": "promote", "shard": shard_id, "receipt": receipt}

    def _route_product(self, path: str, payload: dict) -> dict:
        """Product mutations broadcast: every worker holds the full ``P``."""
        if path == "/insert":
            vector = payload.get("vector")
            if vector is None:
                raise InvalidParameterError("insert requires 'vector'")
            receipts = self._broadcast(
                "insert_product",
                lambda client: client.insert_product(vector))
            op = "insert_product"
        else:
            if "index" not in payload:
                raise InvalidParameterError("delete requires 'index'")
            index = int(payload["index"])
            receipts = self._broadcast(
                "delete_product",
                lambda client: client.delete_product(index))
            op = "delete_product"
        indices = {receipt.get("index") for receipt in receipts.values()}
        if len(indices) != 1:
            raise ServiceUnavailableError(
                f"{op}: shards disagree on the product index ({sorted(indices)}); "
                "the replicated product sets have diverged — repair before "
                "further writes"
            )
        index = indices.pop()
        lsns = {sid: receipt.get("lsn") for sid, receipt in receipts.items()}
        if op == "insert_product":
            entry = ("insert_product",
                     [float(x) for x in payload["vector"]], int(index))
        else:
            entry = ("delete_product", int(index))
        self._journal_mutation(entry, lsns)
        return {"op": op, "index": index,
                "shards": {str(sid): receipt
                           for sid, receipt in sorted(receipts.items())}}

    def _route_weight(self, path: str, payload: dict) -> dict:
        """Weight mutations go to exactly the owning shard's primary."""
        if path == "/insert":
            vector = payload.get("vector")
            if vector is None:
                raise InvalidParameterError("insert requires 'vector'")
            renormalize = bool(payload.get("renormalize", False))
            with self._lock:
                next_global = self._next_global
            shard_id = self.topology.insert_owner(next_global)
            receipt = self.clients[shard_id].insert_weight(
                vector, renormalize=renormalize)
            local_index = int(receipt["index"])
            global_index = self.topology.to_global(shard_id, local_index)
            with self._lock:
                self._next_global = max(self._next_global, global_index) + 1
            self._journal_mutation(
                ("insert_weight", shard_id,
                 [float(x) for x in vector], local_index, renormalize),
                {shard_id: receipt.get("lsn")},
            )
            return {"op": "insert_weight", "shard": shard_id,
                    "index": global_index,
                    "local_index": local_index,
                    "lsn": receipt.get("lsn")}
        if "index" not in payload:
            raise InvalidParameterError("delete requires 'index'")
        global_index = int(payload["index"])
        if not 0 <= global_index:
            raise InvalidParameterError("'index' must be >= 0")
        shard_id, local = self.topology.to_local(global_index)
        receipt = self.clients[shard_id].delete_weight(local)
        self._journal_mutation(
            ("delete_weight", shard_id, local),
            {shard_id: receipt.get("lsn")},
        )
        return {"op": "delete_weight", "shard": shard_id,
                "index": global_index, "local_index": local,
                "lsn": receipt.get("lsn")}

    # ------------------------------------------------------------------
    # health / introspection
    # ------------------------------------------------------------------

    def shard_health(self, timeout_s: float = 1.0) -> dict:
        """Fan ``/healthz`` out to every shard (the ``/cluster/healthz`` body).

        A shard is ``ok`` when its worker answers healthily, ``degraded``
        when it answers but reports trouble, and ``unreachable`` when it
        does not answer at all; the aggregate ``status`` is the worst of
        them and ``degraded_shards`` lists the offenders.  Each entry
        carries the shard's full breaker snapshot (state, consecutive
        failures) and the last sub-request error, so operators can see
        *why* a shard is degraded.  Never raises — health must be
        readable mid-outage.
        """
        def probe(shard_id: int) -> dict:
            breaker = self.breakers[shard_id].snapshot()
            with self._lock:
                last_error = self._last_errors.get(shard_id)
                fallback_ok = self._fallback_ok_locked(shard_id)
                stale_reason = self._fallback_stale.get(shard_id)
            entry = {
                "shard_id": shard_id,
                "endpoints": list(self.topology.shard(shard_id).endpoints),
                "breaker": breaker["state"],
                "breaker_detail": breaker,
                "consecutive_failures": breaker["consecutive_failures"],
                "fallback": fallback_ok,
            }
            if last_error is not None:
                entry["last_error"] = last_error
            if stale_reason is not None:
                entry["fallback_stale_reason"] = stale_reason
            try:
                health = self.clients[shard_id].healthz(
                    timeout_s=timeout_s, retries=0)
            except Exception as exc:
                entry["status"] = "unreachable"
                entry["error"] = f"{type(exc).__name__}: {exc}"
                return entry
            self.observe_worker_health(shard_id, health)
            entry["status"] = health.get("status", "ok")
            entry["worker"] = health
            return entry

        futures = [self._pool.submit(probe, shard_id)
                   for shard_id in range(self.topology.num_shards)]
        shards = [future.result() for future in futures]
        worst = "ok"
        if any(s["status"] == "degraded" for s in shards):
            worst = "degraded"
        if any(s["status"] == "unreachable" for s in shards):
            worst = "unreachable"
        with self._lock:
            degraded_queries = self.degraded_queries
            mutations_routed = self.mutations_routed
        return {
            "status": worst,
            "shards": shards,
            "degraded_shards": sorted(s["shard_id"] for s in shards
                                      if s["status"] != "ok"),
            "degraded_queries": degraded_queries,
            "mutations_routed": mutations_routed,
            "failovers": self.failovers,
            "fallback": self._fallback_available(),
        }

    def stats(self) -> dict:
        """Cheap coordinator counters for ``/metrics`` and ``/info``."""
        with self._lock:
            return {
                "shards": self.topology.num_shards,
                "partitioner": self.topology.partitioner,
                "total_weights": self.topology.total_weights,
                "next_global": self._next_global,
                "degraded_queries": self.degraded_queries,
                "mutations_routed": self.mutations_routed,
                "fallback_available": (self.products is not None
                                       and self.weights is not None
                                       and not self._fallback_stale),
                "fallback_stale_shards": sorted(self._fallback_stale),
                "breakers": {str(i): b.snapshot()["state"]
                             for i, b in enumerate(self.breakers)},
                "failovers": self.failovers,
                "hedge": {
                    "enabled": self.hedge_enabled,
                    "budget": self.hedge_budget,
                    "probes": self.hedged_probes,
                    "wins": self.hedge_wins,
                },
                "shedding": {
                    "max_inflight": self._max_inflight,
                    "shed_queries": self.shed_queries,
                },
            }

    def close(self) -> None:
        """Shut the fan-out (and hedge) pools down (idempotent)."""
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
        hedge_pool = getattr(self, "_hedge_pool", None)
        if hedge_pool is not None:
            hedge_pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
