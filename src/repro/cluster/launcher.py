"""Stand up a whole local cluster: N worker processes + the coordinator.

:class:`LocalCluster` is the dev/test harness behind the
``repro-rrq cluster`` subcommand and the cluster integration suite.  It

1. slices the global weight set with the topology's partitioner and
   seeds one durability directory per worker via
   :meth:`~repro.durability.engine.DurableDynamicRRQ.bootstrap`
   (products fully replicated, weights partitioned);
2. spawns each worker as a **real subprocess** running
   ``repro-rrq serve --durable`` on an ephemeral port — the same entry
   point production workers use, no in-process shortcuts — and parses
   the serve banner for its URL;
3. optionally boots ``replicas`` standbys per shard: each gets its own
   durability directory seeded with the *same* slice (identical LSN
   lineage, so tailing starts incremental, not with a full-state
   reset) and runs ``--standby-of <primary>`` to tail the primary's
   WAL feed;
4. builds the :class:`~repro.cluster.topology.ClusterTopology` from the
   live worker URLs (primary first per shard) and serves the
   coordinator's HTTP front door over it on a daemon thread;
5. with ``supervise=True``, attaches a
   :class:`~repro.cluster.supervision.ClusterSupervisor` whose restart
   hook respawns a dead worker *as a standby* from its own data
   directory — the full self-healing loop.

Workers can be SIGKILLed individually (:meth:`LocalCluster.kill_worker`,
:meth:`kill_standby`) to exercise the degraded-shard and failover
paths; :meth:`close` tears the whole cluster down, supervisor first,
workers next, coordinator last.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..data.datasets import WeightSet
from ..errors import InvalidParameterError, ServiceUnavailableError
from ..service.client import ServiceClient
from .coordinator import ClusterCoordinator
from .router_server import (
    ClusterService,
    make_cluster_server,
)
from .supervision import ClusterSupervisor, FailureDetector
from .topology import ClusterTopology, partition_weight_indices

#: How long a worker may take to print its serve banner / become healthy.
WORKER_START_TIMEOUT_S = 30.0


class WorkerProcess:
    """One ``repro-rrq serve --durable`` subprocess with a parsed URL."""

    def __init__(self, directory, *extra_args,
                 start_timeout_s: float = WORKER_START_TIMEOUT_S):
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        env.setdefault("PYTHONUNBUFFERED", "1")
        self.directory = Path(directory)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(directory),
             "--durable", "--storage", "segmented",
             "--port", "0", "--batch-window-ms", "0",
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.url = self._parse_banner(start_timeout_s)

    def _parse_banner(self, timeout_s: float) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise ServiceUnavailableError(
                    f"worker for {self.directory} exited before serving "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith("serving durable") and " at http" in line:
                return line.rsplit(" at ", 1)[1].strip()
        raise ServiceUnavailableError(
            f"worker for {self.directory} printed no serve banner within "
            f"{timeout_s}s"
        )

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill9(self) -> None:
        """SIGKILL — no goodbye, no flush; the chaos path."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.proc.kill()
                self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


class LocalCluster:
    """N durable workers + a coordinator front door, all on localhost.

    Parameters
    ----------
    products, weights:
        The full data sets.  Products are replicated to every worker;
        weights are partitioned.  They are also handed to the
        coordinator (unless ``fallback=False``) so a SIGKILLed worker's
        slice can be answered exactly by the local fallback.
    num_workers:
        Worker process count (one shard each).
    replicas:
        Hot standbys per shard.  Each tails its primary's WAL feed from
        its own durability directory; the coordinator routes queries to
        the primary first and rotates to standbys on transport errors.
    partitioner:
        ``"range"`` or ``"mod"`` (see :mod:`repro.cluster.topology`).
    base_dir:
        Parent for the per-worker durability directories (a fresh
        temporary directory when omitted; remembered but never deleted —
        callers pass ``tmp_path`` in tests).
    fsync:
        Worker WAL fsync policy.  ``"never"`` by default: the launcher
        targets dev/test clusters, where startup speed beats crash
        durability; production workers are started individually.
    supervise:
        Attach a :class:`ClusterSupervisor` that fails dead primaries
        over to their freshest standby and restarts the corpse as a new
        standby from its own directory.
    supervisor_autostart:
        Run the supervisor's background thread (default).  Chaos tests
        pass ``False`` and drive :meth:`ClusterSupervisor.tick`
        manually for deterministic, bounded failover.
    detector_kwargs:
        Overrides for the supervisor's :class:`FailureDetector`
        (``probe_timeout_s``, ``suspect_after``, ``dead_after``, ...).
    hedge:
        Enable coordinator hedged reads against the standbys.
    tune_every:
        Have the supervisor run a per-shard auto-tuning sweep every
        ``tune_every`` ticks (0 disables; needs ``supervise=True``).
        Each shard primary tunes against its own weight partition, so
        grids diverge per local workload.
    worker_extra_args:
        Per-shard extra CLI args for that shard's *primary* worker
        (e.g. ``{0: ["--chaos-latency-ms", "200"]}`` to make shard 0 a
        deterministic straggler for hedging benchmarks).
    """

    def __init__(self, products, weights, num_workers: int = 3,
                 partitioner: str = "range",
                 base_dir=None, fsync: str = "never",
                 host: str = "127.0.0.1", coordinator_port: int = 0,
                 shard_timeout_s: float = 5.0, fallback: bool = True,
                 start_timeout_s: float = WORKER_START_TIMEOUT_S,
                 replicas: int = 0,
                 supervise: bool = False,
                 supervisor_autostart: bool = True,
                 detector_kwargs: Optional[dict] = None,
                 hedge: bool = False,
                 max_inflight: Optional[int] = None,
                 worker_extra_args: Optional[Dict[int, Sequence[str]]] = None,
                 tune_every: int = 0):
        if replicas < 0:
            raise InvalidParameterError("replicas must be >= 0")
        if supervise and replicas < 1:
            raise InvalidParameterError(
                "supervise=True needs replicas >= 1: failover promotes a "
                "standby, and a shard without one has nothing to promote"
            )
        if tune_every > 0 and not supervise:
            raise InvalidParameterError(
                "tune_every needs supervise=True: the supervisor's tick "
                "loop is what drives the per-shard tuning sweeps"
            )
        self.base_dir = Path(base_dir) if base_dir is not None else \
            Path(tempfile.mkdtemp(prefix="rrq-cluster-"))
        self.base_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._start_timeout_s = start_timeout_s
        self.workers: List[WorkerProcess] = []
        self.standbys: List[List[WorkerProcess]] = []
        #: Every process ever spawned (including restarted ones), for
        #: teardown; entries are never removed.
        self._procs: List[WorkerProcess] = []
        self._server = None
        self._thread = None
        self.service: Optional[ClusterService] = None
        self.supervisor: Optional[ClusterSupervisor] = None
        worker_extra_args = worker_extra_args or {}
        try:
            owned = partition_weight_indices(weights.size, num_workers,
                                             partitioner)
            for shard_id in range(num_workers):
                slice_weights = WeightSet(weights.values[owned[shard_id]])
                primary = self._spawn(
                    self.base_dir / f"shard{shard_id}",
                    products, slice_weights,
                    extra_args=tuple(worker_extra_args.get(shard_id, ())),
                )
                self.workers.append(primary)
                shard_standbys = []
                for j in range(replicas):
                    # Seeded with the same slice: identical LSN lineage,
                    # so tailing starts incremental (no full-state reset).
                    shard_standbys.append(self._spawn(
                        self.base_dir / f"shard{shard_id}-r{j}",
                        products, slice_weights,
                        extra_args=("--standby-of", primary.url),
                    ))
                self.standbys.append(shard_standbys)
            for proc in self._procs:
                ServiceClient(proc.url, retries=0).wait_until_healthy(
                    timeout_s=start_timeout_s)
            self.topology = ClusterTopology.build(
                [[self.workers[shard_id].url]
                 + [s.url for s in self.standbys[shard_id]]
                 for shard_id in range(num_workers)],
                weights.size, partitioner,
            )
            self.coordinator = ClusterCoordinator(
                self.topology,
                products=products if fallback else None,
                weights=weights if fallback else None,
                shard_timeout_s=shard_timeout_s,
                hedge=hedge,
                **({"max_inflight": max_inflight}
                   if max_inflight is not None else {}),
            )
            if supervise:
                detector = FailureDetector(self.coordinator,
                                           **(detector_kwargs or {}))
                self.supervisor = ClusterSupervisor(
                    self.coordinator,
                    restart_worker=self._restart_worker,
                    detector=detector,
                    tune_every=tune_every,
                )
                if supervisor_autostart:
                    self.supervisor.start()
            self.service = ClusterService(self.coordinator,
                                          supervisor=self.supervisor)
            self._server = make_cluster_server(self.service, host=host,
                                               port=coordinator_port)
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="rrq-cluster-router", daemon=True)
            self._thread.start()
        except BaseException:
            self.close()
            raise

    def _spawn(self, worker_dir: Path, products, slice_weights,
               extra_args: Sequence[str] = ()) -> WorkerProcess:
        """Bootstrap (once) and spawn one worker over ``worker_dir``."""
        from ..durability import DurableDynamicRRQ

        worker_dir = Path(worker_dir)
        if not (worker_dir / "engine.json").exists():
            seed = DurableDynamicRRQ.bootstrap(
                worker_dir, products, slice_weights, fsync=self.fsync,
                backend="segmented")
            seed.close()
        proc = WorkerProcess(worker_dir, "--fsync", self.fsync, *extra_args,
                             start_timeout_s=self._start_timeout_s)
        self._procs.append(proc)
        return proc

    def _restart_worker(self, shard_id: int, dead_url: str,
                        primary_url: str) -> Optional[str]:
        """Supervisor restart hook: respawn the corpse as a standby.

        The dead worker's durability directory already holds its WAL and
        snapshots, so the respawned process recovers locally first and
        then catches up on the tail through the new primary's feed.
        """
        directory = None
        for proc in self._procs:
            if proc.url == dead_url:
                directory = proc.directory
                break
        if directory is None:
            return None
        proc = WorkerProcess(directory, "--fsync", self.fsync,
                             "--standby-of", primary_url,
                             start_timeout_s=self._start_timeout_s)
        self._procs.append(proc)
        self.standbys[shard_id].append(proc)
        ServiceClient(proc.url, retries=0).wait_until_healthy(
            timeout_s=self._start_timeout_s)
        return proc.url

    @property
    def url(self) -> str:
        """The coordinator front door's base URL."""
        return self._server.url

    def worker_url(self, shard_id: int) -> str:
        return self.workers[shard_id].url

    def client(self, **kwargs) -> ServiceClient:
        """A client pointed at the coordinator."""
        return ServiceClient(self.url, **kwargs)

    def kill_worker(self, shard_id: int) -> None:
        """SIGKILL one primary; subsequent answers flag the shard degraded
        (or, under supervision, trigger automatic failover)."""
        self.workers[shard_id].kill9()

    def kill_standby(self, shard_id: int, index: int = 0) -> None:
        """SIGKILL one standby (chaos path for replica loss)."""
        self.standbys[shard_id][index].kill9()

    def close(self) -> None:
        """Tear down: supervisor first, workers next, front door last."""
        if self.supervisor is not None:
            try:
                self.supervisor.stop()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            self.supervisor = None
        for proc in self._procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._server = None
            self._thread = None
        if self.service is not None:
            self.service.close()
            self.service = None
        elif getattr(self, "coordinator", None) is not None:
            self.coordinator.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
