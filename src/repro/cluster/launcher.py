"""Stand up a whole local cluster: N worker processes + the coordinator.

:class:`LocalCluster` is the dev/test harness behind the
``repro-rrq cluster`` subcommand and the cluster integration suite.  It

1. slices the global weight set with the topology's partitioner and
   seeds one durability directory per worker via
   :meth:`~repro.durability.engine.DurableDynamicRRQ.bootstrap`
   (products fully replicated, weights partitioned);
2. spawns each worker as a **real subprocess** running
   ``repro-rrq serve --durable`` on an ephemeral port — the same entry
   point production workers use, no in-process shortcuts — and parses
   the serve banner for its URL;
3. builds the :class:`~repro.cluster.topology.ClusterTopology` from the
   live worker URLs and serves the coordinator's HTTP front door over
   it on a daemon thread.

Workers can be SIGKILLed individually (:meth:`LocalCluster.kill_worker`)
to exercise the degraded-shard path; :meth:`close` tears the whole
cluster down, surviving workers first, coordinator last.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

from ..data.datasets import WeightSet
from ..errors import ServiceUnavailableError
from ..service.client import ServiceClient
from .coordinator import ClusterCoordinator
from .router_server import (
    ClusterService,
    make_cluster_server,
)
from .topology import ClusterTopology, partition_weight_indices

#: How long a worker may take to print its serve banner / become healthy.
WORKER_START_TIMEOUT_S = 30.0


class WorkerProcess:
    """One ``repro-rrq serve --durable`` subprocess with a parsed URL."""

    def __init__(self, directory, *extra_args,
                 start_timeout_s: float = WORKER_START_TIMEOUT_S):
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        env.setdefault("PYTHONUNBUFFERED", "1")
        self.directory = Path(directory)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(directory),
             "--durable", "--port", "0", "--batch-window-ms", "0",
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.url = self._parse_banner(start_timeout_s)

    def _parse_banner(self, timeout_s: float) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise ServiceUnavailableError(
                    f"worker for {self.directory} exited before serving "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith("serving durable") and " at http" in line:
                return line.rsplit(" at ", 1)[1].strip()
        raise ServiceUnavailableError(
            f"worker for {self.directory} printed no serve banner within "
            f"{timeout_s}s"
        )

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill9(self) -> None:
        """SIGKILL — no goodbye, no flush; the chaos path."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.proc.kill()
                self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


class LocalCluster:
    """N durable workers + a coordinator front door, all on localhost.

    Parameters
    ----------
    products, weights:
        The full data sets.  Products are replicated to every worker;
        weights are partitioned.  They are also handed to the
        coordinator (unless ``fallback=False``) so a SIGKILLed worker's
        slice can be answered exactly by the local fallback.
    num_workers:
        Worker process count (one shard each).
    partitioner:
        ``"range"`` or ``"mod"`` (see :mod:`repro.cluster.topology`).
    base_dir:
        Parent for the per-worker durability directories (a fresh
        temporary directory when omitted; remembered but never deleted —
        callers pass ``tmp_path`` in tests).
    fsync:
        Worker WAL fsync policy.  ``"never"`` by default: the launcher
        targets dev/test clusters, where startup speed beats crash
        durability; production workers are started individually.
    """

    def __init__(self, products, weights, num_workers: int = 3,
                 partitioner: str = "range",
                 base_dir=None, fsync: str = "never",
                 host: str = "127.0.0.1", coordinator_port: int = 0,
                 shard_timeout_s: float = 5.0, fallback: bool = True,
                 start_timeout_s: float = WORKER_START_TIMEOUT_S):
        from ..durability import DurableDynamicRRQ

        self.base_dir = Path(base_dir) if base_dir is not None else \
            Path(tempfile.mkdtemp(prefix="rrq-cluster-"))
        self.base_dir.mkdir(parents=True, exist_ok=True)
        self.workers: List[WorkerProcess] = []
        self._server = None
        self._thread = None
        self.service: Optional[ClusterService] = None
        try:
            owned = partition_weight_indices(weights.size, num_workers,
                                             partitioner)
            for shard_id in range(num_workers):
                worker_dir = self.base_dir / f"shard{shard_id}"
                seed = DurableDynamicRRQ.bootstrap(
                    worker_dir, products,
                    WeightSet(weights.values[owned[shard_id]]),
                    fsync=fsync,
                )
                seed.close()
                self.workers.append(WorkerProcess(
                    worker_dir, "--fsync", fsync,
                    start_timeout_s=start_timeout_s,
                ))
            for worker in self.workers:
                ServiceClient(worker.url, retries=0).wait_until_healthy(
                    timeout_s=start_timeout_s)
            self.topology = ClusterTopology.build(
                [[worker.url] for worker in self.workers],
                weights.size, partitioner,
            )
            self.coordinator = ClusterCoordinator(
                self.topology,
                products=products if fallback else None,
                weights=weights if fallback else None,
                shard_timeout_s=shard_timeout_s,
            )
            self.service = ClusterService(self.coordinator)
            self._server = make_cluster_server(self.service, host=host,
                                               port=coordinator_port)
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="rrq-cluster-router", daemon=True)
            self._thread.start()
        except BaseException:
            self.close()
            raise

    @property
    def url(self) -> str:
        """The coordinator front door's base URL."""
        return self._server.url

    def worker_url(self, shard_id: int) -> str:
        return self.workers[shard_id].url

    def client(self, **kwargs) -> ServiceClient:
        """A client pointed at the coordinator."""
        return ServiceClient(self.url, **kwargs)

    def kill_worker(self, shard_id: int) -> None:
        """SIGKILL one worker; subsequent answers flag the shard degraded."""
        self.workers[shard_id].kill9()

    def close(self) -> None:
        """Tear the cluster down: workers first, then the front door."""
        for worker in self.workers:
            try:
                worker.terminate()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._server = None
            self._thread = None
        if self.service is not None:
            self.service.close()
            self.service = None
        elif getattr(self, "coordinator", None) is not None:
            self.coordinator.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
