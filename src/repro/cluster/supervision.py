"""Self-healing for the cluster: detect, promote, re-route, restart.

This module closes the loop that previous layers left to an operator.
The durability layer gave each shard a hot standby tailing the
primary's WAL feed and a ``POST /promote`` escape hatch; the
coordinator got an atomic routing flip
(:meth:`~repro.cluster.coordinator.ClusterCoordinator.
replace_shard_endpoints`).  The supervisor drives them automatically:

1. **Detect** — :class:`FailureDetector` probes every shard primary's
   ``/healthz`` each tick and classifies it ``alive`` / ``slow`` /
   ``suspect`` / ``dead``.  Only *missed* probes (transport errors,
   timeouts) advance toward ``dead``; a reachable-but-slow primary is
   ``slow`` (latency EWMA above threshold) and is never failed over —
   hedged reads handle stragglers, failover handles corpses.  The
   distinction matters: restarting a slow node under load is how
   outages metastasize.
2. **Promote** — once a primary is ``dead``
   (``dead_after`` consecutive misses), :class:`ClusterSupervisor`
   probes the shard's standbys and promotes the *freshest* one (highest
   ``last_lsn``; a standby that never answered is skipped).  Promotion
   goes to that standby's own endpoint, pinned — no failover rotation
   on the control path.
3. **Re-route** — the coordinator's routing table is flipped atomically
   to ``[new_primary, *surviving_standbys]``, surviving standbys are
   retargeted (``POST /retarget``) to tail the new primary, and the
   shard's breaker is reset so traffic returns immediately.  Because
   the coordinator is the routing table's only writer and the flip
   serializes on its lock, two ticks can never install conflicting
   primaries: split-brain is avoided by construction, not by consensus.
4. **Restart** — the dead worker is restarted *as a standby* of the new
   primary (via the launcher-provided ``restart_worker`` callback),
   recovering from its own WAL/snapshot directory and catching up
   through the replication feed.  A crash-looping worker stops being
   restarted after ``max_restarts`` attempts per shard.

Everything is **tick-driven**: :meth:`ClusterSupervisor.tick` performs
exactly one detect/repair round with no internal sleeps, so chaos tests
drive failover deterministically (``RRQ_CHAOS_SEED`` fault plans fire
on the ``supervision.heartbeat`` / ``supervision.promote`` /
``supervision.restart`` sites).  ``start()`` wraps the same tick in a
background thread for production use.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Dict, List, Optional

from ..obs.trace import span
from ..resilience.faults import fire
from .coordinator import ClusterCoordinator

#: Consecutive missed heartbeats before a primary is ``suspect``.
DEFAULT_SUSPECT_AFTER = 3

#: Consecutive missed heartbeats before a primary is ``dead``.
DEFAULT_DEAD_AFTER = 5

#: Per-probe socket timeout, seconds.
DEFAULT_PROBE_TIMEOUT_S = 1.0

#: Latency EWMA above this marks a reachable primary ``slow``.
DEFAULT_SLOW_THRESHOLD_S = 0.5

#: EWMA smoothing factor for probe latency.
DEFAULT_EWMA_ALPHA = 0.2

#: Background supervisor tick interval, seconds.
DEFAULT_TICK_INTERVAL_S = 0.5

#: Restart attempts per shard before declaring a crash loop.
DEFAULT_MAX_RESTARTS = 3

#: Failover events retained for ``status()``.
_EVENT_LOG_SIZE = 64


def _http_healthz(url: str, timeout_s: float) -> dict:
    """One ``GET /healthz`` against one endpoint (no rotation, no retry)."""
    request = urllib.request.Request(url.rstrip("/") + "/healthz")
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # An HTTP error still proves the process is alive; surface the
        # body when it is the structured JSON rejection.
        try:
            return json.loads(exc.read().decode("utf-8"))
        except Exception:
            return {"status": "degraded", "error": f"HTTP {exc.code}"}


class HeartbeatState:
    """One primary's rolling heartbeat bookkeeping (detector-internal)."""

    __slots__ = ("endpoint", "state", "consecutive_misses", "ewma_latency_s",
                 "probes", "misses", "last_error", "last_health")

    def __init__(self, endpoint: str):
        self.endpoint = endpoint
        self.state = "alive"
        self.consecutive_misses = 0
        self.ewma_latency_s: Optional[float] = None
        self.probes = 0
        self.misses = 0
        self.last_error = ""
        self.last_health: Optional[dict] = None

    def snapshot(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "state": self.state,
            "consecutive_misses": self.consecutive_misses,
            "ewma_latency_ms": (round(self.ewma_latency_s * 1000.0, 3)
                                if self.ewma_latency_s is not None else None),
            "probes": self.probes,
            "misses": self.misses,
            "last_error": self.last_error,
        }


class FailureDetector:
    """Heartbeat probes classifying each shard primary alive/slow/suspect/dead.

    A probe *misses* only on transport failure (connection refused,
    reset, timeout) — an answering-but-degraded worker is not missing.
    ``suspect_after`` consecutive misses mark the primary ``suspect``
    (no action yet; one GC pause must not trigger failover),
    ``dead_after`` mark it ``dead`` (the supervisor acts).  A single
    successful probe resets the streak: liveness, not load, is what is
    being measured.  Reachable primaries whose latency EWMA exceeds
    ``slow_threshold_s`` are ``slow`` — reported, hedged against, never
    failed over.

    Probes run ``fire("supervision.heartbeat")`` first, so fault plans
    can drop heartbeats deterministically in chaos tests.
    """

    def __init__(self, coordinator: ClusterCoordinator,
                 probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
                 suspect_after: int = DEFAULT_SUSPECT_AFTER,
                 dead_after: int = DEFAULT_DEAD_AFTER,
                 slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA):
        if not 0 < suspect_after <= dead_after:
            raise ValueError(
                "need 0 < suspect_after <= dead_after "
                f"(got {suspect_after}, {dead_after})"
            )
        self.coordinator = coordinator
        self.probe_timeout_s = float(probe_timeout_s)
        self.suspect_after = int(suspect_after)
        self.dead_after = int(dead_after)
        self.slow_threshold_s = float(slow_threshold_s)
        self.ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self._states: Dict[int, HeartbeatState] = {}

    def _state_for(self, shard_id: int, endpoint: str) -> HeartbeatState:
        with self._lock:
            state = self._states.get(shard_id)
            if state is None or state.endpoint != endpoint:
                # New shard or a routing flip: start a fresh streak for
                # the new primary instead of inheriting the corpse's.
                state = HeartbeatState(endpoint)
                self._states[shard_id] = state
            return state

    def reset(self, shard_id: int) -> None:
        """Forget a shard's streak (called after its routing flipped)."""
        with self._lock:
            self._states.pop(shard_id, None)

    def probe(self, shard_id: int) -> str:
        """Probe one shard's primary; returns its new state."""
        endpoint = self.coordinator.topology.shard(shard_id).primary
        hb = self._state_for(shard_id, endpoint)
        hb.probes += 1
        started = time.monotonic()
        try:
            fire("supervision.heartbeat")
            health = _http_healthz(endpoint, self.probe_timeout_s)
        except Exception as exc:
            hb.misses += 1
            hb.consecutive_misses += 1
            hb.last_error = f"{type(exc).__name__}: {exc}"
            if hb.consecutive_misses >= self.dead_after:
                hb.state = "dead"
            elif hb.consecutive_misses >= self.suspect_after:
                hb.state = "suspect"
            return hb.state
        latency = time.monotonic() - started
        hb.consecutive_misses = 0
        hb.last_error = ""
        hb.last_health = health
        if hb.ewma_latency_s is None:
            hb.ewma_latency_s = latency
        else:
            hb.ewma_latency_s = (self.ewma_alpha * latency
                                 + (1.0 - self.ewma_alpha)
                                 * hb.ewma_latency_s)
        hb.state = ("slow" if hb.ewma_latency_s > self.slow_threshold_s
                    else "alive")
        self.coordinator.observe_worker_health(shard_id, health)
        return hb.state

    def tick(self) -> Dict[int, str]:
        """Probe every shard once; returns ``{shard_id: state}``."""
        return {shard_id: self.probe(shard_id)
                for shard_id in range(self.coordinator.topology.num_shards)}

    def shard_state(self, shard_id: int) -> str:
        with self._lock:
            state = self._states.get(shard_id)
            return state.state if state is not None else "alive"

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {str(shard_id): state.snapshot()
                    for shard_id, state in sorted(self._states.items())}


class ClusterSupervisor:
    """The repair loop: promote the freshest standby, flip routing, restart.

    Parameters
    ----------
    coordinator:
        The routing table's single writer; all repairs go through its
        :meth:`~repro.cluster.coordinator.ClusterCoordinator.
        replace_shard_endpoints`.
    restart_worker:
        Optional callback ``(shard_id, dead_url, primary_url) ->
        Optional[new_url]`` that restarts the dead worker as a standby
        of ``primary_url``, recovering from its own data directory.
        Returning ``None`` (or raising) counts as a failed restart.
        The local launcher provides one; a remote deployment would wire
        its process manager here.
    detector:
        A pre-configured :class:`FailureDetector`; one with defaults is
        built when omitted.
    tick_interval_s:
        Sleep between rounds when running as a background thread.
    max_restarts:
        Restart attempts per shard before the supervisor declares a
        crash loop and stops restarting (promotion/re-routing still
        run; the shard just stays without its replaced standby).
    tune_every:
        Run a per-shard auto-tuning sweep every ``tune_every`` ticks
        (0 disables).  Each sweep posts ``/tuner`` (``force=False``) to
        every shard *primary* individually: a shard tunes only when its
        own live filtering is poor, so grids diverge per local ``W``
        partition — exactly what a skewed cluster workload wants.
    """

    def __init__(self, coordinator: ClusterCoordinator,
                 restart_worker: Optional[Callable] = None,
                 detector: Optional[FailureDetector] = None,
                 tick_interval_s: float = DEFAULT_TICK_INTERVAL_S,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 tune_every: int = 0,
                 tune_timeout_s: float = 120.0):
        self.coordinator = coordinator
        self.restart_worker = restart_worker
        self.detector = detector or FailureDetector(coordinator)
        self.tick_interval_s = float(tick_interval_s)
        self.max_restarts = int(max_restarts)
        self.tune_every = int(tune_every)
        self.tune_timeout_s = float(tune_timeout_s)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._restarts: Dict[int, int] = {}
        self._events: deque = deque(maxlen=_EVENT_LOG_SIZE)
        self.ticks = 0
        self.promotions = 0
        self.failed_failovers = 0
        self.restarts = 0
        self.failed_restarts = 0
        self.tuner_sweeps = 0
        self.tuner_swaps = 0
        self.tuner_errors = 0

    # ------------------------------------------------------------------
    # one repair round
    # ------------------------------------------------------------------

    def tick(self) -> dict:
        """One detect/repair round; returns what it saw and did.

        Deterministic: no sleeps, no randomness — chaos tests call this
        in a bounded loop and assert convergence by tick count.
        """
        with span("supervision.tick") as sp:
            states = self.detector.tick()
            sp.annotate("states", {str(k): v for k, v in states.items()})
            actions: List[dict] = []
            for shard_id, state in states.items():
                if state != "dead":
                    continue
                actions.append(self._fail_over(shard_id))
            with self._lock:
                self.ticks += 1
                ticks = self.ticks
            if self.tune_every > 0 and ticks % self.tune_every == 0:
                actions.extend(self._tune_shards(states))
            return {"states": states, "actions": actions}

    def _tune_shards(self, states: Dict[int, str]) -> List[dict]:
        """One per-shard tuning sweep (``force=False``: trigger decides).

        Each shard primary tunes against its *own* live workload; a
        shard whose filtering is healthy answers ``skipped`` and keeps
        its grid.  Dead shards are left alone — failover first.
        """
        actions: List[dict] = []
        with self._lock:
            self.tuner_sweeps += 1
        for shard_id, state in states.items():
            if state == "dead":
                continue
            primary = self.coordinator.topology.shard(shard_id).primary
            try:
                outcome = self.coordinator.clients[shard_id].tune(
                    force=False, endpoint=primary,
                    timeout_s=self.tune_timeout_s,
                )
            except Exception as exc:
                with self._lock:
                    self.tuner_errors += 1
                actions.append(self._event(
                    kind="tune_failed", shard=shard_id, primary=primary,
                    reason=f"{type(exc).__name__}: {exc}",
                ))
                continue
            if outcome.get("status") == "swapped":
                with self._lock:
                    self.tuner_swaps += 1
                actions.append(self._event(
                    kind="tune_swapped", shard=shard_id, primary=primary,
                    winner=outcome.get("winner_label"),
                    improvement=outcome.get("improvement"),
                ))
        return actions

    def _event(self, **fields) -> dict:
        fields.setdefault("at", time.time())  # wall-clock: display only
        with self._lock:
            self._events.append(fields)
        return fields

    def _probe_standby(self, endpoint: str) -> Optional[dict]:
        try:
            return _http_healthz(endpoint, self.detector.probe_timeout_s)
        except Exception:
            return None

    def _fail_over(self, shard_id: int) -> dict:
        """Promote the freshest standby of one dead primary and re-route."""
        with span("supervision.failover") as sp:
            sp.annotate("shard", shard_id)
            spec = self.coordinator.topology.shard(shard_id)
            dead_primary = spec.primary
            sp.annotate("dead_primary", dead_primary)

            # Freshness election: highest last_lsn among answering
            # standbys wins (first wins ties — deterministic order).
            candidates = []
            for endpoint in spec.replicas:
                health = self._probe_standby(endpoint)
                if health is None:
                    continue
                candidates.append((int(health.get("last_lsn") or 0),
                                   endpoint, health))
            if not candidates:
                with self._lock:
                    self.failed_failovers += 1
                return self._event(
                    kind="failover_failed", shard=shard_id,
                    dead_primary=dead_primary,
                    reason=("no standby answered"
                            if spec.replicas else "shard has no standby"),
                )
            best_lsn = max(lsn for lsn, _, _ in candidates)
            new_primary = next(endpoint for lsn, endpoint, _ in candidates
                               if lsn == best_lsn)
            sp.annotate("new_primary", new_primary)

            try:
                fire("supervision.promote")
                receipt = self.coordinator.clients[shard_id].promote(
                    new_primary)
            except Exception as exc:
                with self._lock:
                    self.failed_failovers += 1
                return self._event(
                    kind="failover_failed", shard=shard_id,
                    dead_primary=dead_primary, candidate=new_primary,
                    reason=f"promote failed: {type(exc).__name__}: {exc}",
                )

            survivors = [endpoint for _, endpoint, _ in candidates
                         if endpoint != new_primary]
            self.coordinator.replace_shard_endpoints(
                shard_id, [new_primary, *survivors])
            self.detector.reset(shard_id)
            with self._lock:
                self.promotions += 1

            # Surviving standbys must tail the new primary, or their
            # feeds go stale behind a corpse.
            retarget_errors = []
            for endpoint in survivors:
                try:
                    self.coordinator.clients[shard_id].retarget(
                        new_primary, endpoint=endpoint)
                except Exception as exc:
                    retarget_errors.append(
                        f"{endpoint}: {type(exc).__name__}: {exc}")

            event = self._event(
                kind="failover", shard=shard_id, dead_primary=dead_primary,
                new_primary=new_primary,
                promoted_lsn=receipt.get("last_lsn"),
                survivors=survivors,
            )
            if retarget_errors:
                event["retarget_errors"] = retarget_errors
            restart = self._restart_as_standby(shard_id, dead_primary,
                                               new_primary)
            if restart is not None:
                event["restart"] = restart
            return event

    def _restart_as_standby(self, shard_id: int, dead_url: str,
                            primary_url: str) -> Optional[dict]:
        """Bring the corpse back as a standby of the new primary."""
        if self.restart_worker is None:
            return None
        with self._lock:
            attempts = self._restarts.get(shard_id, 0)
            if attempts >= self.max_restarts:
                return {"status": "crash_loop",
                        "attempts": attempts,
                        "detail": f"gave up after {attempts} restarts"}
            self._restarts[shard_id] = attempts + 1
        try:
            fire("supervision.restart")
            new_url = self.restart_worker(shard_id, dead_url, primary_url)
        except Exception as exc:
            with self._lock:
                self.failed_restarts += 1
            return {"status": "failed",
                    "detail": f"{type(exc).__name__}: {exc}"}
        if new_url is None:
            with self._lock:
                self.failed_restarts += 1
            return {"status": "failed", "detail": "restart returned no URL"}
        endpoints = list(
            self.coordinator.topology.shard(shard_id).endpoints)
        self.coordinator.replace_shard_endpoints(
            shard_id, [*endpoints, new_url])
        with self._lock:
            self.restarts += 1
        return {"status": "restarted", "standby": new_url}

    # ------------------------------------------------------------------
    # background operation
    # ------------------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        """Run :meth:`tick` on a background thread until :meth:`stop`."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="rrq-supervisor", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception as exc:  # never let the repair loop die
                self._event(kind="tick_error",
                            detail=f"{type(exc).__name__}: {exc}")
            self._stop.wait(self.tick_interval_s)

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Snapshot for ``/cluster/healthz`` and ``/metrics``."""
        with self._lock:
            return {
                "running": self.running,
                "ticks": self.ticks,
                "promotions": self.promotions,
                "failed_failovers": self.failed_failovers,
                "restarts": self.restarts,
                "failed_restarts": self.failed_restarts,
                "tune_every": self.tune_every,
                "tuner_sweeps": self.tuner_sweeps,
                "tuner_swaps": self.tuner_swaps,
                "tuner_errors": self.tuner_errors,
                "restart_attempts": {str(sid): n for sid, n
                                     in sorted(self._restarts.items())},
                "detector": self.detector.snapshot(),
                "events": list(self._events),
            }
