"""The cluster's HTTP front door: the single-node JSON API, plus cluster routes.

:class:`ClusterService` wraps a
:class:`~repro.cluster.coordinator.ClusterCoordinator` behind exactly the
interface :class:`~repro.service.server._RequestHandler` expects from a
:class:`~repro.service.server.QueryService` (``query``, ``healthz``,
``metrics_snapshot``, ``prometheus_text``, ``traces_snapshot``,
``slowlog``, ``info``, ``handle_mutation_request``, ``tracer``,
``metrics``) — so the battle-tested handler, canonical-JSON encoding,
structured rejections, and trace-per-request plumbing are reused
verbatim.  Clients cannot tell a coordinator from a single node by its
query responses (they are byte-identical, by construction) — only by the
extra routes:

  =========  ==================  ====================================
  method     path                body
  =========  ==================  ====================================
  GET        /cluster/healthz    per-shard health fan-out + breakers
  GET        /cluster/topology   the membership/partition manifest
  =========  ==================  ====================================

Trace propagation: the handler opens one root trace per request (minting
or adopting ``X-Trace-Id``); the coordinator forwards that id in each
shard sub-request's ``X-Trace-Id`` header, and each worker's own handler
adopts it — so one trace id indexes the request's spans in the
coordinator's ``/traces`` *and* every involved worker's ``/traces``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional
from urllib.parse import urlsplit

from ..obs.slowlog import (
    DEFAULT_SLOW_THRESHOLD_S,
    DEFAULT_SLOWLOG_CAPACITY,
    SlowQueryLog,
)
from ..obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    Tracer,
    current,
    current_trace_id,
    span,
)
from ..service.metrics import ServiceMetrics
from ..service.server import ReverseRankHTTPServer, _RequestHandler
from .coordinator import ClusterCoordinator


class ClusterService:
    """The coordinator dressed as a :class:`QueryService` for the HTTP layer.

    Owns the front door's observability (tracer, metrics, slow-query
    log) — the shards each keep their own, reachable through their own
    ports and joined to the coordinator's by the shared trace id.
    """

    def __init__(self, coordinator: ClusterCoordinator,
                 supervisor=None,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY,
                 trace_export_path: Optional[str] = None,
                 slow_query_threshold_s: Optional[float] =
                 DEFAULT_SLOW_THRESHOLD_S,
                 slowlog_capacity: int = DEFAULT_SLOWLOG_CAPACITY,
                 slowlog_path: Optional[str] = None):
        self.coordinator = coordinator
        #: Optional :class:`~repro.cluster.supervision.ClusterSupervisor`;
        #: when present its status rides along in ``/cluster/healthz``
        #: and ``/metrics`` so failovers are observable from the front
        #: door.
        self.supervisor = supervisor
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(capacity=trace_capacity,
                             export_path=trace_export_path)
        self.slowlog = SlowQueryLog(threshold_s=slow_query_threshold_s,
                                    capacity=slowlog_capacity,
                                    path=slowlog_path)

    # ------------------------------------------------------------------
    # the handler-facing surface
    # ------------------------------------------------------------------

    def query(self, vector=None, *, product: Optional[int] = None,
              kind: str = "rtk", k: int = 10,
              deadline_s: Optional[float] = None) -> dict:
        """One scatter-gathered request, with front-door accounting."""
        start = perf_counter()
        with span("cluster.query") as sp:
            sp.annotate("kind", kind)
            sp.annotate("k", int(k))
            encoded = self.coordinator.query(
                vector, product=product, kind=kind, k=k,
                deadline_s=deadline_s,
            )
        degraded = bool(encoded.get("degraded"))
        latency_s = perf_counter() - start
        self.metrics.record_request(kind, latency_s, cache_hit=False,
                                    degraded=degraded,
                                    trace_id=current_trace_id())
        if self.slowlog.should_log(latency_s):
            entry = {
                "kind": kind,
                "k": int(k),
                "latency_s": latency_s,
                "cache_hit": False,
                "degraded": degraded,
            }
            ctx = current()
            if ctx is not None:
                entry["trace_id"] = ctx.trace.trace_id
                entry["spans"] = ctx.trace.span_tree()
            self.slowlog.record(entry)
        return encoded

    def handle_mutation_request(self, path: str, payload: dict) -> dict:
        """Route one mutation through the coordinator (ownership-aware)."""
        receipt = self.coordinator.route_mutation(path, payload)
        self.metrics.record_mutation(receipt.get("op", path.lstrip("/")))
        return receipt

    def healthz(self) -> dict:
        """Cheap front-door liveness (``/cluster/healthz`` probes shards)."""
        stats = self.coordinator.stats()
        degraded = any(state != "closed"
                       for state in stats["breakers"].values())
        body = {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "role": "coordinator",
            "shards": stats["shards"],
            "partitioner": stats["partitioner"],
            "breakers": stats["breakers"],
            "uptime_s": self.metrics.uptime_s(),
            "degraded_queries": stats["degraded_queries"],
        }
        return body

    def cluster_healthz(self) -> dict:
        """The ``GET /cluster/healthz`` body: live per-shard probes."""
        body = self.coordinator.shard_health()
        if self.supervisor is not None:
            body["supervision"] = self.supervisor.status()
        return body

    def topology_snapshot(self) -> dict:
        """The ``GET /cluster/topology`` body: the membership manifest."""
        body = self.coordinator.topology.to_dict()
        body["next_global"] = self.coordinator.stats()["next_global"]
        return body

    def info(self) -> dict:
        from .. import __version__

        stats = self.coordinator.stats()
        return {
            "service": "repro-rrq-cluster",
            "version": __version__,
            "role": "coordinator",
            "method": "cluster",
            "shards": stats["shards"],
            "partitioner": stats["partitioner"],
            "total_weights": stats["total_weights"],
            "shard_timeout_s": self.coordinator.shard_timeout_s,
            "fallback": stats["fallback_available"],
            "endpoints": {
                str(spec.shard_id): list(spec.endpoints)
                for spec in self.coordinator.topology.shards
            },
        }

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["slowlog"] = self.slowlog.stats()
        snap["traces"] = self.tracer.stats()
        snap["cluster"] = self.coordinator.stats()
        if self.supervisor is not None:
            snap["supervision"] = self.supervisor.status()
        return snap

    def prometheus_text(self) -> str:
        text = self.metrics.prometheus(slowlog=self.slowlog.stats(),
                                       traces=self.tracer.stats())
        stats = self.coordinator.stats()
        lines = [
            "# HELP rrq_cluster_shards Shards in the serving topology.",
            "# TYPE rrq_cluster_shards gauge",
            f"rrq_cluster_shards {stats['shards']}",
            "# HELP rrq_cluster_degraded_queries Queries answered with at"
            " least one degraded shard.",
            "# TYPE rrq_cluster_degraded_queries counter",
            f"rrq_cluster_degraded_queries {stats['degraded_queries']}",
            "# HELP rrq_cluster_breaker_open Per-shard circuit state"
            " (1 = not closed).",
            "# TYPE rrq_cluster_breaker_open gauge",
        ]
        for shard_id, state in sorted(stats["breakers"].items(),
                                      key=lambda kv: int(kv[0])):
            value = 0 if state == "closed" else 1
            lines.append(
                f'rrq_cluster_breaker_open{{shard="{shard_id}"}} {value}'
            )
        lines += [
            "# HELP rrq_cluster_failovers Primary routing flips applied.",
            "# TYPE rrq_cluster_failovers counter",
            f"rrq_cluster_failovers {stats['failovers']}",
            "# HELP rrq_cluster_hedged_probes Backup probes issued to"
            " standbys.",
            "# TYPE rrq_cluster_hedged_probes counter",
            f"rrq_cluster_hedged_probes {stats['hedge']['probes']}",
            "# HELP rrq_cluster_hedge_wins Hedged probes answered before"
            " the primary.",
            "# TYPE rrq_cluster_hedge_wins counter",
            f"rrq_cluster_hedge_wins {stats['hedge']['wins']}",
            "# HELP rrq_cluster_shed_queries Queries rejected by the"
            " in-flight bound.",
            "# TYPE rrq_cluster_shed_queries counter",
            f"rrq_cluster_shed_queries {stats['shedding']['shed_queries']}",
        ]
        if self.supervisor is not None:
            status = self.supervisor.status()
            lines += [
                "# HELP rrq_cluster_promotions Standby promotions performed"
                " by the supervisor.",
                "# TYPE rrq_cluster_promotions counter",
                f"rrq_cluster_promotions {status['promotions']}",
                "# HELP rrq_cluster_worker_restarts Dead workers restarted"
                " as standbys.",
                "# TYPE rrq_cluster_worker_restarts counter",
                f"rrq_cluster_worker_restarts {status['restarts']}",
            ]
        return text + "\n".join(lines) + "\n"

    def traces_snapshot(self, trace_id: Optional[str] = None,
                        limit: Optional[int] = None) -> dict:
        if trace_id is not None:
            trace = self.tracer.get(trace_id)
            return {"trace": trace, "found": trace is not None}
        return self.tracer.snapshot(limit)

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
        self.coordinator.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _ClusterRequestHandler(_RequestHandler):
    """The single-node handler plus the ``/cluster/*`` read routes."""

    server_version = "repro-rrq-cluster"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        if path == "/cluster/healthz":
            self._send_json(200, self.service.cluster_healthz())
        elif path == "/cluster/topology":
            self._send_json(200, self.service.topology_snapshot())
        else:
            super().do_GET()


class ClusterHTTPServer(ReverseRankHTTPServer):
    """One thread per connection over a shared :class:`ClusterService`."""

    def __init__(self, address, service: ClusterService,
                 verbose: bool = False):
        # Deliberately skip ReverseRankHTTPServer.__init__ to swap the
        # handler class; everything else (threading, backlog, url) is
        # inherited unchanged.
        from http.server import ThreadingHTTPServer

        ThreadingHTTPServer.__init__(self, address, _ClusterRequestHandler)
        self.service = service
        self.verbose = verbose


def make_cluster_server(service: ClusterService, host: str = "127.0.0.1",
                        port: int = 0,
                        verbose: bool = False) -> ClusterHTTPServer:
    """Bind the coordinator's front door (``port=0`` → ephemeral port)."""
    return ClusterHTTPServer((host, port), service, verbose=verbose)


@contextmanager
def serve_cluster_in_background(service: ClusterService,
                                host: str = "127.0.0.1",
                                port: int = 0) -> Iterator[ClusterHTTPServer]:
    """Serve the coordinator on a daemon thread for the ``with`` block."""
    server = make_cluster_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="rrq-cluster-http", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.close()
