"""Cluster membership and the weight-space partition function.

A cluster serves one logical ``(P, W)`` pair: every worker holds the
**full** product set (products are small and every rank computation
needs all of them) while the weight set is **partitioned** — each worker
owns a disjoint subset of the global weight indices.  Because
``rank(w, q)`` depends only on ``w``, ``q`` and ``P`` (never on other
weights), any partition of ``W`` yields exact scatter-gather answers:
RTK answers are unions of per-shard answers and RKR answers are
k-smallest merges — the same merge :mod:`repro.vectorized.shard` runs
in-process, promoted here to a process/HTTP boundary.

Two partitioners, both deterministic and invertible:

``range``
    Contiguous slices via the same ``linspace`` split the in-process
    sharded engine uses.  Global index ``g`` on shard ``s`` becomes
    local index ``g - base[s]``.  New weights are routed to the *last*
    shard (its range is open above); rebalancing moves boundary runs.
``mod``
    Round-robin by residue: global ``g`` lives on shard ``g % N`` at
    local index ``g // N``.  Inserts routed through the coordinator
    stay perfectly balanced; rebalancing to a different ``N`` moves the
    residue-crossing indices.

The topology is a static membership **manifest**: shard ids, their
endpoint URLs (primary first, standbys after — the order the write
failover walks), per-shard initial weight counts, and the partitioner.
It serializes to canonical JSON (``GET /cluster/topology``, or a file
next to the cluster's data) and computes :func:`rebalance plans
<ClusterTopology.rebalance_plan>` when membership changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import InvalidParameterError

PathLike = Union[str, Path]

#: Supported weight partitioners.
PARTITIONERS = ("range", "mod")


@dataclass(frozen=True)
class ShardSpec:
    """One worker shard: its id, endpoints, and initial weight count.

    ``endpoints`` lists the shard's replicas primary-first; the
    coordinator's per-shard client rotates across them on transport
    failure and on 409 (standby refused a write) exactly as the
    multi-endpoint :class:`~repro.service.client.ServiceClient` does.
    """

    shard_id: int
    endpoints: Tuple[str, ...]
    weight_count: int = 0

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise InvalidParameterError("shard_id must be >= 0")
        if not self.endpoints:
            raise InvalidParameterError(
                f"shard {self.shard_id}: at least one endpoint is required"
            )
        if self.weight_count < 0:
            raise InvalidParameterError(
                f"shard {self.shard_id}: weight_count must be >= 0"
            )

    @property
    def primary(self) -> str:
        """The endpoint writes go to first."""
        return self.endpoints[0]

    @property
    def replicas(self) -> Tuple[str, ...]:
        """The shard's standby endpoints (everything after the primary).

        Failover promotes one of these; hedged reads probe them while
        the primary is merely slow.
        """
        return self.endpoints[1:]

    def with_endpoints(self, endpoints: Sequence[str]) -> "ShardSpec":
        """This spec with a new endpoint list (a failover routing flip)."""
        return ShardSpec(shard_id=self.shard_id,
                         endpoints=tuple(url.rstrip("/")
                                         for url in endpoints),
                         weight_count=self.weight_count)

    def to_dict(self) -> dict:
        return {"shard_id": self.shard_id,
                "endpoints": list(self.endpoints),
                "replicas": list(self.replicas),
                "weight_count": int(self.weight_count)}


def partition_weight_indices(total: int, shards: int,
                             partitioner: str = "range"
                             ) -> List[np.ndarray]:
    """The global weight indices each of ``shards`` workers owns.

    The ``range`` split is byte-compatible with
    :class:`~repro.vectorized.shard.ShardedGirRRQ`'s in-process ranges
    (``linspace`` boundaries), so a cluster sliced this way answers
    exactly like the shared-memory engine sharded the same way.
    """
    if total < 0:
        raise InvalidParameterError("total must be >= 0")
    if shards < 1:
        raise InvalidParameterError("shards must be positive")
    if partitioner == "range":
        bounds = np.linspace(0, total, shards + 1).astype(int)
        return [np.arange(int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:])]
    if partitioner == "mod":
        return [np.arange(s, total, shards) for s in range(shards)]
    raise InvalidParameterError(
        f"unknown partitioner {partitioner!r}; expected one of "
        f"{', '.join(PARTITIONERS)}"
    )


@dataclass(frozen=True)
class ClusterTopology:
    """The static membership manifest + the global↔local index bijection.

    ``shards`` must be a dense ``shard_id`` sequence ``0..N-1`` whose
    ``weight_count`` values reproduce :func:`partition_weight_indices`
    over the topology's ``total_weights`` — the constructor enforces it,
    because a manifest whose counts drifted from the partitioner would
    silently corrupt every global↔local translation.
    """

    partitioner: str
    shards: Tuple[ShardSpec, ...]
    _bases: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.partitioner not in PARTITIONERS:
            raise InvalidParameterError(
                f"unknown partitioner {self.partitioner!r}; expected one of "
                f"{', '.join(PARTITIONERS)}"
            )
        if not self.shards:
            raise InvalidParameterError("a topology needs at least one shard")
        ids = [spec.shard_id for spec in self.shards]
        if ids != list(range(len(self.shards))):
            raise InvalidParameterError(
                f"shard ids must be dense 0..{len(self.shards) - 1}, "
                f"got {ids}"
            )
        expected = partition_weight_indices(self.total_weights,
                                            len(self.shards),
                                            self.partitioner)
        for spec, owned in zip(self.shards, expected):
            if spec.weight_count != len(owned):
                raise InvalidParameterError(
                    f"shard {spec.shard_id}: weight_count "
                    f"{spec.weight_count} does not match the "
                    f"{self.partitioner!r} partition of "
                    f"{self.total_weights} weights ({len(owned)})"
                )
        # Range bases let to_global/to_local run without re-deriving the
        # linspace split on every call.
        counts = [spec.weight_count for spec in self.shards]
        object.__setattr__(self, "_bases",
                           tuple(int(x) for x in
                                 np.concatenate([[0],
                                                 np.cumsum(counts)[:-1]])))

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_weights(self) -> int:
        return sum(spec.weight_count for spec in self.shards)

    def shard(self, shard_id: int) -> ShardSpec:
        if not 0 <= shard_id < len(self.shards):
            raise InvalidParameterError(
                f"shard_id must be in [0, {len(self.shards)}), "
                f"got {shard_id}"
            )
        return self.shards[shard_id]

    # ------------------------------------------------------------------
    # the global <-> local bijection
    # ------------------------------------------------------------------

    def owned_globals(self, shard_id: int) -> np.ndarray:
        """The global weight indices shard ``shard_id`` owns, ascending."""
        self.shard(shard_id)
        return partition_weight_indices(self.total_weights, self.num_shards,
                                        self.partitioner)[shard_id]

    def to_global(self, shard_id: int, local: int) -> int:
        """Map a shard-local weight index back to its global index.

        Defined for *any* non-negative local index, including ones past
        the shard's initial count: an insert appends at the next local
        slot and this map gives the new weight its stable global id.
        """
        self.shard(shard_id)
        if local < 0:
            raise InvalidParameterError("local index must be >= 0")
        if self.partitioner == "mod":
            return shard_id + local * self.num_shards
        return self._bases[shard_id] + local

    def to_local(self, global_index: int) -> Tuple[int, int]:
        """Map a global weight index to ``(owner shard, local index)``."""
        g = int(global_index)
        if g < 0:
            raise InvalidParameterError("global index must be >= 0")
        if self.partitioner == "mod":
            return g % self.num_shards, g // self.num_shards
        owner = int(np.searchsorted(self._bases, g, side="right")) - 1
        return owner, g - self._bases[owner]

    def owner_of(self, global_index: int) -> int:
        """The shard that owns ``global_index`` (inserts included)."""
        return self.to_local(global_index)[0]

    def insert_owner(self, next_global: int) -> int:
        """The shard a weight inserted at ``next_global`` routes to.

        ``mod`` keeps round-robin balance; ``range`` appends to the last
        shard, whose range is open above (rebalance to restore balance).
        """
        if self.partitioner == "mod":
            return int(next_global) % self.num_shards
        return self.num_shards - 1

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready manifest (the ``GET /cluster/topology`` body)."""
        return {
            "partitioner": self.partitioner,
            "num_shards": self.num_shards,
            "total_weights": self.total_weights,
            "shards": [spec.to_dict() for spec in self.shards],
        }

    @classmethod
    def from_dict(cls, manifest: dict) -> "ClusterTopology":
        try:
            shards = tuple(
                ShardSpec(shard_id=int(entry["shard_id"]),
                          endpoints=tuple(str(u) for u in entry["endpoints"]),
                          weight_count=int(entry["weight_count"]))
                for entry in manifest["shards"]
            )
            return cls(partitioner=str(manifest["partitioner"]),
                       shards=shards)
        except (KeyError, TypeError) as exc:
            raise InvalidParameterError(
                f"malformed topology manifest: {exc!r}"
            ) from None

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: PathLike) -> "ClusterTopology":
        path = Path(path)
        if not path.is_file():
            raise InvalidParameterError(f"{path}: no such topology manifest")
        try:
            manifest = json.loads(path.read_text())
        except ValueError as exc:
            raise InvalidParameterError(
                f"{path}: invalid JSON ({exc})"
            ) from None
        return cls.from_dict(manifest)

    # ------------------------------------------------------------------
    # membership change
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, endpoints: Sequence[Sequence[str]], total_weights: int,
              partitioner: str = "range") -> "ClusterTopology":
        """A topology over ``endpoints`` (one endpoint list per shard)."""
        owned = partition_weight_indices(int(total_weights), len(endpoints),
                                         partitioner)
        shards = tuple(
            ShardSpec(shard_id=i,
                      endpoints=(tuple(urls) if not isinstance(urls, str)
                                 else (urls,)),
                      weight_count=len(owned[i]))
            for i, urls in enumerate(endpoints)
        )
        return cls(partitioner=partitioner, shards=shards)

    def with_shard_endpoints(self, shard_id: int,
                             endpoints: Sequence[str]) -> "ClusterTopology":
        """A new topology with one shard's endpoint list replaced.

        The partition (weight counts, bijection) is untouched — this is
        the supervisor's failover primitive: promote a standby, then
        swap the shard's routing to ``[new_primary, *standbys]`` in one
        atomic topology replacement.
        """
        spec = self.shard(shard_id)
        if not endpoints:
            raise InvalidParameterError(
                f"shard {shard_id}: at least one endpoint is required"
            )
        shards = tuple(spec.with_endpoints(endpoints)
                       if s.shard_id == shard_id else s
                       for s in self.shards)
        return ClusterTopology(partitioner=self.partitioner, shards=shards)

    def rebalance_plan(self, new_endpoints: Sequence[Sequence[str]],
                       partitioner: Optional[str] = None) -> dict:
        """What must move when membership changes to ``new_endpoints``.

        Returns a JSON-ready plan: the new topology manifest plus one
        move record per ``(from, to)`` shard pair listing how many
        weights cross and, for contiguous runs, the global index ranges
        (``[lo, hi)``).  Weights whose owner is unchanged do not appear.
        The plan is *descriptive* — executing it (stream the moved
        weights into their new owner's WAL, then flip the manifest) is
        the operator procedure documented in ``docs/operations.md``.
        """
        new = ClusterTopology.build(new_endpoints, self.total_weights,
                                    partitioner or self.partitioner)
        total = self.total_weights
        moves: List[dict] = []
        if total:
            g = np.arange(total)
            if self.partitioner == "mod":
                old_owner = g % self.num_shards
            else:
                old_owner = np.searchsorted(self._bases, g,
                                            side="right") - 1
            if new.partitioner == "mod":
                new_owner = g % new.num_shards
            else:
                new_owner = np.searchsorted(new._bases, g,
                                            side="right") - 1
            moving = old_owner != new_owner
            for pair in sorted({(int(a), int(b))
                                for a, b in zip(old_owner[moving],
                                                new_owner[moving])}):
                src, dst = pair
                indices = g[moving & (old_owner == src)
                            & (new_owner == dst)]
                # Compress to contiguous [lo, hi) runs for readability.
                breaks = np.where(np.diff(indices) != 1)[0]
                starts = np.concatenate([[0], breaks + 1])
                ends = np.concatenate([breaks, [len(indices) - 1]])
                moves.append({
                    "from": src,
                    "to": dst,
                    "count": int(len(indices)),
                    "ranges": [[int(indices[a]), int(indices[b]) + 1]
                               for a, b in zip(starts, ends)],
                })
        return {
            "from_shards": self.num_shards,
            "to_shards": new.num_shards,
            "total_weights": total,
            "moved_weights": sum(m["count"] for m in moves),
            "moves": moves,
            "new_topology": new.to_dict(),
        }
