"""Snapshots of the dynamic engine's full state, with atomic commit.

A snapshot is a directory ``snapshot-<lsn>/`` holding the engine's raw
matrices (products, weights — tombstones included, so stable indices
survive), the two liveness masks, and a JSON meta file, all written
through :func:`repro.core.storage.write_manifest_dir` — the same
temp-file + fsync + rename + manifest-last protocol the static index
store uses.  Derived state (grid boundaries, quantized codes) is *not*
persisted: it is rebuilt deterministically from the matrices on load.

Commit protocol (every step crash-safe)::

    1. write snapshot-<lsn>.tmp/ artifacts + manifest   (atomic each)
    2. rename snapshot-<lsn>.tmp -> snapshot-<lsn>      (atomic, fault
       site ``snapshot.rename``)
    3. rewrite CURRENT -> {"snapshot": ..., "lsn": ...} (atomic, fault
       site ``snapshot.current``) — THE commit point
    4. truncate the WAL through <lsn>                   (caller's job)
    5. garbage-collect older snapshot-* directories

A crash before step 3 leaves ``CURRENT`` pointing at the previous
snapshot with the WAL untruncated — recovery replays everything.  A
crash between 3 and 4 leaves WAL records at or below the barrier, which
LSN-idempotent replay skips.  Orphan directories from either window are
swept on the next successful snapshot (and on recovery).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.storage import verify_manifest_dir, write_manifest_dir
from ..data.io import atomic_write_bytes, matrix_to_bytes
from ..errors import (
    DataValidationError,
    IndexCorruptionError,
    WalCorruptionError,
)
from ..resilience.faults import fire
from .wal import read_wal, wal_path

PathLike = Union[str, Path]

CURRENT_NAME = "CURRENT"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_FORMAT = 1

#: Artifact names inside one snapshot directory.
SNAPSHOT_ARTIFACTS = ("products.mat", "weights.mat", "palive.bin",
                      "walive.bin", "snapshot.meta")


def _snapshot_dirname(lsn: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{int(lsn):012d}"


def _pack_mask(mask: np.ndarray) -> bytes:
    return np.packbits(np.asarray(mask, dtype=bool)).tobytes()


def _unpack_mask(data: bytes, count: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    if len(bits) < count:
        raise DataValidationError(
            f"liveness mask holds {len(bits)} bits, expected {count}"
        )
    return bits[:count].astype(bool)


def write_snapshot(directory: PathLike, *, lsn: int,
                   products: np.ndarray, p_alive: np.ndarray,
                   weights: np.ndarray, w_alive: np.ndarray,
                   meta: dict) -> Path:
    """Persist one engine state at WAL position ``lsn``; returns its dir.

    ``meta`` carries the engine's construction parameters (dim,
    value_range, partitions, chunk); row counts and the barrier LSN are
    added here.  The ``CURRENT`` flip at the end is the commit point.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    name = _snapshot_dirname(lsn)
    final = base / name
    tmp = base / (name + ".tmp")
    for stale in (tmp, final):
        if stale.exists():
            shutil.rmtree(stale)
    snapshot_meta = dict(meta)
    snapshot_meta.update({
        "format": _SNAPSHOT_FORMAT,
        "lsn": int(lsn),
        "rows_p": int(products.shape[0]),
        "rows_w": int(weights.shape[0]),
    })
    payloads = {
        "products.mat": matrix_to_bytes(products),
        "weights.mat": matrix_to_bytes(weights),
        "palive.bin": _pack_mask(p_alive),
        "walive.bin": _pack_mask(w_alive),
        "snapshot.meta": json.dumps(snapshot_meta, indent=2,
                                    sort_keys=True).encode(),
    }
    write_manifest_dir(tmp, payloads, site_prefix="snapshot.write")
    fire("snapshot.rename")
    os.rename(tmp, final)
    atomic_write_bytes(
        base / CURRENT_NAME,
        json.dumps({"snapshot": name, "lsn": int(lsn)},
                   sort_keys=True).encode(),
        site="snapshot.current",
    )
    sweep_orphans(base, keep=name)
    return final


def sweep_orphans(directory: PathLike, keep: Optional[str] = None) -> int:
    """Delete uncommitted/superseded ``snapshot-*`` dirs; returns count.

    ``keep`` (defaulting to whatever ``CURRENT`` names) survives;
    everything else — crashed ``.tmp`` writes, renamed-but-never-
    committed dirs, superseded generations — is swept.  Best-effort:
    an unremovable orphan is skipped, never fatal.
    """
    base = Path(directory)
    if keep is None:
        current = _read_current(base)
        keep = current["snapshot"] if current else None
    swept = 0
    for entry in base.glob(_SNAPSHOT_PREFIX + "*"):
        if entry.name == keep or not entry.is_dir():
            continue
        try:
            shutil.rmtree(entry)
            swept += 1
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return swept


def _read_current(base: Path) -> Optional[dict]:
    target = base / CURRENT_NAME
    if not target.exists():
        return None
    try:
        current = json.loads(target.read_bytes())
        if not isinstance(current, dict) or \
                not isinstance(current.get("snapshot"), str):
            raise ValueError("malformed CURRENT")
        return current
    except (ValueError, OSError):
        raise IndexCorruptionError(
            f"{base}: {CURRENT_NAME} is unreadable — the snapshot commit "
            "pointer itself is damaged",
            directory=str(base), artifacts=(CURRENT_NAME,),
        ) from None


def current_snapshot_lsn(directory: PathLike) -> int:
    """The committed snapshot barrier LSN (0 when no snapshot exists)."""
    current = _read_current(Path(directory))
    return int(current["lsn"]) if current else 0


def load_snapshot(directory: PathLike) -> Optional[dict]:
    """Load the committed snapshot state, or ``None`` when there is none.

    Returns ``{"lsn", "meta", "products", "p_alive", "weights",
    "w_alive"}`` after verifying every artifact against the snapshot's
    manifest.  A committed-but-damaged snapshot raises
    :class:`IndexCorruptionError` — acknowledged state is gone, and
    silently starting empty would violate the durability invariant.
    """
    base = Path(directory)
    current = _read_current(base)
    if current is None:
        return None
    snap_dir = base / current["snapshot"]
    report = verify_manifest_dir(snap_dir)
    if not report["ok"]:
        raise IndexCorruptionError(
            f"{snap_dir}: committed snapshot failed verification "
            f"({', '.join(sorted(report['damaged']))}) — restore from the "
            "standby or a backup",
            directory=str(snap_dir),
            artifacts=tuple(sorted(report["damaged"])),
        )
    from ..data.io import load_matrix

    meta = json.loads((snap_dir / "snapshot.meta").read_text())
    if meta.get("format") != _SNAPSHOT_FORMAT:
        raise DataValidationError(
            f"{snap_dir}: unsupported snapshot format {meta.get('format')}"
        )
    products = load_matrix(snap_dir / "products.mat")
    weights = load_matrix(snap_dir / "weights.mat")
    return {
        "lsn": int(meta["lsn"]),
        "meta": meta,
        "products": products,
        "p_alive": _unpack_mask((snap_dir / "palive.bin").read_bytes(),
                                meta["rows_p"]),
        "weights": weights,
        "w_alive": _unpack_mask((snap_dir / "walive.bin").read_bytes(),
                                meta["rows_w"]),
    }


def durability_report(directory: PathLike) -> dict:
    """Integrity report over a durability directory (CLI ``info`` body).

    Verifies the committed snapshot's manifest and decodes the WAL,
    reporting torn-tail bytes and corruption without mutating anything::

        {"ok": bool, "snapshot": {"lsn", "status"},
         "wal": {"records", "first_lsn", "last_lsn", "torn_bytes",
                 "status", ["error"]}}
    """
    base = Path(directory)
    report: dict = {"ok": True}
    try:
        current = _read_current(base)
    except IndexCorruptionError as exc:
        report.update(ok=False,
                      snapshot={"lsn": 0, "status": f"corrupt: {exc}"})
        current = None
    else:
        if current is None:
            report["snapshot"] = {"lsn": 0, "status": "none"}
        else:
            verify = verify_manifest_dir(base / current["snapshot"])
            status = "ok" if verify["ok"] else (
                "damaged: " + ", ".join(sorted(verify["damaged"])))
            report["snapshot"] = {"lsn": int(current["lsn"]),
                                  "status": status}
            report["ok"] &= verify["ok"]
    wal_file = wal_path(base)
    try:
        records, _, torn = read_wal(wal_file)
    except WalCorruptionError as exc:
        report["wal"] = {"status": "corrupt", "error": str(exc),
                         "offset": exc.offset, "records": 0,
                         "first_lsn": 0, "last_lsn": exc.lsn,
                         "torn_bytes": 0}
        report["ok"] = False
    else:
        report["wal"] = {
            "status": "ok" if not torn else "torn-tail",
            "records": len(records),
            "first_lsn": records[0].lsn if records else 0,
            "last_lsn": records[-1].lsn if records else 0,
            "torn_bytes": int(torn),
        }
    seg_dir = base / "segments"
    if (seg_dir / CURRENT_NAME).exists():
        from ..storage.manifest import read_current_manifest

        try:
            manifest = read_current_manifest(seg_dir)
            report["storage"] = {
                "status": "ok",
                "generation": int(manifest["generation"]),
                "lsn": int(manifest["lsn"]),
                "segments": len(manifest["segments"]),
                "dead_products": len(manifest["dead_products"]),
                "dead_weights": len(manifest["dead_weights"]),
            }
        except IndexCorruptionError as exc:
            report["storage"] = {"status": f"corrupt: {exc}"}
            report["ok"] = False
    return report
