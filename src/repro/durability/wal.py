"""The write-ahead log: length-prefixed, CRC32-framed mutation records.

Frame layout (little-endian), one frame per mutation::

    +----------------+----------------+--------------------------+
    | u32 length     | u32 crc32      | payload (length bytes)   |
    +----------------+----------------+--------------------------+

The payload is canonical JSON (sorted keys, compact separators) of
``{"lsn": int, "op": str, "data": {...}}``.  LSNs are assigned by the
writer and strictly increase by one, which gives recovery two levers:

* **idempotent replay** — applying a record whose LSN the engine has
  already seen is a no-op, so replaying the same log twice (or a
  snapshot plus an untruncated log) converges to the same state;
* **contiguity checking** — a gap or regression between decoded records
  cannot be explained by a torn tail and raises
  :class:`~repro.errors.WalCorruptionError`.

Crash semantics, the load-bearing part:

* A frame that runs past end-of-file, or whose CRC fails *with no valid
  bytes after it*, is a **torn tail** — the classic interrupted append.
  Recovery drops it: the write was never acknowledged, so it must be
  atomically absent.
* A CRC/framing failure **followed by more bytes** cannot come from a
  torn append (appends only ever extend the file); it means
  acknowledged history was damaged in place, and recovery refuses with
  a structured :class:`~repro.errors.WalCorruptionError` instead of
  silently serving wrong answers.

The writer consults the fault-injection hooks
(:mod:`repro.resilience.faults`) at two named sites: ``wal.append``
(supports ``io_error``/``raise``/``latency``/``corrupt``/
``partial_write`` — the last tears the frame and simulates death) and
``wal.fsync`` (fired just before ``os.fsync``).  A *non-crash* failure
after bytes were buffered rolls the file back to the previous frame
boundary, so a failed append never leaves half a frame for a later
append to entomb mid-log.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from ..errors import InvalidParameterError, WalCorruptionError
from ..resilience.faults import InjectedCrashError, active_injector, fire

PathLike = Union[str, Path]

#: Default WAL file name inside a durability directory.
WAL_NAME = "wal.log"

#: ``(length, crc32)`` frame header.
_HEADER = struct.Struct("<II")

#: Sanity ceiling on one record; anything larger is framing damage.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Supported fsync policies for :class:`WalWriter`.
FSYNC_POLICIES = ("always", "interval", "never")

#: Default interval between fsyncs under the ``interval`` policy.
DEFAULT_FSYNC_INTERVAL_S = 0.05

#: Read granularity of :func:`read_wal` (frames may span boundaries).
_READ_CHUNK = 64 * 1024


@dataclass(frozen=True)
class WalRecord:
    """One decoded mutation record."""

    lsn: int
    op: str
    data: dict

    def to_payload(self) -> bytes:
        """Canonical JSON payload bytes (what the CRC covers)."""
        return json.dumps(
            {"data": self.data, "lsn": int(self.lsn), "op": self.op},
            sort_keys=True, separators=(",", ":"),
        ).encode()

    def digest(self) -> str:
        """CRC32 hex digest of the payload (``wal-dump``'s fingerprint)."""
        return f"{zlib.crc32(self.to_payload()) & 0xFFFFFFFF:08x}"


def wal_path(directory: PathLike) -> Path:
    """The WAL file inside a durability directory."""
    return Path(directory) / WAL_NAME


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: header (length + CRC32) plus JSON payload."""
    payload = record.to_payload()
    return _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) \
        + payload


def _decode_payload(payload: bytes, path: Path, offset: int,
                    last_lsn: int) -> WalRecord:
    """Payload bytes -> :class:`WalRecord`; CRC already verified."""
    try:
        obj = json.loads(payload)
        record = WalRecord(lsn=int(obj["lsn"]), op=str(obj["op"]),
                           data=obj["data"])
    except (ValueError, KeyError, TypeError):
        raise WalCorruptionError(
            f"{path}: record at offset {offset} passed its CRC but is not "
            "a valid WAL payload", path=str(path), offset=offset,
            lsn=last_lsn,
        ) from None
    if not isinstance(record.data, dict):
        raise WalCorruptionError(
            f"{path}: record at offset {offset} carries a non-object data "
            "field", path=str(path), offset=offset, lsn=last_lsn,
        )
    return record


def read_wal(path: PathLike, chunk_size: int = _READ_CHUNK,
             expect_contiguous: bool = True,
             ) -> Tuple[List[WalRecord], int, int]:
    """Decode a WAL file; returns ``(records, valid_bytes, torn_bytes)``.

    ``valid_bytes`` is the offset of the first byte past the last intact
    frame — the writer truncates to it before appending again.
    ``torn_bytes`` counts trailing bytes dropped as an interrupted
    append (0 for a cleanly closed log).  A missing or empty file is a
    valid zero-length log.

    Raises
    ------
    WalCorruptionError
        Mid-log damage: a CRC/framing/contiguity failure that valid
        later bytes prove cannot be a torn tail.
    """
    path = Path(path)
    if chunk_size <= 0:
        raise InvalidParameterError("chunk_size must be positive")
    if not path.exists():
        return [], 0, 0
    file_size = path.stat().st_size
    records: List[WalRecord] = []
    buffer = bytearray()
    offset = 0          # file offset of buffer[0]
    last_lsn = 0

    def fail_or_tear(consumed: int, why: str) -> int:
        """Damage at ``offset + consumed``: torn tail iff nothing follows."""
        raise WalCorruptionError(
            f"{path}: {why} at offset {offset + consumed} with "
            f"{file_size - offset - consumed} valid-looking bytes after it "
            "(mid-log corruption, not a torn tail)",
            path=str(path), offset=offset + consumed, lsn=last_lsn,
        )

    with open(path, "rb") as handle:
        eof = False
        while True:
            # Top the buffer up until one whole frame (or EOF) is in it.
            while not eof and len(buffer) < _HEADER.size + MAX_RECORD_BYTES:
                chunk = handle.read(chunk_size)
                if not chunk:
                    eof = True
                    break
                buffer.extend(chunk)
                if len(buffer) >= _HEADER.size:
                    length = _HEADER.unpack_from(buffer)[0]
                    if len(buffer) >= _HEADER.size + min(
                            length, MAX_RECORD_BYTES):
                        break
            if not buffer:
                break
            if len(buffer) < _HEADER.size:
                break  # torn tail: partial header
            length, crc = _HEADER.unpack_from(buffer)
            if length == 0 or length > MAX_RECORD_BYTES:
                # A torn append leaves a *prefix*, so a complete header
                # always carries the length the writer intended — an
                # implausible value is in-place damage, with one
                # exception: an all-zero tail, which some filesystems
                # leave after a crash (size updated, blocks zero-filled).
                buffer.extend(handle.read())
                eof = True
                if not any(buffer):
                    break  # zero-filled tail: crash artifact, torn
                fail_or_tear(0, f"implausible record length {length}")
            frame_end = _HEADER.size + length
            if len(buffer) < frame_end:
                if eof:
                    break  # torn tail: partial payload
                continue  # need more bytes
            payload = bytes(buffer[_HEADER.size:frame_end])
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                if eof and offset + frame_end >= file_size:
                    break  # corrupt final frame: torn/overwritten tail
                fail_or_tear(0, "CRC32 mismatch")
            record = _decode_payload(payload, path, offset, last_lsn)
            if expect_contiguous and records and \
                    record.lsn != last_lsn + 1:
                fail_or_tear(
                    0, f"LSN discontinuity ({last_lsn} -> {record.lsn})"
                )
            records.append(record)
            last_lsn = record.lsn
            del buffer[:frame_end]
            offset += frame_end
    return records, offset, file_size - offset


def iter_wal(path: PathLike) -> Iterator[WalRecord]:
    """Iterate a WAL's intact records (torn tail silently dropped)."""
    records, _, _ = read_wal(path)
    return iter(records)


class WalWriter:
    """Appends framed records to one WAL file under an fsync policy.

    Parameters
    ----------
    path:
        The log file; created (with parents) when missing.
    fsync:
        ``"always"`` — fsync after every append: an acknowledged write
        survives power loss.  ``"interval"`` — fsync at most every
        ``fsync_interval_s``: acknowledged writes survive process death
        (the OS holds the page cache) but a machine crash may lose the
        last interval.  ``"never"`` — flush to the OS only.
    truncate_to:
        Byte offset to truncate the existing file to before the first
        append — recovery passes ``valid_bytes`` from :func:`read_wal`
        so a torn tail never precedes fresh frames.
    next_lsn:
        The LSN :meth:`append` assigns next (recovery passes
        ``last_lsn + 1``).

    Not thread-safe on its own; :class:`~repro.durability.engine.
    DurableDynamicRRQ` serializes appends under its engine lock.
    """

    def __init__(self, path: PathLike, fsync: str = "always",
                 fsync_interval_s: float = DEFAULT_FSYNC_INTERVAL_S,
                 truncate_to: Optional[int] = None, next_lsn: int = 1):
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync!r}"
            )
        if fsync_interval_s <= 0:
            raise InvalidParameterError("fsync_interval_s must be positive")
        if next_lsn <= 0:
            raise InvalidParameterError("next_lsn must be positive")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.next_lsn = int(next_lsn)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "r+b" if self.path.exists() else "w+b")
        if truncate_to is not None:
            self._file.truncate(truncate_to)
        self._file.seek(0, os.SEEK_END)
        self._last_fsync = time.monotonic()
        #: Lifetime stats, surfaced through ``/metrics`` and ``info``.
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended (or recovered) record."""
        return self.next_lsn - 1

    def append(self, op: str, data: dict) -> WalRecord:
        """Frame, write, and (per policy) fsync one record; returns it.

        The record is durable per the fsync policy when this returns —
        that is the acknowledgment point.  On a non-crash failure the
        file is rolled back to the previous frame boundary so the
        failed append leaves no trace; an injected crash
        (:class:`InjectedCrashError`) leaves its torn bytes in place,
        exactly like ``kill -9`` mid-append.
        """
        record = WalRecord(lsn=self.next_lsn, op=op, data=data)
        frame = encode_record(record)
        rollback_to = self._file.tell()
        injector = active_injector()
        try:
            if injector is not None:
                injector.fire("wal.append")
                frame = injector.mutate("wal.append", frame)
                keep = injector.partial_write("wal.append")
                if keep is not None:
                    self._file.write(frame[: int(len(frame) * keep)])
                    self._file.flush()
                    raise InjectedCrashError(
                        "injected crash after torn append at wal.append"
                    )
            self._file.write(frame)
            self._file.flush()
            self._maybe_fsync()
        except InjectedCrashError:
            raise  # a simulated death leaves its torn bytes behind
        except Exception:
            self._file.truncate(rollback_to)
            self._file.seek(rollback_to)
            raise
        self.next_lsn += 1
        self.appends += 1
        self.bytes_written += len(frame)
        return record

    def append_record(self, record: WalRecord) -> WalRecord:
        """Append a record with a caller-assigned LSN (replication apply).

        The LSN must continue the log (``last_lsn + 1``); standbys use
        this to persist the primary's records under the primary's LSNs.
        """
        if record.lsn != self.next_lsn:
            raise InvalidParameterError(
                f"replicated record lsn {record.lsn} does not continue the "
                f"log (expected {self.next_lsn})"
            )
        return self.append(record.op, record.data)

    def _maybe_fsync(self) -> None:
        if self.fsync_policy == "never":
            return
        now = time.monotonic()
        if self.fsync_policy == "interval" and \
                now - self._last_fsync < self.fsync_interval_s:
            return
        fire("wal.fsync")
        os.fsync(self._file.fileno())
        self._last_fsync = now
        self.fsyncs += 1

    def sync(self) -> None:
        """Force an fsync regardless of policy (snapshot barriers use it)."""
        self._file.flush()
        fire("wal.fsync")
        os.fsync(self._file.fileno())
        self._last_fsync = time.monotonic()
        self.fsyncs += 1

    def truncate_through(self, barrier_lsn: int,
                         records: List[WalRecord]) -> None:
        """Drop every frame with ``lsn <= barrier_lsn`` (snapshot commit).

        ``records`` is the writer's decoded view of the live log (the
        engine keeps it); survivors are rewritten through an atomic
        temp-file + rename so a crash mid-truncate leaves either the
        full old log (replay is LSN-idempotent) or the clean suffix.
        """
        survivors = [r for r in records if r.lsn > barrier_lsn]
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            for record in survivors:
                handle.write(encode_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)

    def reset_to(self, next_lsn: int) -> None:
        """Discard the whole log and restart LSNs at ``next_lsn``.

        Used when a standby adopts a primary's full-state transfer: its
        own lineage is obsolete, and the adopted state's LSN becomes the
        new origin (the first record after a reset may carry any LSN;
        contiguity is enforced from there).
        """
        if next_lsn <= 0:
            raise InvalidParameterError("next_lsn must be positive")
        self._file.truncate(0)
        self._file.seek(0)
        self.next_lsn = int(next_lsn)

    def stats(self) -> dict:
        """JSON-ready lifetime counters."""
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "fsync_policy": self.fsync_policy,
            "last_lsn": self.last_lsn,
        }

    def close(self) -> None:
        """Flush, fsync (unless ``never``), and close the file."""
        if self._file.closed:
            return
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
