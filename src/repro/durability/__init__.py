"""repro.durability — durable mutations for the dynamic engine.

The paper's static ``P``/``W`` assumption is relaxed by
:mod:`repro.ext.dynamic`; this package gives those mutations the same
crash-safety story the static index store (:mod:`repro.core.storage`)
already has, plus a warm standby:

* :mod:`.wal` — a length-prefixed, CRC32-framed write-ahead log with an
  ``always|interval|never`` fsync policy.  Torn trailing records (an
  interrupted append) are detected and dropped; mid-log damage raises a
  structured :class:`~repro.errors.WalCorruptionError`.
* :mod:`.snapshot` — full-state snapshots written through the same
  atomic-manifest machinery as the index store, committed by an atomic
  ``CURRENT`` pointer flip, after which the WAL is truncated at the
  snapshot barrier.
* :mod:`.engine` — :class:`DurableDynamicRRQ`, the log-before-apply
  wrapper around :class:`~repro.ext.dynamic.DynamicRRQEngine` that
  recovers on startup (latest valid snapshot + WAL tail replay, LSN
  idempotent) and feeds log-shipping replication.
* :mod:`.replica` — the standby tailer that follows a primary's
  ``GET /replicate`` feed, applies records through its own durable
  path, and reports replication lag until promoted.

The durability invariant, enforced by ``tests/chaos/``: after any
injected crash, recovery yields an engine whose every query answer is
byte-identical to a fresh ``NaiveRRQ`` over exactly the acknowledged
mutation prefix — an acknowledged write is never lost, an
unacknowledged write is atomically absent.
"""

from .engine import BACKENDS, SEGMENTS_DIRNAME, DurableDynamicRRQ
from .replica import ReplicaTailer
from .snapshot import (
    current_snapshot_lsn,
    durability_report,
    load_snapshot,
    write_snapshot,
)
from .wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalWriter,
    read_wal,
    wal_path,
)

__all__ = [
    "DurableDynamicRRQ", "ReplicaTailer", "BACKENDS", "SEGMENTS_DIRNAME",
    "WalRecord", "WalWriter", "read_wal", "wal_path", "FSYNC_POLICIES",
    "write_snapshot", "load_snapshot", "current_snapshot_lsn",
    "durability_report",
]
